//! Parallel page encoding and chunked CRC, byte-identical to the serial
//! path.
//!
//! Two facts make the image pipeline parallelizable without changing a
//! single output byte:
//!
//! * page encoding is a pure function of page content — encoding pages on
//!   a pool and merging in page order ([`Pool::par_map_ordered`] /
//!   [`Pool::pipeline_ordered`]) gives exactly the serial record list;
//! * CRC-32 is linear over GF(2) — chunks hashed independently combine
//!   via [`crate::crc::crc32_combine`] into the one-shot CRC of the whole
//!   buffer.
//!
//! On a pool of width 1 every helper here degenerates to the pre-existing
//! serial code path.

use crate::compress::{EncodeScratch, PageEncoding};
use crate::crc::{crc32, crc32_combine, Crc32};
use crate::format::{CheckpointImage, PageRecord};
use ckpt_par::Pool;

/// Encode gathered `(page_no, data)` pairs into [`PageRecord`]s on the
/// pool, merged in submission (page) order. Each worker reuses one
/// [`EncodeScratch`] across all pages it encodes.
pub fn encode_pages(pool: &Pool, pages: Vec<(u64, Vec<u8>)>) -> Vec<PageRecord> {
    pool.par_map_ordered(pages, EncodeScratch::new, |scratch, _i, (page_no, data)| {
        PageRecord::capture_with(page_no, &data, scratch)
    })
}

/// Pipelined capture: `feeder` runs on the caller thread pushing
/// `(page_no, data)` pairs (the gather stage — typically copying pages out
/// of a frozen guest address space) while pool workers compress them (the
/// encode stage). The two stages overlap; records come back in feed order.
pub fn capture_pages_pipelined<G>(pool: &Pool, feeder: G) -> Vec<PageRecord>
where
    G: FnMut(&mut dyn FnMut((u64, Vec<u8>))),
{
    pool.pipeline_ordered(feeder, EncodeScratch::new, |scratch, _i, (page_no, data)| {
        PageRecord::capture_with(page_no, &data, scratch)
    })
}

/// Re-encode an image whose pages were captured raw (deferred encoding):
/// every [`PageEncoding::Raw`] record is run through the normal page
/// encoder on the pool. Because `encode_page` is a pure function of page
/// content, the result is exactly the image a compress-on-capture pass
/// would have produced; records already compressed (or elided) pass
/// through untouched.
pub fn reencode_image_pages(pool: &Pool, img: &mut CheckpointImage) {
    let pages = std::mem::take(&mut img.pages);
    img.pages = pool.par_map_ordered(pages, EncodeScratch::new, |scratch, _i, rec| {
        if rec.enc == PageEncoding::Raw {
            PageRecord::capture_with(rec.page_no, &rec.payload, scratch)
        } else {
            rec
        }
    });
}

/// Chunk size for parallel CRC. Large enough that per-chunk overhead
/// (combine is ~18 GF(2) matrix squarings) is noise, small enough to
/// load-balance across workers for megabyte-scale images.
const CRC_CHUNK: usize = 256 * 1024;

/// CRC-32 of `data` computed in [`CRC_CHUNK`] pieces on the pool and
/// recombined — bit-identical to [`crc32`] at every width.
pub fn crc32_par(pool: &Pool, data: &[u8]) -> u32 {
    if pool.workers() <= 1 || data.len() <= CRC_CHUNK {
        return crc32(data);
    }
    let ranges: Vec<(usize, usize)> = (0..data.len())
        .step_by(CRC_CHUNK)
        .map(|lo| (lo, (lo + CRC_CHUNK).min(data.len())))
        .collect();
    let chunks = pool.par_map_ordered(
        ranges,
        || (),
        |_, _, (lo, hi)| {
            let mut c = Crc32::new();
            c.update(&data[lo..hi]);
            (c.finalize(), (hi - lo) as u64)
        },
    );
    let mut acc = crc32(&[]);
    for (crc, len) in chunks {
        acc = crc32_combine(acc, crc, len);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{encode_page, encode_page_with};

    fn page(seed: u64) -> Vec<u8> {
        // Mix of zero, constant-fill, and incompressible pages by seed.
        match seed % 3 {
            0 => vec![0u8; 4096],
            1 => vec![(seed >> 2) as u8; 4096],
            _ => (0..4096u64)
                .map(|i| (i.wrapping_mul(seed | 1) >> 5) as u8)
                .collect(),
        }
    }

    #[test]
    fn parallel_page_encode_matches_serial_at_every_width() {
        let gathered: Vec<(u64, Vec<u8>)> = (0..97u64).map(|p| (p, page(p))).collect();
        let want: Vec<PageRecord> = gathered
            .iter()
            .map(|(p, d)| PageRecord::capture(*p, d))
            .collect();
        for w in [1usize, 2, 4, 8] {
            let pool = Pool::new(w);
            assert_eq!(encode_pages(&pool, gathered.clone()), want, "width {w}");
            let piped = capture_pages_pipelined(&pool, |push| {
                for (p, d) in &gathered {
                    push((*p, d.clone()));
                }
            });
            assert_eq!(piped, want, "pipelined width {w}");
        }
    }

    #[test]
    fn reencode_matches_compress_on_capture() {
        let pool = Pool::new(4);
        let mut img = crate::codec::tests::sample_image();
        // Strip compression: store every page raw.
        for rec in &mut img.pages {
            let data = rec.expand().unwrap();
            rec.enc = PageEncoding::Raw;
            rec.payload = data;
        }
        let want = crate::codec::tests::sample_image().pages;
        reencode_image_pages(&pool, &mut img);
        assert_eq!(img.pages, want);
    }

    #[test]
    fn reencode_is_idempotent_on_compressed_records() {
        let pool = Pool::new(2);
        let mut img = crate::codec::tests::sample_image();
        let want = img.pages.clone();
        reencode_image_pages(&pool, &mut img);
        assert_eq!(img.pages, want);
    }

    #[test]
    fn crc32_par_matches_serial() {
        let data: Vec<u8> = (0..3 * CRC_CHUNK + 12345)
            .map(|i| (i as u32).wrapping_mul(2654435761) as u8)
            .collect();
        let want = crc32(&data);
        for w in [1usize, 2, 4, 8] {
            let pool = Pool::new(w);
            assert_eq!(crc32_par(&pool, &data), want, "width {w}");
        }
        // Small inputs take the serial path but must agree too.
        let small = b"hello, checkpoint";
        assert_eq!(crc32_par(&Pool::new(8), small), crc32(small));
    }

    #[test]
    fn scratch_encode_agrees_with_plain_encode() {
        let mut scratch = EncodeScratch::new();
        for s in 0..24u64 {
            let d = page(s);
            assert_eq!(encode_page_with(&d, &mut scratch), encode_page(&d), "seed {s}");
        }
    }
}
