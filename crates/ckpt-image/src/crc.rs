//! CRC-32 (IEEE 802.3 polynomial) for image integrity.
//!
//! Checkpoint data that restores silently wrong is worse than a failed
//! restart — every image carries a trailing CRC over its entire encoding,
//! and the reader refuses images whose CRC does not match.
//!
//! The hasher uses the slicing-by-8 technique: eight compile-time tables
//! let it consume 8 input bytes per step instead of 1, which matters
//! because every checkpointed page flows through here. The result is
//! bit-identical to the classic byte-at-a-time Sarwate loop (which still
//! handles unaligned head/tail bytes).

const POLY: u32 = 0xEDB8_8320;

/// Build the 8 × 256-entry slicing tables at compile time. `TABLES[0]` is
/// the classic Sarwate table; `TABLES[k][b]` is the CRC of byte `b`
/// followed by `k` zero bytes.
const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// Streaming CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.state;
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ c;
            let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
            c = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][((lo >> 24) & 0xFF) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][((hi >> 24) & 0xFF) as usize];
        }
        for &b in chunks.remainder() {
            c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a buffer.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

// ---------------------------------------------------------------------
// CRC combination (GF(2) matrix shift), the primitive that makes the
// whole-image CRC parallelizable: chunks are hashed independently and
// `crc32_combine` merges them into the exact CRC of the concatenation.
// ---------------------------------------------------------------------

/// Multiply the GF(2) 32×32 matrix `mat` by the column vector `vec`.
fn gf2_matrix_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0u32;
    let mut i = 0usize;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

/// `sq = mat²` in GF(2).
fn gf2_matrix_square(sq: &mut [u32; 32], mat: &[u32; 32]) {
    for n in 0..32 {
        sq[n] = gf2_matrix_times(mat, mat[n]);
    }
}

/// Combine two CRC-32 values: given `crc1 = crc32(A)` and
/// `crc2 = crc32(B)`, returns `crc32(A ‖ B)` where `len2 = B.len()`.
///
/// This is the standard zlib construction: `crc1` is advanced through
/// `len2` zero bytes by repeated squaring of the "shift one zero byte"
/// operator (so the cost is `O(log len2)` 32×32 matrix products, not
/// `O(len2)`), then xor'd with `crc2`. The pre/post conditioning of the
/// two inputs cancels exactly, so the result is bit-identical to hashing
/// the concatenated buffer in one pass.
pub fn crc32_combine(crc1: u32, crc2: u32, len2: u64) -> u32 {
    if len2 == 0 {
        return crc1;
    }
    let mut even = [0u32; 32]; // even-power-of-two zero-byte shifts
    let mut odd = [0u32; 32]; // odd-power shifts
    // `odd` starts as the one-zero-*bit* shift operator.
    odd[0] = POLY;
    let mut row = 1u32;
    for slot in odd.iter_mut().skip(1) {
        *slot = row;
        row <<= 1;
    }
    // Square twice: one zero *byte* (8 bits) in `odd`.
    gf2_matrix_square(&mut even, &odd);
    gf2_matrix_square(&mut odd, &even);
    let mut crc1 = crc1;
    let mut len2 = len2;
    loop {
        gf2_matrix_square(&mut even, &odd);
        if len2 & 1 != 0 {
            crc1 = gf2_matrix_times(&even, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
        gf2_matrix_square(&mut odd, &even);
        if len2 & 1 != 0 {
            crc1 = gf2_matrix_times(&odd, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
    }
    crc1 ^ crc2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vector: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), crc32(&data));
    }

    #[test]
    fn sliced_update_matches_byte_at_a_time() {
        // Reference Sarwate loop over the same data, all lengths 0..64 so
        // every head/tail alignment of the slicing path is exercised.
        fn reference(data: &[u8]) -> u32 {
            let mut c = 0xFFFF_FFFFu32;
            for &b in data {
                c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
            }
            c ^ 0xFFFF_FFFF
        }
        let data: Vec<u8> = (0..64u32).map(|i| (i.wrapping_mul(37) ^ 0xA5) as u8).collect();
        for len in 0..=data.len() {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn combine_matches_one_shot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        // Every split point of a small prefix, plus coarse splits of the
        // full buffer, must reassemble to the one-shot CRC.
        for split in 0..=64usize {
            let (a, b) = data[..64].split_at(split);
            assert_eq!(
                crc32_combine(crc32(a), crc32(b), b.len() as u64),
                crc32(&data[..64]),
                "split {split}"
            );
        }
        for split in [0usize, 1, 4095, 4096, 5000, 9999, 10_000] {
            let (a, b) = data.split_at(split);
            assert_eq!(
                crc32_combine(crc32(a), crc32(b), b.len() as u64),
                crc32(&data),
                "split {split}"
            );
        }
    }

    #[test]
    fn combine_is_associative_over_many_chunks() {
        let data: Vec<u8> = (0..=255u8).cycle().take(30_000).collect();
        let mut acc = crc32(&[]);
        for chunk in data.chunks(777) {
            acc = crc32_combine(acc, crc32(chunk), chunk.len() as u64);
        }
        assert_eq!(acc, crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = vec![0u8; 4096];
        data[100] = 0x55;
        let base = crc32(&data);
        for bit in [0usize, 7, 800 * 8 + 3, 4095 * 8 + 7] {
            let mut flipped = data.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&flipped), base, "flip at bit {bit} undetected");
        }
    }
}
