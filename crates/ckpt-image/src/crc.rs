//! CRC-32 (IEEE 802.3 polynomial) for image integrity.
//!
//! Checkpoint data that restores silently wrong is worse than a failed
//! restart — every image carries a trailing CRC over its entire encoding,
//! and the reader refuses images whose CRC does not match.

const POLY: u32 = 0xEDB8_8320;

/// Build the 256-entry lookup table at compile time.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Streaming CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.state;
        for &b in data {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a buffer.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vector: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = vec![0u8; 4096];
        data[100] = 0x55;
        let base = crc32(&data);
        for bit in [0usize, 7, 800 * 8 + 3, 4095 * 8 + 7] {
            let mut flipped = data.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&flipped), base, "flip at bit {bit} undetected");
        }
    }
}
