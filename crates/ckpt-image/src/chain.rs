//! Incremental-checkpoint chains.
//!
//! Incremental checkpointing (Plank et al. [27]) saves only the pages
//! dirtied since the previous checkpoint. A restart therefore needs the
//! last full image plus every subsequent incremental image, overlaid in
//! order. This module validates lineage (sequence numbers must chain) and
//! performs the overlay.

use crate::format::{CheckpointImage, ImageKind, PageRecord};
use std::collections::BTreeMap;

/// Chain-reconstruction errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    Empty,
    /// The first image in a chain must be full.
    FirstNotFull,
    /// An incremental image does not name the previous image as parent.
    BrokenLineage {
        expected_parent: u64,
        found_parent: u64,
        at_seq: u64,
    },
    /// Images from different processes mixed into one chain.
    PidMismatch { expected: u32, found: u32 },
    /// A segment observer aborted the overlay (e.g. an injected fault at a
    /// chain-segment boundary during restart).
    Interrupted { at_seq: u64 },
    /// Pruning below this point would delete the parent an incremental
    /// image still depends on, leaving `orphan_seq` unrestorable.
    PruneWouldOrphan { keep_from_seq: u64, orphan_seq: u64 },
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::Empty => write!(f, "empty checkpoint chain"),
            ChainError::FirstNotFull => write!(f, "chain does not start with a full image"),
            ChainError::BrokenLineage {
                expected_parent,
                found_parent,
                at_seq,
            } => write!(
                f,
                "broken lineage at seq {at_seq}: expected parent {expected_parent}, found {found_parent}"
            ),
            ChainError::PidMismatch { expected, found } => {
                write!(f, "pid mismatch in chain: expected {expected}, found {found}")
            }
            ChainError::Interrupted { at_seq } => {
                write!(f, "chain overlay interrupted at segment seq {at_seq}")
            }
            ChainError::PruneWouldOrphan {
                keep_from_seq,
                orphan_seq,
            } => write!(
                f,
                "pruning below seq {keep_from_seq} would orphan incremental seq {orphan_seq}"
            ),
        }
    }
}

impl std::error::Error for ChainError {}

/// Validate a chain's lineage without reconstructing.
pub fn validate(chain: &[CheckpointImage]) -> Result<(), ChainError> {
    let first = chain.first().ok_or(ChainError::Empty)?;
    if first.header.kind != ImageKind::Full {
        return Err(ChainError::FirstNotFull);
    }
    let pid = first.header.pid;
    let mut prev_seq = first.header.seq;
    for img in &chain[1..] {
        if img.header.pid != pid {
            return Err(ChainError::PidMismatch {
                expected: pid,
                found: img.header.pid,
            });
        }
        if img.header.kind != ImageKind::Incremental || img.header.parent_seq != prev_seq {
            return Err(ChainError::BrokenLineage {
                expected_parent: prev_seq,
                found_parent: img.header.parent_seq,
                at_seq: img.header.seq,
            });
        }
        prev_seq = img.header.seq;
    }
    Ok(())
}

/// Overlay a full image with its incremental successors, producing the
/// equivalent full image of the final instant. Everything except pages is
/// taken from the **last** image (registers, fds, signal state move
/// forward); pages accumulate with later images winning.
pub fn reconstruct(chain: &[CheckpointImage]) -> Result<CheckpointImage, ChainError> {
    reconstruct_with(chain, |_| Ok(()))
}

/// [`reconstruct`], invoking `on_segment` with each image's sequence
/// number before overlaying it. The observer may abort the overlay by
/// returning an error (the crashpoint matrix uses this to model a fault
/// landing between chain segments during restart); this crate stays free
/// of any simulator dependency.
pub fn reconstruct_with(
    chain: &[CheckpointImage],
    mut on_segment: impl FnMut(u64) -> Result<(), ChainError>,
) -> Result<CheckpointImage, ChainError> {
    validate(chain)?;
    let last = chain.last().expect("validated non-empty");
    let mut pages: BTreeMap<u64, PageRecord> = BTreeMap::new();
    for img in chain {
        on_segment(img.header.seq)?;
        for p in &img.pages {
            pages.insert(p.page_no, p.clone());
        }
    }
    let mut out = last.clone();
    out.header.kind = ImageKind::Full;
    out.header.parent_seq = 0;
    out.pages = pages.into_values().collect();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::*;

    fn img(pid: u32, seq: u64, parent: u64, kind: ImageKind, pages: Vec<(u64, u8)>) -> CheckpointImage {
        CheckpointImage {
            header: ImageHeader {
                pid,
                seq,
                parent_seq: parent,
                kind,
                taken_at_ns: seq * 100,
                mechanism: "test".into(),
                node: 0,
            },
            regs: RegsRecord {
                pc: seq, // marker to check "last wins"
                gpr: [0; 16],
            },
            brk: 0,
            work_done: seq * 10,
            policy: PolicyRecord { tag: 0, value: 0 },
            vmas: vec![],
            pages: pages
                .into_iter()
                .map(|(no, fill)| PageRecord::capture(no, &vec![fill; 4096]))
                .collect(),
            fds: vec![],
            files: vec![],
            sig: SigRecord::default(),
            timers: vec![],
            program: ProgramRecord::Vm {
                name: "t".into(),
                text: vec![0],
            },
        }
    }

    #[test]
    fn valid_chain_reconstructs_with_later_pages_winning() {
        let chain = vec![
            img(1, 1, 0, ImageKind::Full, vec![(10, 1), (11, 1), (12, 1)]),
            img(1, 2, 1, ImageKind::Incremental, vec![(11, 2)]),
            img(1, 3, 2, ImageKind::Incremental, vec![(11, 3), (13, 3)]),
        ];
        let full = reconstruct(&chain).unwrap();
        assert_eq!(full.header.kind, ImageKind::Full);
        assert_eq!(full.regs.pc, 3, "non-page state from the last image");
        let by_no: BTreeMap<u64, u8> = full
            .pages
            .iter()
            .map(|p| (p.page_no, p.expand().unwrap()[0]))
            .collect();
        assert_eq!(by_no[&10], 1);
        assert_eq!(by_no[&11], 3);
        assert_eq!(by_no[&12], 1);
        assert_eq!(by_no[&13], 3);
        assert_eq!(full.pages.len(), 4);
    }

    #[test]
    fn single_full_image_reconstructs_to_itself() {
        let chain = vec![img(1, 1, 0, ImageKind::Full, vec![(5, 9)])];
        let full = reconstruct(&chain).unwrap();
        assert_eq!(full.pages.len(), 1);
        assert_eq!(full.work_done, 10);
    }

    #[test]
    fn empty_chain_rejected() {
        assert_eq!(reconstruct(&[]), Err(ChainError::Empty));
    }

    #[test]
    fn chain_starting_incremental_rejected() {
        let chain = vec![img(1, 2, 1, ImageKind::Incremental, vec![])];
        assert_eq!(validate(&chain), Err(ChainError::FirstNotFull));
    }

    #[test]
    fn broken_lineage_rejected() {
        let chain = vec![
            img(1, 1, 0, ImageKind::Full, vec![]),
            img(1, 3, 2, ImageKind::Incremental, vec![]), // parent 2 missing
        ];
        assert!(matches!(
            validate(&chain),
            Err(ChainError::BrokenLineage { .. })
        ));
    }

    #[test]
    fn full_image_mid_chain_rejected() {
        let chain = vec![
            img(1, 1, 0, ImageKind::Full, vec![]),
            img(1, 2, 1, ImageKind::Full, vec![]),
        ];
        assert!(matches!(
            validate(&chain),
            Err(ChainError::BrokenLineage { .. })
        ));
    }

    #[test]
    fn segment_observer_sees_every_seq_and_can_abort() {
        let chain = vec![
            img(1, 1, 0, ImageKind::Full, vec![(10, 1)]),
            img(1, 2, 1, ImageKind::Incremental, vec![(11, 2)]),
            img(1, 3, 2, ImageKind::Incremental, vec![(12, 3)]),
        ];
        let mut seen = Vec::new();
        let full = reconstruct_with(&chain, |seq| {
            seen.push(seq);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec![1, 2, 3]);
        assert_eq!(full.pages.len(), 3);

        let aborted = reconstruct_with(&chain, |seq| {
            if seq == 2 {
                Err(ChainError::Interrupted { at_seq: seq })
            } else {
                Ok(())
            }
        });
        assert_eq!(aborted, Err(ChainError::Interrupted { at_seq: 2 }));
    }

    #[test]
    fn pid_mismatch_rejected() {
        let chain = vec![
            img(1, 1, 0, ImageKind::Full, vec![]),
            img(2, 2, 1, ImageKind::Incremental, vec![]),
        ];
        assert!(matches!(validate(&chain), Err(ChainError::PidMismatch { .. })));
    }
}
