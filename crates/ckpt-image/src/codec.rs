//! Binary serialization of [`CheckpointImage`] with trailing CRC-32.
//!
//! Layout (little-endian throughout):
//!
//! ```text
//! magic:u64  version:u32  header  regs  brk:u64  work:u64  policy
//! vmas  pages  fds  files  sig  timers  program  crc:u32
//! ```
//!
//! Every variable-length field is length-prefixed. The CRC covers every
//! byte before it; [`decode`] refuses images whose CRC or structure is
//! invalid, so a corrupted checkpoint fails loudly at restart time instead
//! of resurrecting a corrupted process.

use crate::compress::PageEncoding;
use crate::crc::crc32;
use crate::format::*;

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    Truncated,
    BadMagic(u64),
    BadVersion(u32),
    BadCrc { stored: u32, computed: u32 },
    Malformed(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "image truncated"),
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:#x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::BadCrc { stored, computed } => {
                write!(f, "CRC mismatch: stored {stored:#x}, computed {computed:#x}")
            }
            DecodeError::Malformed(what) => write!(f, "malformed image: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------
// Writer helpers.
// ---------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}
fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

// ---------------------------------------------------------------------
// Reader helpers.
// ---------------------------------------------------------------------

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i32(&mut self) -> Result<i32, DecodeError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn string(&mut self) -> Result<String, DecodeError> {
        let n = self.u32()? as usize;
        if n > 1 << 24 {
            return Err(DecodeError::Malformed("string too long"));
        }
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| DecodeError::Malformed("bad utf-8"))
    }
    fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let n = self.u64()? as usize;
        if n > 1 << 32 {
            return Err(DecodeError::Malformed("byte field too long"));
        }
        Ok(self.take(n)?.to_vec())
    }
}

// ---------------------------------------------------------------------
// Encode.
// ---------------------------------------------------------------------

/// Serialize an image to bytes (with trailing CRC-32).
pub fn encode(img: &CheckpointImage) -> Vec<u8> {
    let mut out = encode_body(img);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// [`encode`] with the trailing CRC computed in chunks on `pool` — the
/// body bytes and the CRC value are identical at every pool width (see
/// [`crate::parallel::crc32_par`]).
pub fn encode_with_pool(img: &CheckpointImage, pool: &ckpt_par::Pool) -> Vec<u8> {
    let mut out = encode_body(img);
    let crc = crate::parallel::crc32_par(pool, &out);
    put_u32(&mut out, crc);
    out
}

/// Everything before the trailing CRC.
fn encode_body(img: &CheckpointImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096 + img.payload_bytes() as usize);
    put_u64(&mut out, IMAGE_MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    // Header.
    put_u32(&mut out, img.header.pid);
    put_u64(&mut out, img.header.seq);
    put_u64(&mut out, img.header.parent_seq);
    put_u8(
        &mut out,
        match img.header.kind {
            ImageKind::Full => 0,
            ImageKind::Incremental => 1,
        },
    );
    put_u64(&mut out, img.header.taken_at_ns);
    put_str(&mut out, &img.header.mechanism);
    put_u32(&mut out, img.header.node);
    // Registers.
    put_u64(&mut out, img.regs.pc);
    for g in img.regs.gpr {
        put_u64(&mut out, g);
    }
    put_u64(&mut out, img.brk);
    put_u64(&mut out, img.work_done);
    put_u8(&mut out, img.policy.tag);
    put_i32(&mut out, img.policy.value);
    // VMAs.
    put_u32(&mut out, img.vmas.len() as u32);
    for v in &img.vmas {
        put_u64(&mut out, v.start);
        put_u64(&mut out, v.end);
        put_u8(&mut out, v.prot);
        put_u8(&mut out, v.kind);
        put_str(&mut out, &v.name);
    }
    // Pages.
    put_u64(&mut out, img.pages.len() as u64);
    for p in &img.pages {
        put_u64(&mut out, p.page_no);
        put_u8(&mut out, p.enc.tag());
        put_bytes(&mut out, &p.payload);
    }
    // Fds.
    put_u32(&mut out, img.fds.len() as u32);
    for f in &img.fds {
        put_u32(&mut out, f.fd);
        put_str(&mut out, &f.path);
        put_u64(&mut out, f.offset);
        put_u8(&mut out, f.flags);
        put_u32(&mut out, f.group);
    }
    // File contents.
    put_u32(&mut out, img.files.len() as u32);
    for f in &img.files {
        put_str(&mut out, &f.path);
        put_bytes(&mut out, &f.data);
    }
    // Signal state.
    put_u32(&mut out, img.sig.actions.len() as u32);
    for a in &img.sig.actions {
        put_u32(&mut out, a.sig);
        put_u8(&mut out, a.kind);
        put_u64(&mut out, a.param);
        put_u8(&mut out, a.non_reentrant as u8);
    }
    put_u32(&mut out, img.sig.pending.len() as u32);
    for p in &img.sig.pending {
        put_u32(&mut out, *p);
    }
    put_u64(&mut out, img.sig.mask);
    put_u32(&mut out, img.sig.in_handler);
    put_u32(&mut out, img.sig.non_reentrant_depth);
    // Timers.
    put_u32(&mut out, img.timers.len() as u32);
    for t in &img.timers {
        put_u64(&mut out, t.in_ns);
        put_u64(&mut out, t.period_ns);
        put_u32(&mut out, t.sig);
    }
    // Program.
    match &img.program {
        ProgramRecord::Vm { name, text } => {
            put_u8(&mut out, 0);
            put_str(&mut out, name);
            put_u32(&mut out, text.len() as u32);
            for w in text {
                put_u32(&mut out, *w);
            }
        }
        ProgramRecord::Native {
            kind,
            mem_bytes,
            total_steps,
            writes_per_step,
            write_stride_pages,
            seed,
        } => {
            put_u8(&mut out, 1);
            put_u8(&mut out, *kind);
            put_u64(&mut out, *mem_bytes);
            put_u64(&mut out, *total_steps);
            put_u64(&mut out, *writes_per_step);
            put_u64(&mut out, *write_stride_pages);
            put_u64(&mut out, *seed);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Decode.
// ---------------------------------------------------------------------

/// Parse and validate an image from bytes.
pub fn decode(buf: &[u8]) -> Result<CheckpointImage, DecodeError> {
    if buf.len() < 16 {
        return Err(DecodeError::Truncated);
    }
    let (body, crc_bytes) = buf.split_at(buf.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    let computed = crc32(body);
    if stored != computed {
        return Err(DecodeError::BadCrc { stored, computed });
    }
    let mut d = Dec { buf: body, pos: 0 };
    let magic = d.u64()?;
    if magic != IMAGE_MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = d.u32()?;
    if version != FORMAT_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let header = ImageHeader {
        pid: d.u32()?,
        seq: d.u64()?,
        parent_seq: d.u64()?,
        kind: match d.u8()? {
            0 => ImageKind::Full,
            1 => ImageKind::Incremental,
            _ => return Err(DecodeError::Malformed("bad image kind")),
        },
        taken_at_ns: d.u64()?,
        mechanism: d.string()?,
        node: d.u32()?,
    };
    let mut regs = RegsRecord {
        pc: d.u64()?,
        gpr: [0; 16],
    };
    for g in regs.gpr.iter_mut() {
        *g = d.u64()?;
    }
    let brk = d.u64()?;
    let work_done = d.u64()?;
    let policy = PolicyRecord {
        tag: d.u8()?,
        value: d.i32()?,
    };
    let nvmas = d.u32()? as usize;
    if nvmas > 1 << 20 {
        return Err(DecodeError::Malformed("too many VMAs"));
    }
    let mut vmas = Vec::with_capacity(nvmas);
    for _ in 0..nvmas {
        vmas.push(VmaRecord {
            start: d.u64()?,
            end: d.u64()?,
            prot: d.u8()?,
            kind: d.u8()?,
            name: d.string()?,
        });
    }
    let npages = d.u64()? as usize;
    if npages > 1 << 28 {
        return Err(DecodeError::Malformed("too many pages"));
    }
    let mut pages = Vec::with_capacity(npages);
    for _ in 0..npages {
        let page_no = d.u64()?;
        let enc = PageEncoding::from_tag(d.u8()?)
            .ok_or(DecodeError::Malformed("bad page encoding"))?;
        let payload = d.bytes()?;
        pages.push(PageRecord {
            page_no,
            enc,
            payload,
        });
    }
    let nfds = d.u32()? as usize;
    if nfds > 1 << 20 {
        return Err(DecodeError::Malformed("too many fds"));
    }
    let mut fds = Vec::with_capacity(nfds);
    for _ in 0..nfds {
        fds.push(FdRecord {
            fd: d.u32()?,
            path: d.string()?,
            offset: d.u64()?,
            flags: d.u8()?,
            group: d.u32()?,
        });
    }
    let nfiles = d.u32()? as usize;
    if nfiles > 1 << 20 {
        return Err(DecodeError::Malformed("too many files"));
    }
    let mut files = Vec::with_capacity(nfiles);
    for _ in 0..nfiles {
        files.push(FileContentRecord {
            path: d.string()?,
            data: d.bytes()?,
        });
    }
    let nacts = d.u32()? as usize;
    if nacts > 4096 {
        return Err(DecodeError::Malformed("too many sigactions"));
    }
    let mut actions = Vec::with_capacity(nacts);
    for _ in 0..nacts {
        actions.push(SigActionRecord {
            sig: d.u32()?,
            kind: d.u8()?,
            param: d.u64()?,
            non_reentrant: d.u8()? != 0,
        });
    }
    let npend = d.u32()? as usize;
    if npend > 4096 {
        return Err(DecodeError::Malformed("too many pending signals"));
    }
    let mut pending = Vec::with_capacity(npend);
    for _ in 0..npend {
        pending.push(d.u32()?);
    }
    let sig = SigRecord {
        actions,
        pending,
        mask: d.u64()?,
        in_handler: d.u32()?,
        non_reentrant_depth: d.u32()?,
    };
    let ntimers = d.u32()? as usize;
    if ntimers > 4096 {
        return Err(DecodeError::Malformed("too many timers"));
    }
    let mut timers = Vec::with_capacity(ntimers);
    for _ in 0..ntimers {
        timers.push(TimerRecord {
            in_ns: d.u64()?,
            period_ns: d.u64()?,
            sig: d.u32()?,
        });
    }
    let program = match d.u8()? {
        0 => {
            let name = d.string()?;
            let n = d.u32()? as usize;
            if n > 1 << 24 {
                return Err(DecodeError::Malformed("text too long"));
            }
            let mut text = Vec::with_capacity(n);
            for _ in 0..n {
                text.push(d.u32()?);
            }
            ProgramRecord::Vm { name, text }
        }
        1 => ProgramRecord::Native {
            kind: d.u8()?,
            mem_bytes: d.u64()?,
            total_steps: d.u64()?,
            writes_per_step: d.u64()?,
            write_stride_pages: d.u64()?,
            seed: d.u64()?,
        },
        _ => return Err(DecodeError::Malformed("bad program tag")),
    };
    if d.pos != body.len() {
        return Err(DecodeError::Malformed("trailing bytes"));
    }
    Ok(CheckpointImage {
        header,
        regs,
        brk,
        work_done,
        policy,
        vmas,
        pages,
        fds,
        files,
        sig,
        timers,
        program,
    })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn sample_image() -> CheckpointImage {
        CheckpointImage {
            header: ImageHeader {
                pid: 42,
                seq: 3,
                parent_seq: 2,
                kind: ImageKind::Incremental,
                taken_at_ns: 123_456_789,
                mechanism: "crak".into(),
                node: 7,
            },
            regs: RegsRecord {
                pc: 0x400010,
                gpr: [9; 16],
            },
            brk: 0x0800_2000,
            work_done: 99,
            policy: PolicyRecord { tag: 0, value: -3 },
            vmas: vec![VmaRecord {
                start: 0x40_0000,
                end: 0x40_1000,
                prot: 5,
                kind: 0,
                name: "[text]".into(),
            }],
            pages: vec![
                PageRecord::capture(0x100, &vec![0u8; 4096]),
                PageRecord::capture(0x101, &vec![7u8; 4096]),
                PageRecord::capture(
                    0x102,
                    &(0..4096).map(|i| (i % 251) as u8).collect::<Vec<_>>(),
                ),
            ],
            fds: vec![FdRecord {
                fd: 3,
                path: "/tmp/out".into(),
                offset: 128,
                flags: 3,
                group: 1,
            }],
            files: vec![FileContentRecord {
                path: "/tmp/out".into(),
                data: b"contents".to_vec(),
            }],
            sig: SigRecord {
                actions: vec![SigActionRecord {
                    sig: 14,
                    kind: 3,
                    param: 0,
                    non_reentrant: true,
                }],
                pending: vec![10],
                mask: 0x400,
                in_handler: 0,
                non_reentrant_depth: 0,
            },
            timers: vec![TimerRecord {
                in_ns: 5_000,
                period_ns: 10_000,
                sig: 14,
            }],
            program: ProgramRecord::Native {
                kind: 1,
                mem_bytes: 65536,
                total_steps: 100,
                writes_per_step: 8,
                write_stride_pages: 4,
                seed: 0x5eed,
            },
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let img = sample_image();
        let bytes = encode(&img);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn encode_with_pool_is_byte_identical() {
        let img = sample_image();
        let want = encode(&img);
        for w in [1usize, 2, 4, 8] {
            let pool = ckpt_par::Pool::new(w);
            assert_eq!(encode_with_pool(&img, &pool), want, "width {w}");
        }
    }

    #[test]
    fn vm_program_round_trips() {
        let mut img = sample_image();
        img.program = ProgramRecord::Vm {
            name: "counter".into(),
            text: vec![0xDEAD_BEEF, 1, 2, 3],
        };
        let back = decode(&encode(&img)).unwrap();
        assert_eq!(back.program, img.program);
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let bytes = encode(&sample_image());
        // Sample bit positions across the buffer, including inside the CRC.
        let positions = [0usize, 64, bytes.len() / 2, bytes.len() * 8 - 1];
        for bit in positions {
            let mut corrupted = bytes.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            assert!(
                decode(&corrupted).is_err(),
                "bit flip at {bit} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode(&sample_image());
        for cut in [0, 10, bytes.len() - 5, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "truncation at {cut} passed");
        }
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut bytes = encode(&sample_image());
        bytes.extend_from_slice(&[0, 1, 2, 3]);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn bad_magic_reported() {
        let img = sample_image();
        let mut bytes = encode(&img);
        // Rewrite magic and fix up CRC.
        bytes[0] = 0;
        let body_len = bytes.len() - 4;
        let crc = crate::crc::crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        match decode(&bytes) {
            Err(DecodeError::BadMagic(_)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn empty_sections_round_trip() {
        let mut img = sample_image();
        img.pages.clear();
        img.fds.clear();
        img.files.clear();
        img.timers.clear();
        img.sig = SigRecord::default();
        let back = decode(&encode(&img)).unwrap();
        assert_eq!(back, img);
    }
}
