//! Page-payload compression: zero-page elision and byte-level RLE.
//!
//! Scientific-application address spaces are full of zero pages (untouched
//! heap, zero-initialized arrays); eliding them is the cheapest data
//! reduction a checkpointer can apply, orthogonal to incremental
//! checkpointing. RLE catches the next-most-common pattern (constant
//! fills) at negligible CPU cost — appropriate for the paper's era, where
//! checkpoint compression had to compete with a 50 MB/s disk, not a
//! 5 GB/s one.

/// How a page payload is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageEncoding {
    /// Raw bytes.
    Raw,
    /// Run-length encoded (pairs of `count, byte`, count ≥ 1, ≤ 255).
    Rle,
    /// All-zero page: no payload at all.
    Zero,
}

impl PageEncoding {
    pub fn tag(self) -> u8 {
        match self {
            PageEncoding::Raw => 0,
            PageEncoding::Rle => 1,
            PageEncoding::Zero => 2,
        }
    }

    pub fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(PageEncoding::Raw),
            1 => Some(PageEncoding::Rle),
            2 => Some(PageEncoding::Zero),
            _ => None,
        }
    }
}

/// Reusable per-worker scratch space for page encoding. Holding the RLE
/// buffer across pages means each worker grows it once to steady state
/// instead of re-growing a fresh `Vec` for every page it encodes.
#[derive(Debug, Default)]
pub struct EncodeScratch {
    rle: Vec<u8>,
}

impl EncodeScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// RLE-encode `data` into `out` (cleared first). Returns `false` if the
/// encoding would not be smaller, leaving `out` in an unspecified state.
///
/// Every run emits exactly 2 bytes, so once `out.len() + 2 >= data.len()`
/// no completion can come in under the raw size — the check at the top of
/// the loop bails before the next run is even scanned, which on
/// incompressible pages skips most of the byte-compare work the old
/// run-boundary check still paid for.
fn rle_encode_into(data: &[u8], out: &mut Vec<u8>) -> bool {
    out.clear();
    let mut i = 0;
    while i < data.len() {
        if out.len() + 2 >= data.len() {
            return false;
        }
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b && run < 255 {
            run += 1;
        }
        out.push(run as u8);
        out.push(b);
        i += run;
    }
    true
}

/// RLE-encode `data`. Returns `None` if the encoding would not be smaller.
fn rle_encode(data: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len() / 2);
    rle_encode_into(data, &mut out).then_some(out)
}

/// RLE-decode into a buffer of known decoded size.
fn rle_decode(encoded: &[u8], decoded_len: usize) -> Result<Vec<u8>, CompressError> {
    if !encoded.len().is_multiple_of(2) {
        return Err(CompressError::Malformed("odd RLE payload length"));
    }
    let mut out = Vec::with_capacity(decoded_len);
    for pair in encoded.chunks_exact(2) {
        let (run, b) = (pair[0] as usize, pair[1]);
        if run == 0 {
            return Err(CompressError::Malformed("zero-length RLE run"));
        }
        if out.len() + run > decoded_len {
            return Err(CompressError::Malformed("RLE overflows decoded length"));
        }
        out.resize(out.len() + run, b);
    }
    if out.len() != decoded_len {
        return Err(CompressError::Malformed("RLE underfills decoded length"));
    }
    Ok(out)
}

/// Errors from payload decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressError {
    Malformed(&'static str),
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Malformed(m) => write!(f, "malformed compressed payload: {m}"),
        }
    }
}

impl std::error::Error for CompressError {}

/// True iff `data` is all zero bytes — word-at-a-time, since this scan runs
/// once per captured page and zero pages dominate sparse working sets.
fn is_zero_page(data: &[u8]) -> bool {
    let mut chunks = data.chunks_exact(8);
    chunks.all(|c| u64::from_le_bytes(c.try_into().unwrap()) == 0)
        && chunks.remainder().iter().all(|&b| b == 0)
}

/// Choose the best encoding for a page and produce its payload.
pub fn encode_page(data: &[u8]) -> (PageEncoding, Vec<u8>) {
    if is_zero_page(data) {
        return (PageEncoding::Zero, Vec::new());
    }
    match rle_encode(data) {
        Some(rle) => (PageEncoding::Rle, rle),
        None => (PageEncoding::Raw, data.to_vec()),
    }
}

/// [`encode_page`] with caller-provided scratch space. The RLE pass writes
/// into the scratch buffer; only a successful encoding is copied out, as an
/// exact-size allocation.
pub fn encode_page_with(data: &[u8], scratch: &mut EncodeScratch) -> (PageEncoding, Vec<u8>) {
    if is_zero_page(data) {
        return (PageEncoding::Zero, Vec::new());
    }
    if rle_encode_into(data, &mut scratch.rle) {
        (PageEncoding::Rle, scratch.rle.clone())
    } else {
        (PageEncoding::Raw, data.to_vec())
    }
}

/// Decode a page payload back to `page_size` bytes.
pub fn decode_page(
    enc: PageEncoding,
    payload: &[u8],
    page_size: usize,
) -> Result<Vec<u8>, CompressError> {
    match enc {
        PageEncoding::Zero => Ok(vec![0u8; page_size]),
        PageEncoding::Raw => {
            if payload.len() != page_size {
                return Err(CompressError::Malformed("raw payload wrong length"));
            }
            Ok(payload.to_vec())
        }
        PageEncoding::Rle => rle_decode(payload, page_size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: usize = 4096;

    #[test]
    fn zero_page_elided() {
        let page = vec![0u8; PS];
        let (enc, payload) = encode_page(&page);
        assert_eq!(enc, PageEncoding::Zero);
        assert!(payload.is_empty());
        assert_eq!(decode_page(enc, &payload, PS).unwrap(), page);
    }

    #[test]
    fn constant_fill_rle_compresses() {
        let page = vec![0xABu8; PS];
        let (enc, payload) = encode_page(&page);
        assert_eq!(enc, PageEncoding::Rle);
        assert!(payload.len() < PS / 100);
        assert_eq!(decode_page(enc, &payload, PS).unwrap(), page);
    }

    #[test]
    fn incompressible_falls_back_to_raw() {
        let page: Vec<u8> = (0..PS).map(|i| (i * 131 + 7) as u8).collect();
        let (enc, payload) = encode_page(&page);
        assert_eq!(enc, PageEncoding::Raw);
        assert_eq!(payload.len(), PS);
        assert_eq!(decode_page(enc, &payload, PS).unwrap(), page);
    }

    #[test]
    fn mixed_content_round_trips() {
        let mut page = vec![0u8; PS];
        page[0..100].fill(7);
        page[2000..2100].copy_from_slice(&(0..100).map(|i| i as u8).collect::<Vec<_>>());
        let (enc, payload) = encode_page(&page);
        assert_eq!(decode_page(enc, &payload, PS).unwrap(), page);
    }

    #[test]
    fn malformed_rle_rejected() {
        assert!(rle_decode(&[1], PS).is_err()); // odd length
        assert!(rle_decode(&[0, 5], PS).is_err()); // zero run
        assert!(rle_decode(&[255, 1], 10).is_err()); // overflow
        assert!(rle_decode(&[5, 1], PS).is_err()); // underfill
    }

    #[test]
    fn raw_wrong_length_rejected() {
        assert!(decode_page(PageEncoding::Raw, &[1, 2, 3], PS).is_err());
    }

    #[test]
    fn long_runs_split_at_255() {
        let page = vec![9u8; 1000];
        let (enc, payload) = encode_page(&page);
        assert_eq!(enc, PageEncoding::Rle);
        assert_eq!(decode_page(enc, &payload, 1000).unwrap(), page);
    }

    #[test]
    fn scratch_reuse_matches_fresh_encode() {
        // A single scratch across pages of very different shapes must give
        // exactly what per-page `encode_page` gives.
        let mut scratch = EncodeScratch::new();
        let pages: Vec<Vec<u8>> = vec![
            vec![0u8; PS],
            vec![0xABu8; PS],
            (0..PS).map(|i| (i * 131 + 7) as u8).collect(),
            {
                let mut p = vec![0u8; PS];
                p[100..300].fill(5);
                p[4000..4096].copy_from_slice(&(0..96).map(|i| i as u8).collect::<Vec<_>>());
                p
            },
        ];
        for page in &pages {
            assert_eq!(encode_page_with(page, &mut scratch), encode_page(page));
        }
    }

    #[test]
    fn early_bail_matches_reference_rle() {
        // The top-of-loop bail must return `None` in exactly the cases the
        // run-boundary check did. Reference: encode fully, then compare
        // sizes once at the end (a superset acceptor of any mid-loop bail).
        fn reference(data: &[u8]) -> Option<Vec<u8>> {
            let mut out = Vec::new();
            let mut i = 0;
            while i < data.len() {
                let b = data[i];
                let mut run = 1usize;
                while i + run < data.len() && data[i + run] == b && run < 255 {
                    run += 1;
                }
                out.push(run as u8);
                out.push(b);
                i += run;
            }
            // Empty input encodes to empty output (vacuously "smaller").
            (data.is_empty() || out.len() < data.len()).then_some(out)
        }
        let mut state = 0x1234_5678u32;
        for len in [0usize, 1, 2, 3, 7, 64, 255, 256, 1000] {
            for density in [0u32, 1, 4, 64, 255] {
                let data: Vec<u8> = (0..len)
                    .map(|_| {
                        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                        if (state >> 24) <= density { (state >> 8) as u8 } else { 0 }
                    })
                    .collect();
                assert_eq!(rle_encode(&data), reference(&data), "len {len} density {density}");
            }
        }
    }
}
