//! Page-payload compression: zero-page elision and byte-level RLE.
//!
//! Scientific-application address spaces are full of zero pages (untouched
//! heap, zero-initialized arrays); eliding them is the cheapest data
//! reduction a checkpointer can apply, orthogonal to incremental
//! checkpointing. RLE catches the next-most-common pattern (constant
//! fills) at negligible CPU cost — appropriate for the paper's era, where
//! checkpoint compression had to compete with a 50 MB/s disk, not a
//! 5 GB/s one.

/// How a page payload is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageEncoding {
    /// Raw bytes.
    Raw,
    /// Run-length encoded (pairs of `count, byte`, count ≥ 1, ≤ 255).
    Rle,
    /// All-zero page: no payload at all.
    Zero,
}

impl PageEncoding {
    pub fn tag(self) -> u8 {
        match self {
            PageEncoding::Raw => 0,
            PageEncoding::Rle => 1,
            PageEncoding::Zero => 2,
        }
    }

    pub fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(PageEncoding::Raw),
            1 => Some(PageEncoding::Rle),
            2 => Some(PageEncoding::Zero),
            _ => None,
        }
    }
}

/// RLE-encode `data`. Returns `None` if the encoding would not be smaller.
fn rle_encode(data: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len() / 2);
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b && run < 255 {
            run += 1;
        }
        out.push(run as u8);
        out.push(b);
        if out.len() >= data.len() {
            return None;
        }
        i += run;
    }
    Some(out)
}

/// RLE-decode into a buffer of known decoded size.
fn rle_decode(encoded: &[u8], decoded_len: usize) -> Result<Vec<u8>, CompressError> {
    if !encoded.len().is_multiple_of(2) {
        return Err(CompressError::Malformed("odd RLE payload length"));
    }
    let mut out = Vec::with_capacity(decoded_len);
    for pair in encoded.chunks_exact(2) {
        let (run, b) = (pair[0] as usize, pair[1]);
        if run == 0 {
            return Err(CompressError::Malformed("zero-length RLE run"));
        }
        if out.len() + run > decoded_len {
            return Err(CompressError::Malformed("RLE overflows decoded length"));
        }
        out.resize(out.len() + run, b);
    }
    if out.len() != decoded_len {
        return Err(CompressError::Malformed("RLE underfills decoded length"));
    }
    Ok(out)
}

/// Errors from payload decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressError {
    Malformed(&'static str),
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Malformed(m) => write!(f, "malformed compressed payload: {m}"),
        }
    }
}

impl std::error::Error for CompressError {}

/// True iff `data` is all zero bytes — word-at-a-time, since this scan runs
/// once per captured page and zero pages dominate sparse working sets.
fn is_zero_page(data: &[u8]) -> bool {
    let mut chunks = data.chunks_exact(8);
    chunks.all(|c| u64::from_le_bytes(c.try_into().unwrap()) == 0)
        && chunks.remainder().iter().all(|&b| b == 0)
}

/// Choose the best encoding for a page and produce its payload.
pub fn encode_page(data: &[u8]) -> (PageEncoding, Vec<u8>) {
    if is_zero_page(data) {
        return (PageEncoding::Zero, Vec::new());
    }
    match rle_encode(data) {
        Some(rle) => (PageEncoding::Rle, rle),
        None => (PageEncoding::Raw, data.to_vec()),
    }
}

/// Decode a page payload back to `page_size` bytes.
pub fn decode_page(
    enc: PageEncoding,
    payload: &[u8],
    page_size: usize,
) -> Result<Vec<u8>, CompressError> {
    match enc {
        PageEncoding::Zero => Ok(vec![0u8; page_size]),
        PageEncoding::Raw => {
            if payload.len() != page_size {
                return Err(CompressError::Malformed("raw payload wrong length"));
            }
            Ok(payload.to_vec())
        }
        PageEncoding::Rle => rle_decode(payload, page_size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: usize = 4096;

    #[test]
    fn zero_page_elided() {
        let page = vec![0u8; PS];
        let (enc, payload) = encode_page(&page);
        assert_eq!(enc, PageEncoding::Zero);
        assert!(payload.is_empty());
        assert_eq!(decode_page(enc, &payload, PS).unwrap(), page);
    }

    #[test]
    fn constant_fill_rle_compresses() {
        let page = vec![0xABu8; PS];
        let (enc, payload) = encode_page(&page);
        assert_eq!(enc, PageEncoding::Rle);
        assert!(payload.len() < PS / 100);
        assert_eq!(decode_page(enc, &payload, PS).unwrap(), page);
    }

    #[test]
    fn incompressible_falls_back_to_raw() {
        let page: Vec<u8> = (0..PS).map(|i| (i * 131 + 7) as u8).collect();
        let (enc, payload) = encode_page(&page);
        assert_eq!(enc, PageEncoding::Raw);
        assert_eq!(payload.len(), PS);
        assert_eq!(decode_page(enc, &payload, PS).unwrap(), page);
    }

    #[test]
    fn mixed_content_round_trips() {
        let mut page = vec![0u8; PS];
        page[0..100].fill(7);
        page[2000..2100].copy_from_slice(&(0..100).map(|i| i as u8).collect::<Vec<_>>());
        let (enc, payload) = encode_page(&page);
        assert_eq!(decode_page(enc, &payload, PS).unwrap(), page);
    }

    #[test]
    fn malformed_rle_rejected() {
        assert!(rle_decode(&[1], PS).is_err()); // odd length
        assert!(rle_decode(&[0, 5], PS).is_err()); // zero run
        assert!(rle_decode(&[255, 1], 10).is_err()); // overflow
        assert!(rle_decode(&[5, 1], PS).is_err()); // underfill
    }

    #[test]
    fn raw_wrong_length_rejected() {
        assert!(decode_page(PageEncoding::Raw, &[1, 2, 3], PS).is_err());
    }

    #[test]
    fn long_runs_split_at_255() {
        let page = vec![9u8; 1000];
        let (enc, payload) = encode_page(&page);
        assert_eq!(enc, PageEncoding::Rle);
        assert_eq!(decode_page(enc, &payload, 1000).unwrap(), page);
    }
}
