//! # ckpt-image — the checkpoint image format
//!
//! A checkpoint is only as good as the fidelity and integrity of its image.
//! This crate defines a sectioned binary format capturing everything the
//! paper's Section 4.1 lists as process state — registers, memory regions,
//! page contents, file descriptors (including `dup` sharing), signal state,
//! interval timers — plus the program spec needed to re-instantiate the
//! process, with:
//!
//! * **integrity**: a trailing CRC-32 covering the whole encoding; any
//!   corruption fails the restart loudly ([`codec`], [`crc`]);
//! * **compression**: zero-page elision and RLE, the data reductions that
//!   made sense against the paper's 50 MB/s disks ([`compress`]);
//! * **incremental chains**: full + delta images with validated lineage
//!   and deterministic reconstruction ([`chain`]).
//!
//! Capturing *from* and restoring *into* a live [`simos::Kernel`] is the
//! job of `ckpt-core`; this crate is the format.

pub mod chain;
pub mod codec;
pub mod compress;
pub mod crc;
pub mod format;
pub mod parallel;

pub use chain::{reconstruct, reconstruct_with, validate, ChainError};
pub use codec::{decode, encode, encode_with_pool, DecodeError};
pub use compress::{decode_page, encode_page, encode_page_with, EncodeScratch, PageEncoding};
pub use crc::{crc32, crc32_combine};
pub use parallel::{capture_pages_pipelined, crc32_par, encode_pages, reencode_image_pages};
pub use format::{
    CheckpointImage, FdRecord, FileContentRecord, ImageHeader, ImageKind, PageRecord,
    PolicyRecord, ProgramRecord, RegsRecord, SigActionRecord, SigRecord, TimerRecord, VmaRecord,
};
