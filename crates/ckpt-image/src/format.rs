//! The checkpoint image: an exhaustive, self-validating record of process
//! state.
//!
//! Section 4.1 of the paper enumerates what a checkpoint must capture:
//! "registers, memory regions, file descriptors, signal state, and more".
//! The image stores exactly that — registers, VMAs, page contents,
//! descriptor table (with dup-sharing groups), full signal state (including
//! pending signals and handler nesting), interval timers, scheduling
//! policy, and the program spec needed to re-instantiate the process.
//!
//! Images are either **full** or **incremental**; incremental images name
//! their parent sequence number and carry only dirtied pages (see
//! [`crate::chain`]).

use crate::compress::{decode_page, encode_page, encode_page_with, EncodeScratch, PageEncoding};
use simos::apps::{AppParams, NativeKind};
use simos::mem::{Prot, Vma, VmaKind, PAGE_SIZE};
use simos::pcb::{ProgramSpec, Regs};
use simos::signal::{Sig, SigAction, SignalState, UserHandlerKind};
use simos::sched::SchedPolicy;

/// Magic number at the start of every image ("CKPTIMG1").
pub const IMAGE_MAGIC: u64 = 0x434B_5054_494D_4731;
/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Full or incremental.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageKind {
    Full,
    Incremental,
}

/// Image metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageHeader {
    /// Pid of the checkpointed process (on its original node).
    pub pid: u32,
    /// Sequence number within the process's checkpoint series.
    pub seq: u64,
    /// For incremental images, the sequence this delta applies on top of.
    pub parent_seq: u64,
    pub kind: ImageKind,
    /// Virtual time the checkpoint was taken.
    pub taken_at_ns: u64,
    /// Name of the mechanism that produced the image (for provenance).
    pub mechanism: String,
    /// Node id the checkpoint was taken on.
    pub node: u32,
}

/// Saved registers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegsRecord {
    pub pc: u64,
    pub gpr: [u64; 16],
}

impl From<&Regs> for RegsRecord {
    fn from(r: &Regs) -> Self {
        RegsRecord {
            pc: r.pc,
            gpr: r.gpr,
        }
    }
}

impl RegsRecord {
    pub fn to_regs(&self) -> Regs {
        Regs {
            pc: self.pc,
            gpr: self.gpr,
        }
    }
}

/// A saved VMA.
#[derive(Debug, Clone, PartialEq)]
pub struct VmaRecord {
    pub start: u64,
    pub end: u64,
    pub prot: u8,
    pub kind: u8,
    pub name: String,
}

fn vma_kind_tag(k: VmaKind) -> u8 {
    match k {
        VmaKind::Text => 0,
        VmaKind::Data => 1,
        VmaKind::Heap => 2,
        VmaKind::Stack => 3,
        VmaKind::Mmap => 4,
        VmaKind::SharedLib => 5,
    }
}

fn vma_kind_from_tag(t: u8) -> Option<VmaKind> {
    Some(match t {
        0 => VmaKind::Text,
        1 => VmaKind::Data,
        2 => VmaKind::Heap,
        3 => VmaKind::Stack,
        4 => VmaKind::Mmap,
        5 => VmaKind::SharedLib,
        _ => return None,
    })
}

impl From<&Vma> for VmaRecord {
    fn from(v: &Vma) -> Self {
        VmaRecord {
            start: v.start,
            end: v.end,
            prot: v.prot.0,
            kind: vma_kind_tag(v.kind),
            name: v.name.clone(),
        }
    }
}

impl VmaRecord {
    pub fn to_vma(&self) -> Option<Vma> {
        Some(Vma {
            start: self.start,
            end: self.end,
            prot: Prot(self.prot),
            kind: vma_kind_from_tag(self.kind)?,
            name: self.name.clone(),
        })
    }
}

/// A saved page.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRecord {
    pub page_no: u64,
    pub enc: PageEncoding,
    pub payload: Vec<u8>,
}

impl PageRecord {
    /// Compress and record a page.
    pub fn capture(page_no: u64, data: &[u8]) -> Self {
        let (enc, payload) = encode_page(data);
        PageRecord {
            page_no,
            enc,
            payload,
        }
    }

    /// [`Self::capture`] with caller-provided scratch space — what pool
    /// workers use so each reuses one buffer across all its pages.
    pub fn capture_with(page_no: u64, data: &[u8], scratch: &mut EncodeScratch) -> Self {
        let (enc, payload) = encode_page_with(data, scratch);
        PageRecord {
            page_no,
            enc,
            payload,
        }
    }

    /// Decompress back to a full page.
    pub fn expand(&self) -> Result<Vec<u8>, crate::compress::CompressError> {
        decode_page(self.enc, &self.payload, PAGE_SIZE as usize)
    }
}

/// A saved file descriptor. Descriptors with the same `group` shared one
/// open-file description (dup) and must share one again after restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdRecord {
    pub fd: u32,
    pub path: String,
    pub offset: u64,
    /// Bit-packed OpenFlags: 1=read 2=write 4=create 8=trunc 16=append.
    pub flags: u8,
    pub group: u32,
}

impl FdRecord {
    pub fn flags_decoded(&self) -> simos::fs::OpenFlags {
        simos::fs::OpenFlags {
            read: self.flags & 1 != 0,
            write: self.flags & 2 != 0,
            create: self.flags & 4 != 0,
            truncate: false, // never re-truncate on restore
            append: self.flags & 16 != 0,
        }
    }

    pub fn pack_flags(f: simos::fs::OpenFlags) -> u8 {
        (f.read as u8)
            | (f.write as u8) << 1
            | (f.create as u8) << 2
            | (f.truncate as u8) << 3
            | (f.append as u8) << 4
    }
}

/// Saved contents of a file the process had open (UCLiK-style file-content
/// restoration, so restarts on another node see the same file data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileContentRecord {
    pub path: String,
    pub data: Vec<u8>,
}

/// One saved signal disposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigActionRecord {
    pub sig: u32,
    /// 0=Default 1=Ignore 2=VmFunction 3=CkptLibCheckpoint 4=DirtyTrackSegv
    /// 5=CountOnly.
    pub kind: u8,
    pub param: u64,
    pub non_reentrant: bool,
}

/// Full saved signal state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SigRecord {
    pub actions: Vec<SigActionRecord>,
    pub pending: Vec<u32>,
    pub mask: u64,
    pub in_handler: u32,
    pub non_reentrant_depth: u32,
}

impl SigRecord {
    /// Capture from live signal state (non-default dispositions only).
    pub fn capture(s: &SignalState) -> Self {
        let mut actions = Vec::new();
        for sig in 1..=Sig::MAX {
            let a = s.action(Sig(sig));
            let rec = match a {
                SigAction::Default => continue,
                SigAction::Ignore => SigActionRecord {
                    sig,
                    kind: 1,
                    param: 0,
                    non_reentrant: false,
                },
                SigAction::Handler {
                    kind,
                    uses_non_reentrant,
                } => {
                    let (k, p) = match kind {
                        UserHandlerKind::VmFunction(addr) => (2u8, *addr),
                        UserHandlerKind::CkptLibCheckpoint => (3, 0),
                        UserHandlerKind::DirtyTrackSegv => (4, 0),
                        UserHandlerKind::CountOnly => (5, 0),
                    };
                    SigActionRecord {
                        sig,
                        kind: k,
                        param: p,
                        non_reentrant: *uses_non_reentrant,
                    }
                }
            };
            actions.push(rec);
        }
        SigRecord {
            actions,
            pending: s.pending.iter().map(|s| s.0).collect(),
            mask: s.mask,
            in_handler: s.in_handler,
            non_reentrant_depth: s.non_reentrant_depth,
        }
    }

    /// Rebuild live signal state.
    pub fn restore(&self) -> SignalState {
        let mut s = SignalState::new();
        for a in &self.actions {
            let action = match a.kind {
                1 => SigAction::Ignore,
                2 => SigAction::Handler {
                    kind: UserHandlerKind::VmFunction(a.param),
                    uses_non_reentrant: a.non_reentrant,
                },
                3 => SigAction::Handler {
                    kind: UserHandlerKind::CkptLibCheckpoint,
                    uses_non_reentrant: a.non_reentrant,
                },
                4 => SigAction::Handler {
                    kind: UserHandlerKind::DirtyTrackSegv,
                    uses_non_reentrant: a.non_reentrant,
                },
                5 => SigAction::Handler {
                    kind: UserHandlerKind::CountOnly,
                    uses_non_reentrant: a.non_reentrant,
                },
                _ => SigAction::Default,
            };
            let _ = s.set_action(Sig(a.sig), action);
        }
        for p in &self.pending {
            s.post(Sig(*p));
        }
        s.mask = self.mask;
        s.in_handler = self.in_handler;
        s.non_reentrant_depth = self.non_reentrant_depth;
        s
    }
}

/// A saved interval timer (relative to checkpoint time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerRecord {
    /// ns until next firing, relative to checkpoint instant.
    pub in_ns: u64,
    /// Re-arm period (0 = one-shot).
    pub period_ns: u64,
    pub sig: u32,
}

fn native_kind_tag(k: NativeKind) -> u8 {
    match k {
        NativeKind::DenseSweep => 0,
        NativeKind::SparseRandom => 1,
        NativeKind::Stencil2D => 2,
        NativeKind::AppendLog => 3,
        NativeKind::ReadMostly => 4,
    }
}

fn native_kind_from_tag(t: u8) -> Option<NativeKind> {
    Some(match t {
        0 => NativeKind::DenseSweep,
        1 => NativeKind::SparseRandom,
        2 => NativeKind::Stencil2D,
        3 => NativeKind::AppendLog,
        4 => NativeKind::ReadMostly,
        _ => return None,
    })
}

/// The program the process runs (for re-instantiation at restart).
#[derive(Debug, Clone, PartialEq)]
pub enum ProgramRecord {
    Vm { name: String, text: Vec<u32> },
    Native {
        kind: u8,
        mem_bytes: u64,
        total_steps: u64,
        writes_per_step: u64,
        write_stride_pages: u64,
        seed: u64,
    },
}

impl ProgramRecord {
    pub fn capture(spec: &ProgramSpec) -> Self {
        match spec {
            ProgramSpec::Vm { text, name } => ProgramRecord::Vm {
                name: name.clone(),
                text: text.clone(),
            },
            ProgramSpec::Native { kind, params } => ProgramRecord::Native {
                kind: native_kind_tag(*kind),
                mem_bytes: params.mem_bytes,
                total_steps: params.total_steps,
                writes_per_step: params.writes_per_step,
                write_stride_pages: params.write_stride_pages,
                seed: params.seed,
            },
        }
    }

    pub fn to_spec(&self) -> Option<ProgramSpec> {
        Some(match self {
            ProgramRecord::Vm { name, text } => ProgramSpec::Vm {
                text: text.clone(),
                name: name.clone(),
            },
            ProgramRecord::Native {
                kind,
                mem_bytes,
                total_steps,
                writes_per_step,
                write_stride_pages,
                seed,
            } => ProgramSpec::Native {
                kind: native_kind_from_tag(*kind)?,
                params: AppParams {
                    mem_bytes: *mem_bytes,
                    total_steps: *total_steps,
                    writes_per_step: *writes_per_step,
                    write_stride_pages: *write_stride_pages,
                    seed: *seed,
                },
            },
        })
    }
}

/// Scheduling policy record: (tag, value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyRecord {
    pub tag: u8, // 0 = Other(nice), 1 = Fifo(rt_prio)
    pub value: i32,
}

impl PolicyRecord {
    pub fn capture(p: SchedPolicy) -> Self {
        match p {
            SchedPolicy::Other { nice } => PolicyRecord {
                tag: 0,
                value: nice,
            },
            SchedPolicy::Fifo { rt_prio } => PolicyRecord {
                tag: 1,
                value: rt_prio as i32,
            },
        }
    }

    pub fn to_policy(self) -> SchedPolicy {
        match self.tag {
            1 => SchedPolicy::Fifo {
                rt_prio: self.value.clamp(0, 99) as u8,
            },
            _ => SchedPolicy::Other {
                nice: self.value.clamp(-20, 19),
            },
        }
    }
}

/// A complete checkpoint image.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointImage {
    pub header: ImageHeader,
    pub regs: RegsRecord,
    pub brk: u64,
    pub work_done: u64,
    pub policy: PolicyRecord,
    pub vmas: Vec<VmaRecord>,
    pub pages: Vec<PageRecord>,
    pub fds: Vec<FdRecord>,
    pub files: Vec<FileContentRecord>,
    pub sig: SigRecord,
    pub timers: Vec<TimerRecord>,
    pub program: ProgramRecord,
}

impl CheckpointImage {
    /// Number of pages carried.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Uncompressed bytes of page data represented.
    pub fn memory_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }

    /// Bytes of page payload actually stored (post-compression).
    pub fn payload_bytes(&self) -> u64 {
        self.pages.iter().map(|p| p.payload.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regs_round_trip() {
        let mut r = Regs {
            pc: 0x400004,
            ..Regs::default()
        };
        r.gpr[3] = 77;
        let rec = RegsRecord::from(&r);
        assert_eq!(rec.to_regs(), r);
    }

    #[test]
    fn vma_round_trip() {
        let v = Vma {
            start: 0x1000,
            end: 0x3000,
            prot: Prot::RW,
            kind: VmaKind::Heap,
            name: "[heap]".into(),
        };
        let rec = VmaRecord::from(&v);
        assert_eq!(rec.to_vma().unwrap(), v);
    }

    #[test]
    fn bad_vma_kind_tag_rejected() {
        let rec = VmaRecord {
            start: 0,
            end: 0,
            prot: 0,
            kind: 99,
            name: String::new(),
        };
        assert!(rec.to_vma().is_none());
    }

    #[test]
    fn page_record_compresses_zero_pages() {
        let rec = PageRecord::capture(5, &vec![0u8; PAGE_SIZE as usize]);
        assert_eq!(rec.enc, PageEncoding::Zero);
        assert!(rec.payload.is_empty());
        assert_eq!(rec.expand().unwrap(), vec![0u8; PAGE_SIZE as usize]);
    }

    #[test]
    fn sig_record_round_trips_dispositions() {
        let mut s = SignalState::new();
        s.set_action(Sig::SIGUSR1, SigAction::Ignore).unwrap();
        s.set_action(
            Sig::SIGALRM,
            SigAction::Handler {
                kind: UserHandlerKind::VmFunction(0x400040),
                uses_non_reentrant: true,
            },
        )
        .unwrap();
        s.post(Sig::SIGUSR2);
        s.mask = Sig::SIGTERM.bit();
        s.non_reentrant_depth = 2;
        let rec = SigRecord::capture(&s);
        let restored = rec.restore();
        assert_eq!(restored.action(Sig::SIGUSR1), &SigAction::Ignore);
        assert_eq!(
            restored.action(Sig::SIGALRM),
            &SigAction::Handler {
                kind: UserHandlerKind::VmFunction(0x400040),
                uses_non_reentrant: true
            }
        );
        assert_eq!(restored.pending_mask(), s.pending_mask());
        assert_eq!(restored.mask, s.mask);
        assert_eq!(restored.non_reentrant_depth, 2);
    }

    #[test]
    fn program_record_round_trips_both_kinds() {
        let vm = ProgramSpec::Vm {
            text: vec![1, 2, 3],
            name: "p".into(),
        };
        assert_eq!(ProgramRecord::capture(&vm).to_spec().unwrap(), vm);
        let native = ProgramSpec::Native {
            kind: NativeKind::Stencil2D,
            params: AppParams::medium(),
        };
        assert_eq!(ProgramRecord::capture(&native).to_spec().unwrap(), native);
    }

    #[test]
    fn policy_record_round_trips() {
        for p in [
            SchedPolicy::Other { nice: -5 },
            SchedPolicy::Fifo { rt_prio: 42 },
        ] {
            assert_eq!(PolicyRecord::capture(p).to_policy(), p);
        }
    }

    #[test]
    fn fd_flags_pack_unpack() {
        let f = simos::fs::OpenFlags::RDWR_CREATE;
        let packed = FdRecord::pack_flags(f);
        let rec = FdRecord {
            fd: 0,
            path: "/x".into(),
            offset: 0,
            flags: packed,
            group: 0,
        };
        let got = rec.flags_decoded();
        assert!(got.read && got.write && got.create);
        assert!(!got.truncate, "restore must never re-truncate");
    }
}
