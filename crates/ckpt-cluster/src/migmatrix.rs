//! # migmatrix — the live-migration tier of the crash matrix
//!
//! [`ckpt_core::crashpoint`] proves restart correctness for the
//! checkpoint mechanisms; this module extends the same discipline to the
//! migration path itself, which Skjellum et al. argue must be as fault
//! tolerant as the checkpoints it moves. Every `livemig/*` faultpoint the
//! two live strategies visit (`livemig/round@n`, `livemig/cutover@1`,
//! `livemig/demand-fault@n`) is armed with every applicable fault kind,
//! and each cell must end exactly like a crashpoint cell:
//!
//! * **Restarted** — the guest survives on the target, bit-for-bit equal
//!   to the deterministic replay (a transient is absorbed by one
//!   retransmission, `lost_steps == 0`), or the source died mid-migration
//!   and a fallback restore from the last durable baseline checkpoint
//!   recovered bit-exactly with `lost_steps > 0`.
//! * **Detected** — a typed error ([`SimError::CutoverDiverged`]) with
//!   the source guest still intact and runnable.
//! * **Violation** — anything else. Zero of these is the acceptance bar.
//!
//! Cells are verified **twice**: immediately after recovery (pinning the
//! rollback distance) and again after a further run window (catching
//! latent corruption that only surfaces once the guest runs on).

use crate::cluster::{Cluster, FailureConfig};
use crate::livemig::{migrate_postcopy, migrate_precopy, LiveMigConfig};
use crate::node::NodeId;
use ckpt_core::capture::{
    capture_image, restore_image, CaptureOptions, RestoreOptions, RestorePid,
};
use ckpt_core::crashpoint::{app_params, faults_for, verify_restored, CellOutcome, MatrixCell};
use ckpt_image::CheckpointImage;
use simos::apps::NativeKind;
use simos::cost::CostModel;
use simos::faultpoint::{Fault, FaultHandle};
use simos::types::{Pid, SimError};

/// The two live strategies swept by this tier.
pub const MIGRATION_MECHS: [&str; 2] = ["livemig-precopy", "livemig-postcopy"];

/// The tier's "backend" label: migration runs between cluster nodes, not
/// against a storage medium.
pub const MIGRATION_BACKEND: &str = "cluster(2)";

const FROM: NodeId = NodeId(0);
const TO: NodeId = NodeId(1);

/// Run window before the durable baseline checkpoint.
const RUN1_NS: u64 = 3_000_000;
/// Run window between the baseline and the migration attempt.
const RUN2_NS: u64 = 1_500_000;
/// Run window after recovery, before the second verification.
const RUN3_NS: u64 = 500_000;

/// Spawn the crashpoint app on node 0, run, take the durable baseline the
/// fallback path restores from, run some more, then install `faults` on
/// the source kernel so only the migration itself is under injection.
fn setup(faults: &FaultHandle) -> (Cluster, Pid, CheckpointImage) {
    let mut c = Cluster::new(2, CostModel::circa_2005(), FailureConfig::none());
    let pid = c
        .node(FROM)
        .kernel()
        .expect("fresh node")
        .spawn_native(NativeKind::SparseRandom, app_params())
        .expect("spawn");
    c.advance(RUN1_NS);
    let baseline = {
        let k = c.node(FROM).kernel().expect("source alive");
        k.freeze_process(pid).expect("freeze for baseline");
        let mut opts = CaptureOptions::full("migbase", 1);
        opts.save_file_contents = true;
        let img = capture_image(k, pid, &opts).expect("baseline capture");
        k.thaw_process(pid).expect("thaw after baseline");
        img
    };
    c.advance(RUN2_NS);
    c.node(FROM).kernel().expect("source alive").set_faults(faults.clone());
    (c, pid, baseline)
}

/// Bit-exact verification now, then again after the guest runs on.
fn verify_twice(c: &mut Cluster, node: NodeId, pid: Pid, floor: u64) -> Result<u64, String> {
    let params = app_params();
    let step = {
        let k = c
            .node(node)
            .kernel()
            .ok_or_else(|| format!("{node} down at verification"))?;
        verify_restored(k, pid, &params)?
    };
    if step < floor {
        return Err(format!(
            "recovered guest is at step {step}, below the floor {floor} it had already reached"
        ));
    }
    c.advance(RUN3_NS);
    let k = c
        .node(node)
        .kernel()
        .ok_or_else(|| format!("{node} down after the post-recovery window"))?;
    let later = verify_restored(k, pid, &params)?;
    if later <= step {
        return Err(format!(
            "recovered guest made no progress after recovery ({step} -> {later})"
        ));
    }
    Ok(step)
}

fn run_migration(
    mech: &str,
    c: &mut Cluster,
    pid: Pid,
    cfg: &LiveMigConfig,
) -> Result<Pid, SimError> {
    match mech {
        "livemig-precopy" => migrate_precopy(c, FROM, pid, TO, cfg).map(|r| r.new_pid),
        "livemig-postcopy" => migrate_postcopy(c, FROM, pid, TO, cfg).map(|r| r.new_pid),
        other => panic!("unknown migration mechanism {other}"),
    }
}

/// One armed cell: migrate under the fault, then classify.
fn run_cell(mech: &'static str, site: &str, fault: Fault) -> CellOutcome {
    let faults = FaultHandle::armed(site, fault);
    let (mut c, pid, baseline) = setup(&faults);
    let work_at_mig = c
        .node(FROM)
        .kernel()
        .expect("source alive")
        .process(pid)
        .expect("guest alive")
        .work_done;
    let cfg = LiveMigConfig::default();
    match run_migration(mech, &mut c, pid, &cfg) {
        Ok(new_pid) => {
            // The migration absorbed the fault (clean cell or transient
            // retransmission): the target copy must be bit-exact and must
            // have lost nothing.
            match verify_twice(&mut c, TO, new_pid, work_at_mig) {
                Ok(_) => CellOutcome::Restarted { lost_steps: 0 },
                Err(what) => CellOutcome::Violation { what },
            }
        }
        Err(e @ SimError::CutoverDiverged { .. }) => {
            // Typed divergence: the migration was abandoned, so the
            // *source* guest must still be intact and runnable.
            faults.clear_crash();
            match verify_twice(&mut c, FROM, pid, work_at_mig) {
                Ok(_) => CellOutcome::Detected {
                    error: e.to_string(),
                },
                Err(what) => CellOutcome::Violation {
                    what: format!("after {e}: {what}"),
                },
            }
        }
        Err(e @ SimError::SourceLostMidMigration { .. }) => {
            // The source died with pages undrained. The typed error is the
            // cue to fall back to the last durable baseline — the exact
            // recovery a coordinator would run — and that restart must be
            // bit-exact with a positive rollback distance.
            faults.clear_crash();
            let restored = {
                let Some(k) = c.node(TO).kernel() else {
                    return CellOutcome::Violation {
                        what: format!("after {e}: target down, nowhere to fall back to"),
                    };
                };
                restore_image(k, &baseline, &RestoreOptions::fresh_running(RestorePid::Fresh))
            };
            match restored {
                Ok(np) => match verify_twice(&mut c, TO, np, 0) {
                    Ok(step) => {
                        if step >= work_at_mig {
                            return CellOutcome::Violation {
                                what: format!(
                                    "fallback restore claims step {step} >= pre-migration \
                                     work {work_at_mig}: baseline cannot be that fresh"
                                ),
                            };
                        }
                        CellOutcome::Restarted {
                            lost_steps: work_at_mig - step,
                        }
                    }
                    Err(what) => CellOutcome::Violation {
                        what: format!("after {e}: {what}"),
                    },
                },
                Err(re) => CellOutcome::Violation {
                    what: format!("after {e}: fallback restore failed: {re}"),
                },
            }
        }
        Err(other) => CellOutcome::Violation {
            what: format!("untyped migration failure: {other}"),
        },
    }
}

/// All cells for one live-migration mechanism: a fault-free recording
/// pass enumerates every site the strategy visits, then each site is
/// armed with every applicable fault kind.
pub fn migration_matrix_cells(mech: &'static str) -> Vec<MatrixCell> {
    let faults = FaultHandle::recording();
    let (mut c, pid, _baseline) = setup(&faults);
    let cfg = LiveMigConfig::default();
    run_migration(mech, &mut c, pid, &cfg).expect("fault-free recording pass must succeed");
    let mut cells = Vec::new();
    for site in faults.sites() {
        for (label, fault) in faults_for(&site) {
            let outcome = match fault {
                None => CellOutcome::Skipped {
                    reason: format!("{label} requires a byte stream at this site"),
                },
                Some(f) => run_cell(mech, &site.name, f),
            };
            cells.push(MatrixCell {
                mechanism: mech,
                backend: MIGRATION_BACKEND,
                site: site.name.clone(),
                fault: label,
                outcome,
            });
        }
    }
    cells
}

/// The whole migration tier: both live strategies.
pub fn run_migration_tier() -> Vec<MatrixCell> {
    let mut cells = Vec::new();
    for mech in MIGRATION_MECHS {
        cells.extend(migration_matrix_cells(mech));
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_pass_enumerates_both_strategies_sites() {
        for mech in MIGRATION_MECHS {
            let faults = FaultHandle::recording();
            let (mut c, pid, _) = setup(&faults);
            run_migration(mech, &mut c, pid, &LiveMigConfig::default()).expect("clean run");
            let sites = faults.sites();
            assert!(
                sites.iter().any(|s| s.name.starts_with("livemig/cutover")),
                "{mech}: cutover site missing from {sites:?}"
            );
            let body_site = if mech == "livemig-precopy" {
                "livemig/round"
            } else {
                "livemig/demand-fault"
            };
            assert!(
                sites.iter().any(|s| s.name.starts_with(body_site)),
                "{mech}: no {body_site} sites recorded"
            );
        }
    }

    #[test]
    fn clean_cells_restart_with_zero_loss() {
        for mech in MIGRATION_MECHS {
            // An unarmed site never fires: equivalent to a clean run.
            let cell = run_cell(mech, "never/armed", Fault::FailStop);
            assert_eq!(
                cell,
                CellOutcome::Restarted { lost_steps: 0 },
                "{mech} clean cell"
            );
        }
    }

    #[test]
    fn cutover_failstop_falls_back_to_baseline() {
        for mech in MIGRATION_MECHS {
            let cell = run_cell(mech, "livemig/cutover@1", Fault::FailStop);
            match cell {
                CellOutcome::Restarted { lost_steps } => {
                    assert!(lost_steps > 0, "{mech}: fallback must roll back");
                }
                other => panic!("{mech}: expected fallback Restarted, got {other:?}"),
            }
        }
    }
}
