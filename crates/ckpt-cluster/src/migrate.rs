//! Process migration between nodes — the original use case of the early
//! checkpoint/restart systems (VMADump/BProc, CRAK, ZAP) before fault
//! tolerance.
//!
//! Migration = checkpoint on the source node + transfer + restore on the
//! target. Without virtualization the restore can collide with the
//! target's resources (same pid, same file paths) — the problem ZAP's pods
//! solve, at the price of a per-syscall interposition tax
//! ([`ckpt_core::pod`]).

use crate::cluster::Cluster;
use crate::node::NodeId;
use ckpt_core::capture::{capture_image, restore_image, CaptureOptions, RestoreOptions, RestorePid};
use ckpt_core::pod::Pod;
use simos::types::{Pid, SimError, SimResult};

/// How the restored process acquires resources on the target node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationMode {
    /// Keep the original pid and raw paths — fails on conflicts (the
    /// pre-ZAP systems).
    KeepIdentity,
    /// Take a fresh pid, raw paths — survives pid conflicts only.
    FreshPid,
    /// Full pod virtualization — survives both pid and path conflicts.
    Podded,
    /// Iterative pre-copy live migration ([`crate::livemig`]): dirty-set
    /// transfer rounds while the guest runs, dirty-rate-adaptive cutover.
    PreCopy,
    /// Post-copy live migration ([`crate::livemig`]): resume on the
    /// target immediately, demand-fault the residual pages.
    PostCopy,
}

/// Result of a completed migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationReport {
    pub from: NodeId,
    pub to: NodeId,
    pub new_pid: Pid,
    pub bytes_moved: u64,
    pub total_ns: u64,
}

/// Migrate `pid` from `from` to `to` over the interconnect.
pub fn migrate(
    cluster: &mut Cluster,
    from: NodeId,
    pid: Pid,
    to: NodeId,
    mode: MigrationMode,
    pod: Option<&mut Pod>,
) -> SimResult<MigrationReport> {
    if from == to {
        return Err(SimError::Usage("source and target are the same node".into()));
    }
    let t0 = cluster.now();
    // The live strategies delegate to `livemig` with default tuning and
    // report through the same struct.
    match mode {
        MigrationMode::PreCopy => {
            let cfg = crate::livemig::LiveMigConfig::default();
            let r = crate::livemig::migrate_precopy(cluster, from, pid, to, &cfg)?;
            return Ok(MigrationReport {
                from,
                to,
                new_pid: r.new_pid,
                bytes_moved: r.bytes_total(),
                total_ns: cluster.now().max(t0) - t0,
            });
        }
        MigrationMode::PostCopy => {
            let cfg = crate::livemig::LiveMigConfig::default();
            let r = crate::livemig::migrate_postcopy(cluster, from, pid, to, &cfg)?;
            return Ok(MigrationReport {
                from,
                to,
                new_pid: r.new_pid,
                bytes_moved: r.bytes_minimal
                    + r.residual_moved() * simos::cost::PAGE_SIZE,
                total_ns: cluster.now().max(t0) - t0,
            });
        }
        _ => {}
    }
    // Source: freeze + capture + send.
    let (img, faults) = {
        let k = cluster
            .node(from)
            .kernel()
            .ok_or_else(|| SimError::Usage(format!("{from} is down")))?;
        k.freeze_process(pid)?;
        let mut opts = CaptureOptions::full("migrate", 1);
        opts.save_file_contents = true;
        let img = capture_image(k, pid, &opts)?;
        // Wire cost on the sender.
        let bytes = ckpt_image::encode(&img).len() as u64;
        let t = k.cost.net_latency_ns + (bytes as f64 * k.cost.net_ns_per_byte).round() as u64;
        k.charge(t);
        (img, k.faults.clone())
    };
    let bytes_moved = ckpt_image::encode(&img).len() as u64;
    // Target: receive + restore.
    let new_pid = {
        let k = cluster
            .node(to)
            .kernel()
            .ok_or_else(|| SimError::Usage(format!("{to} is down")))?;
        let t = k.cost.memcpy(bytes_moved);
        k.charge(t);
        match mode {
            MigrationMode::KeepIdentity => {
                restore_image(k, &img, &RestoreOptions::fresh_running(RestorePid::Original))?
            }
            MigrationMode::FreshPid => {
                restore_image(k, &img, &RestoreOptions::fresh_running(RestorePid::Fresh))?
            }
            MigrationMode::Podded => {
                let pod = pod.ok_or_else(|| {
                    SimError::Usage("Podded migration requires a pod".into())
                })?;
                pod.restore(k, &img)?
            }
            // Dispatched to `livemig` before the freeze above.
            MigrationMode::PreCopy | MigrationMode::PostCopy => unreachable!(),
        }
    };
    // Teardown handshake: the target's ACK and the source's exit cross
    // the wire; an armed `migrate/transfer` fault models the source dying
    // in this window, after the target already owns the process.
    match faults.check("migrate/transfer", bytes_moved) {
        None => {}
        Some(simos::faultpoint::Fault::Transient) => {
            // One retransmission of the ACK frame.
            if let Some(k) = cluster.node(from).kernel() {
                let t = k.cost.net_latency_ns
                    + (bytes_moved as f64 * k.cost.net_ns_per_byte).round() as u64;
                k.charge(t);
            }
        }
        Some(f) => {
            if matches!(f, simos::faultpoint::Fault::TornWrite { .. }) {
                faults.set_crashed();
            }
            cluster.inject_failure(from);
        }
    }
    // Source: the process has left the building.
    {
        let k = cluster
            .node(from)
            .kernel()
            .ok_or_else(|| SimError::Usage(format!("{from} went down mid-migration")))?;
        if let Some(p) = k.process_mut(pid) {
            p.state = simos::pcb::ProcState::Zombie { code: 0 };
        }
        let _ = k.reap(pid);
    }
    cluster.trace().cluster(
        simos::trace::ClusterEvent::Migration {
            from: from.0,
            to: to.0,
            bytes: bytes_moved,
        },
        cluster.now(),
    );
    Ok(MigrationReport {
        from,
        to,
        new_pid,
        bytes_moved,
        total_ns: cluster.now().max(t0) - t0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::FailureConfig;
    use simos::apps::{AppParams, NativeKind};
    use simos::cost::CostModel;

    fn setup() -> (Cluster, Pid) {
        let mut c = Cluster::new(2, CostModel::circa_2005(), FailureConfig::none());
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let pid = c
            .node(NodeId(0))
            .kernel()
            .unwrap()
            .spawn_native(NativeKind::SparseRandom, params)
            .unwrap();
        c.advance(20_000_000);
        (c, pid)
    }

    #[test]
    fn migration_moves_execution_to_the_target() {
        let (mut c, pid) = setup();
        let w0 = c
            .node(NodeId(0))
            .kernel()
            .unwrap()
            .process(pid)
            .unwrap()
            .work_done;
        let r = migrate(&mut c, NodeId(0), pid, NodeId(1), MigrationMode::FreshPid, None).unwrap();
        assert!(r.bytes_moved > 0);
        // Gone from source, running on target with progress preserved.
        assert!(c.node(NodeId(0)).kernel().unwrap().process(pid).is_none());
        let w1 = c
            .node(NodeId(1))
            .kernel()
            .unwrap()
            .process(r.new_pid)
            .unwrap()
            .work_done;
        assert_eq!(w1, w0);
        c.advance(30_000_000);
        assert!(
            c.node(NodeId(1))
                .kernel()
                .unwrap()
                .process(r.new_pid)
                .unwrap()
                .work_done
                > w0
        );
    }

    #[test]
    fn keep_identity_fails_on_pid_conflict_pod_succeeds() {
        let (mut c, pid) = setup();
        // Occupy the same pid number on the target.
        let squatter_params = AppParams::small();
        let squatter = c
            .node(NodeId(1))
            .kernel()
            .unwrap()
            .spawn_native(NativeKind::SparseRandom, {
                let mut p = squatter_params;
                p.total_steps = u64::MAX;
                p
            })
            .unwrap();
        assert_eq!(squatter.0, pid.0, "test setup: pids must collide");
        let err = migrate(
            &mut c,
            NodeId(0),
            pid,
            NodeId(1),
            MigrationMode::KeepIdentity,
            None,
        );
        assert!(err.is_err(), "identity migration must hit the conflict");
        // Thaw the source process back (it was frozen by the attempt).
        c.node(NodeId(0)).kernel().unwrap().thaw_process(pid).unwrap();
        let mut pod = Pod::new("migrated");
        let r = migrate(
            &mut c,
            NodeId(0),
            pid,
            NodeId(1),
            MigrationMode::Podded,
            Some(&mut pod),
        )
        .unwrap();
        assert_ne!(r.new_pid.0, pid.0);
        assert_eq!(pod.physical(pid.0), Some(r.new_pid));
    }

    #[test]
    fn migration_to_dead_node_fails() {
        let (mut c, pid) = setup();
        c.inject_failure(NodeId(1));
        assert!(migrate(&mut c, NodeId(0), pid, NodeId(1), MigrationMode::FreshPid, None).is_err());
    }

    #[test]
    fn source_loss_mid_migration_is_reported() {
        // The source dies in the teardown window, after the target has
        // restored: migrate() must surface the mid-migration loss rather
        // than pretend the teardown happened.
        let (mut c, pid) = setup();
        let faults =
            simos::faultpoint::FaultHandle::armed("migrate/transfer@1", simos::faultpoint::Fault::FailStop);
        c.node(NodeId(0)).kernel().unwrap().set_faults(faults);
        let err = migrate(&mut c, NodeId(0), pid, NodeId(1), MigrationMode::FreshPid, None)
            .expect_err("armed teardown fault must surface");
        assert!(
            err.to_string().contains("went down mid-migration"),
            "unexpected error: {err}"
        );
        assert!(!c.node(NodeId(0)).alive());
        // The target still owns a runnable copy: migration completed from
        // its point of view before the source died.
        let k = c.node(NodeId(1)).kernel().unwrap();
        assert_eq!(k.pids().len(), 1);
    }

    #[test]
    fn live_modes_route_through_livemig() {
        let (mut c, pid) = setup();
        let r = migrate(&mut c, NodeId(0), pid, NodeId(1), MigrationMode::PreCopy, None).unwrap();
        assert!(r.bytes_moved > 0);
        let k = c.node(NodeId(1)).kernel().unwrap();
        assert!(k.process(r.new_pid).is_some());

        let (mut c, pid) = setup();
        let r = migrate(&mut c, NodeId(0), pid, NodeId(1), MigrationMode::PostCopy, None).unwrap();
        assert!(r.bytes_moved > 0);
        let k = c.node(NodeId(1)).kernel().unwrap();
        assert!(k.process(r.new_pid).is_some());
    }

    #[test]
    fn self_migration_rejected() {
        let (mut c, pid) = setup();
        assert!(migrate(&mut c, NodeId(0), pid, NodeId(0), MigrationMode::FreshPid, None).is_err());
    }
}
