//! Process migration between nodes — the original use case of the early
//! checkpoint/restart systems (VMADump/BProc, CRAK, ZAP) before fault
//! tolerance.
//!
//! Migration = checkpoint on the source node + transfer + restore on the
//! target. Without virtualization the restore can collide with the
//! target's resources (same pid, same file paths) — the problem ZAP's pods
//! solve, at the price of a per-syscall interposition tax
//! ([`ckpt_core::pod`]).

use crate::cluster::Cluster;
use crate::node::NodeId;
use ckpt_core::capture::{capture_image, restore_image, CaptureOptions, RestoreOptions, RestorePid};
use ckpt_core::pod::Pod;
use simos::types::{Pid, SimError, SimResult};

/// How the restored process acquires resources on the target node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationMode {
    /// Keep the original pid and raw paths — fails on conflicts (the
    /// pre-ZAP systems).
    KeepIdentity,
    /// Take a fresh pid, raw paths — survives pid conflicts only.
    FreshPid,
    /// Full pod virtualization — survives both pid and path conflicts.
    Podded,
}

/// Result of a completed migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationReport {
    pub from: NodeId,
    pub to: NodeId,
    pub new_pid: Pid,
    pub bytes_moved: u64,
    pub total_ns: u64,
}

/// Migrate `pid` from `from` to `to` over the interconnect.
pub fn migrate(
    cluster: &mut Cluster,
    from: NodeId,
    pid: Pid,
    to: NodeId,
    mode: MigrationMode,
    pod: Option<&mut Pod>,
) -> SimResult<MigrationReport> {
    if from == to {
        return Err(SimError::Usage("source and target are the same node".into()));
    }
    let t0 = cluster.now();
    // Source: freeze + capture + send.
    let img = {
        let k = cluster
            .node(from)
            .kernel()
            .ok_or_else(|| SimError::Usage(format!("{from} is down")))?;
        k.freeze_process(pid)?;
        let mut opts = CaptureOptions::full("migrate", 1);
        opts.save_file_contents = true;
        let img = capture_image(k, pid, &opts)?;
        // Wire cost on the sender.
        let bytes = ckpt_image::encode(&img).len() as u64;
        let t = k.cost.net_latency_ns + (bytes as f64 * k.cost.net_ns_per_byte).round() as u64;
        k.charge(t);
        img
    };
    let bytes_moved = ckpt_image::encode(&img).len() as u64;
    // Target: receive + restore.
    let new_pid = {
        let k = cluster
            .node(to)
            .kernel()
            .ok_or_else(|| SimError::Usage(format!("{to} is down")))?;
        let t = k.cost.memcpy(bytes_moved);
        k.charge(t);
        match mode {
            MigrationMode::KeepIdentity => {
                restore_image(k, &img, &RestoreOptions::fresh_running(RestorePid::Original))?
            }
            MigrationMode::FreshPid => {
                restore_image(k, &img, &RestoreOptions::fresh_running(RestorePid::Fresh))?
            }
            MigrationMode::Podded => {
                let pod = pod.ok_or_else(|| {
                    SimError::Usage("Podded migration requires a pod".into())
                })?;
                pod.restore(k, &img)?
            }
        }
    };
    // Source: the process has left the building.
    {
        let k = cluster
            .node(from)
            .kernel()
            .ok_or_else(|| SimError::Usage(format!("{from} went down mid-migration")))?;
        if let Some(p) = k.process_mut(pid) {
            p.state = simos::pcb::ProcState::Zombie { code: 0 };
        }
        let _ = k.reap(pid);
    }
    cluster.trace().cluster(
        simos::trace::ClusterEvent::Migration {
            from: from.0,
            to: to.0,
            bytes: bytes_moved,
        },
        cluster.now(),
    );
    Ok(MigrationReport {
        from,
        to,
        new_pid,
        bytes_moved,
        total_ns: cluster.now().max(t0) - t0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::FailureConfig;
    use simos::apps::{AppParams, NativeKind};
    use simos::cost::CostModel;

    fn setup() -> (Cluster, Pid) {
        let mut c = Cluster::new(2, CostModel::circa_2005(), FailureConfig::none());
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let pid = c
            .node(NodeId(0))
            .kernel()
            .unwrap()
            .spawn_native(NativeKind::SparseRandom, params)
            .unwrap();
        c.advance(20_000_000);
        (c, pid)
    }

    #[test]
    fn migration_moves_execution_to_the_target() {
        let (mut c, pid) = setup();
        let w0 = c
            .node(NodeId(0))
            .kernel()
            .unwrap()
            .process(pid)
            .unwrap()
            .work_done;
        let r = migrate(&mut c, NodeId(0), pid, NodeId(1), MigrationMode::FreshPid, None).unwrap();
        assert!(r.bytes_moved > 0);
        // Gone from source, running on target with progress preserved.
        assert!(c.node(NodeId(0)).kernel().unwrap().process(pid).is_none());
        let w1 = c
            .node(NodeId(1))
            .kernel()
            .unwrap()
            .process(r.new_pid)
            .unwrap()
            .work_done;
        assert_eq!(w1, w0);
        c.advance(30_000_000);
        assert!(
            c.node(NodeId(1))
                .kernel()
                .unwrap()
                .process(r.new_pid)
                .unwrap()
                .work_done
                > w0
        );
    }

    #[test]
    fn keep_identity_fails_on_pid_conflict_pod_succeeds() {
        let (mut c, pid) = setup();
        // Occupy the same pid number on the target.
        let squatter_params = AppParams::small();
        let squatter = c
            .node(NodeId(1))
            .kernel()
            .unwrap()
            .spawn_native(NativeKind::SparseRandom, {
                let mut p = squatter_params;
                p.total_steps = u64::MAX;
                p
            })
            .unwrap();
        assert_eq!(squatter.0, pid.0, "test setup: pids must collide");
        let err = migrate(
            &mut c,
            NodeId(0),
            pid,
            NodeId(1),
            MigrationMode::KeepIdentity,
            None,
        );
        assert!(err.is_err(), "identity migration must hit the conflict");
        // Thaw the source process back (it was frozen by the attempt).
        c.node(NodeId(0)).kernel().unwrap().thaw_process(pid).unwrap();
        let mut pod = Pod::new("migrated");
        let r = migrate(
            &mut c,
            NodeId(0),
            pid,
            NodeId(1),
            MigrationMode::Podded,
            Some(&mut pod),
        )
        .unwrap();
        assert_ne!(r.new_pid.0, pid.0);
        assert_eq!(pod.physical(pid.0), Some(r.new_pid));
    }

    #[test]
    fn migration_to_dead_node_fails() {
        let (mut c, pid) = setup();
        c.inject_failure(NodeId(1));
        assert!(migrate(&mut c, NodeId(0), pid, NodeId(1), MigrationMode::FreshPid, None).is_err());
    }

    #[test]
    fn self_migration_rejected() {
        let (mut c, pid) = setup();
        assert!(migrate(&mut c, NodeId(0), pid, NodeId(0), MigrationMode::FreshPid, None).is_err());
    }
}
