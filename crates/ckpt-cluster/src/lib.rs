//! # ckpt-cluster — the cluster substrate and distributed checkpointing
//!
//! The paper's motivation is capability computing: long-running parallel
//! applications on machines whose aggregate MTBF is shorter than the job.
//! This crate provides everything needed to make that scenario concrete
//! and measurable:
//!
//! * [`node`] / [`cluster`] — kernels-as-nodes, a shared remote checkpoint
//!   server, lock-step time, and exponential fail-stop failure injection;
//! * [`mpi`] — a deterministic bulk-synchronous message-passing job layer
//!   (the MPI stand-in; see DESIGN.md on the substitution);
//! * [`coordinator`] — LAM/MPI-style coordinated checkpointing at
//!   quiescent superstep boundaries, with migration-aware restart;
//! * [`shard`] — the two-level sharded control plane: shard-local rounds
//!   with batched quorum commits, a root two-phase global cut, and the
//!   1k–10k node scale model;
//! * [`migrate`] — process migration with or without pod virtualization;
//! * [`livemig`] — iterative pre-copy / post-copy live migration with a
//!   dirty-rate-adaptive cutover, plus its crash-matrix tier
//!   ([`migmatrix`]);
//! * [`gang`] — gang scheduling via safe-preemption checkpoints;
//! * [`analytics`] — mechanistic job runs under failures, and an
//!   event-level Monte-Carlo model that scales the utilization analysis to
//!   BlueGene/L's 65,536 nodes.

pub mod analytics;
pub mod batch;
pub mod cluster;
pub mod coordinator;
pub mod gang;
pub mod livemig;
pub mod migmatrix;
pub mod migrate;
pub mod mpi;
pub mod node;
pub mod shard;

pub use analytics::{interval_sweep, simulate_job, stochastic_run, JobRunConfig, JobRunReport};
pub use batch::{BatchManager, BatchRoundReport, ManagedJob};
pub use cluster::{Cluster, FailureConfig, FailureEvent};
pub use coordinator::{CoordOutcome, Coordinator};
pub use gang::{Gang, GangScheduler};
pub use livemig::{
    migrate_postcopy, migrate_precopy, rebalance_rank_live, LiveMigConfig, PostCopyReport,
    PreCopyReport, RoundStat,
};
pub use migmatrix::{migration_matrix_cells, run_migration_tier, MIGRATION_MECHS};
pub use migrate::{migrate, MigrationMode, MigrationReport};
pub use mpi::{JobInterrupt, MpiJob, RankRef};
pub use node::{Node, NodeId};
pub use shard::{
    scale_round, scale_round_with_pool, HierOutcome, ScaleConfig, ScalePoint, ShardRound,
    ShardedCoordinator,
};
