//! Live migration: iterative pre-copy and post-copy with a
//! dirty-rate-adaptive cutover.
//!
//! [`crate::migrate`] is freeze-copy-resume: the guest is down for the
//! whole image transfer. This module implements the two hypervisor-era
//! alternatives on top of the same capture/restore machinery:
//!
//! * **Iterative pre-copy** ([`migrate_precopy`]) — ship a full snapshot
//!   while the guest keeps running, then repeatedly ship only the pages
//!   dirtied during the previous transfer round (the
//!   [`ckpt_core::tracker`] dirty bitmap). Freeze only when the projected
//!   residual transfer fits [`LiveMigConfig::downtime_budget_ns`]. Guests
//!   that dirty faster than the link drains would never converge; the
//!   divergence detector then either reports a typed
//!   [`SimError::CutoverDiverged`] or — with
//!   [`LiveMigConfig::autoconverge`] on — throttles the guest's duty
//!   cycle (QEMU's auto-converge) until the dirty rate drops below link
//!   bandwidth. Throttle stalls are guest *slowdown*, not downtime: the
//!   reported `downtime_ns` covers only the final freeze → resume window,
//!   which is how live-migration downtime is conventionally quoted.
//!
//! * **Post-copy** ([`migrate_postcopy`]) — freeze, ship only the header
//!   page, resume on the target immediately, then demand-fault the
//!   missing pages over the network *ordered by fault address* while a
//!   background prefetcher drains the rest lowest-address-first. The
//!   demand stream is predicted exactly by replaying the deterministic
//!   guest app on a mirror copy of the frozen source memory, so a page is
//!   always delivered before the target first touches it (the
//!   fault-ordering invariant; see DESIGN.md §10). If the source dies
//!   before the residual set drains, the half-populated target is
//!   discarded and the typed [`SimError::SourceLostMidMigration`] is
//!   returned.
//!
//! Fault-injection sites (`livemig/round`, `livemig/cutover`,
//! `livemig/demand-fault`) model the wire: fail-stop and torn frames kill
//! the source (the receiver discards a torn frame — never applies it), a
//! transient costs one retransmission.

use crate::cluster::Cluster;
use crate::node::NodeId;
use ckpt_core::capture::{
    capture_image, restore_image, CaptureOptions, PageSelection, RestoreOptions, RestorePid,
};
use ckpt_core::tracker::{Tracker, TrackerKind};
use ckpt_image::{CheckpointImage, PageRecord};
use simos::apps::{self, GuestMemIo, VecMem, HEADER_BASE};
use simos::cost::{CostModel, PAGE_SIZE};
use simos::faultpoint::{Fault, FaultHandle};
use simos::pcb::{ProcState, ProgramSpec};
use simos::trace::ClusterEvent;
use simos::types::{Pid, SimError, SimResult};
use simos::Kernel;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Tuning knobs for both live-migration strategies.
#[derive(Debug, Clone)]
pub struct LiveMigConfig {
    /// Pre-copy cutover fires when the projected residual transfer
    /// (latency + dirty bytes at wire rate) fits this budget.
    pub downtime_budget_ns: u64,
    /// Hard cap on pre-copy rounds; exceeding it is divergence.
    pub max_rounds: u32,
    /// Consecutive rounds without residual shrink before the divergence
    /// detector acts (throttle or typed error).
    pub patience: u32,
    /// QEMU-style auto-converge: on a divergence streak, halve the guest
    /// duty cycle instead of aborting. Off → [`SimError::CutoverDiverged`]
    /// is returned instead, which the crash tier and property tests rely on.
    pub autoconverge: bool,
    /// Duty-cycle floor (percent). 0 permits full stop-and-copy rounds in
    /// the final mile, which guarantees convergence for any guest.
    pub min_duty_pct: u32,
    /// Pages per background prefetch batch (post-copy).
    pub prefetch_batch: usize,
    /// Guest steps the target runs between demand-fault service points
    /// (post-copy).
    pub quantum_steps: u64,
    /// Worker pool for parallel page encoding (byte-identical at every
    /// width, like every other capture path).
    pub encode_pool: Option<Arc<ckpt_par::Pool>>,
}

impl Default for LiveMigConfig {
    fn default() -> Self {
        LiveMigConfig {
            downtime_budget_ns: 250_000,
            max_rounds: 30,
            patience: 3,
            autoconverge: true,
            min_duty_pct: 0,
            prefetch_batch: 16,
            quantum_steps: 32,
            encode_pool: None,
        }
    }
}

/// One pre-copy round as observed by the cutover policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStat {
    pub round: u32,
    /// Pages shipped this round (round 0 ships the full resident set).
    pub pages: u64,
    /// Encoded bytes shipped this round.
    pub bytes: u64,
    /// Transfer window the round occupied on the wire.
    pub window_ns: u64,
    /// Guest duty cycle during the round (percent).
    pub duty_pct: u32,
    /// Pages found dirty *after* the round's window (what the policy
    /// projected the next round from).
    pub dirty_after: u64,
}

/// Result of a completed iterative pre-copy migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreCopyReport {
    pub from: NodeId,
    pub to: NodeId,
    pub new_pid: Pid,
    /// Rounds shipped before cutover (round 0 included).
    pub rounds: u32,
    /// Encoded bytes shipped while the guest ran.
    pub bytes_precopy: u64,
    /// Encoded bytes shipped inside the frozen cutover window.
    pub bytes_cutover: u64,
    /// Residual dirty pages shipped at cutover.
    pub residual_pages: u64,
    /// Freeze → resume: source freeze + residual capture/transfer +
    /// target receive/restore.
    pub downtime_ns: u64,
    /// Final guest duty cycle the throttle settled on (100 = never
    /// throttled).
    pub final_duty_pct: u32,
    pub round_log: Vec<RoundStat>,
}

impl PreCopyReport {
    /// Total encoded bytes that crossed the wire.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_precopy + self.bytes_cutover
    }
}

/// Result of a completed post-copy migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostCopyReport {
    pub from: NodeId,
    pub to: NodeId,
    pub new_pid: Pid,
    /// Freeze → first target resume (the minimal-image window).
    pub downtime_ns: u64,
    /// Pages the source still owed when the target first resumed.
    pub residual_pages: u64,
    /// Pages delivered on the demand path (target stalled for these).
    pub demand_pages: u64,
    /// Demand service batches (each ordered by fault address).
    pub demand_batches: u64,
    /// Pages delivered by the background prefetcher (no target stall).
    pub prefetch_pages: u64,
    /// Encoded bytes of the minimal image shipped inside the downtime
    /// window.
    pub bytes_minimal: u64,
}

impl PostCopyReport {
    /// Total pages that crossed the wire after resume.
    pub fn residual_moved(&self) -> u64 {
        self.demand_pages + self.prefetch_pages
    }
}

/// One-way wire cost of a `bytes`-sized frame.
pub(crate) fn wire_ns(cost: &CostModel, bytes: u64) -> u64 {
    cost.net_latency_ns + (bytes as f64 * cost.net_ns_per_byte).round() as u64
}

/// What an armed faultpoint did to a wire frame.
enum SiteHit {
    Clean,
    /// Transient: the frame is retransmitted once.
    Retransmit,
    /// Fail-stop or torn frame: the source is gone; a torn frame is
    /// discarded by the receiver (never applied — no silent corruption).
    Lost,
}

fn classify(faults: &FaultHandle, site: &str, bytes: u64) -> SiteHit {
    match faults.check(site, bytes) {
        None => SiteHit::Clean,
        Some(Fault::Transient) => SiteHit::Retransmit,
        Some(Fault::FailStop) => SiteHit::Lost,
        Some(Fault::TornWrite { .. }) => {
            // Torn frames kill the sender mid-write; flag the crash
            // (FailStop does this inside `check`).
            faults.set_crashed();
            SiteHit::Lost
        }
    }
}

/// The source kernel, or the typed loss if the node died under us.
fn src_kernel(
    cluster: &mut Cluster,
    from: NodeId,
    residual_pages: u64,
) -> SimResult<&mut Kernel> {
    cluster
        .node(from)
        .kernel()
        .ok_or(SimError::SourceLostMidMigration { residual_pages })
}

/// Advance the cluster by `window_ns` with the migrating guest running
/// only `duty_pct`% of it (the auto-converge throttle). At 100 the guest
/// runs the whole window; at 0 the round is stop-and-copy.
fn advance_with_duty(
    cluster: &mut Cluster,
    from: NodeId,
    pid: Pid,
    window_ns: u64,
    duty_pct: u32,
    residual_pages: u64,
) -> SimResult<()> {
    let run = window_ns.saturating_mul(duty_pct as u64) / 100;
    if run > 0 {
        cluster.advance(run);
    }
    if window_ns > run {
        src_kernel(cluster, from, residual_pages)?.freeze_process(pid)?;
        cluster.advance(window_ns - run);
        src_kernel(cluster, from, residual_pages)?.thaw_process(pid)?;
    }
    src_kernel(cluster, from, residual_pages).map(|_| ())
}

/// Fold a round's incremental capture into the accumulated full image:
/// newer pages replace older ones, and all non-page state (registers,
/// progress, fds, files, signals, timers) is adopted from the update.
fn merge_into(acc: &mut CheckpointImage, upd: CheckpointImage) {
    let mut by_pn: BTreeMap<u64, PageRecord> =
        acc.pages.drain(..).map(|p| (p.page_no, p)).collect();
    for p in upd.pages {
        by_pn.insert(p.page_no, p);
    }
    acc.pages = by_pn.into_values().collect();
    acc.regs = upd.regs;
    acc.brk = upd.brk;
    acc.work_done = upd.work_done;
    acc.policy = upd.policy;
    acc.vmas = upd.vmas;
    acc.fds = upd.fds;
    if !upd.files.is_empty() {
        acc.files = upd.files;
    }
    acc.sig = upd.sig;
    acc.timers = upd.timers;
    acc.header.taken_at_ns = upd.header.taken_at_ns;
    // `acc` stays a Full image (restore refuses anything else).
}

/// Iteratively pre-copy `pid` from `from` to `to`, freezing only when the
/// projected residual fits the downtime budget.
pub fn migrate_precopy(
    cluster: &mut Cluster,
    from: NodeId,
    pid: Pid,
    to: NodeId,
    cfg: &LiveMigConfig,
) -> SimResult<PreCopyReport> {
    if from == to {
        return Err(SimError::Usage("source and target are the same node".into()));
    }
    let faults = src_kernel(cluster, from, 0)?.faults.clone();
    let mut tracker = Tracker::new(TrackerKind::KernelPage);

    // Round 0: arm tracking, then ship the full resident set while the
    // guest keeps running behind it.
    let mut acc = {
        let k = src_kernel(cluster, from, 0)?;
        tracker.arm(k, pid)?;
        let mut opts = CaptureOptions::full("livemig-pre", 1);
        opts.save_file_contents = true;
        opts.node = from.0;
        opts.encode_pool = cfg.encode_pool.clone();
        capture_image(k, pid, &opts)?
    };
    let mut duty: u32 = 100;
    let mut bytes_precopy: u64 = 0;
    let mut round_log: Vec<RoundStat> = Vec::new();
    let mut stall_rounds: u32 = 0;
    let mut prev_dirty = u64::MAX;
    let mut round: u32 = 0;
    let mut pages_this = acc.pages.len() as u64;
    let mut bytes_this = ckpt_image::encode(&acc).len() as u64;

    let dirty = loop {
        // Ship the round's frame.
        match classify(&faults, "livemig/round", bytes_this) {
            SiteHit::Clean => {}
            SiteHit::Retransmit => {
                let cost = src_kernel(cluster, from, pages_this)?.cost.clone();
                let w = wire_ns(&cost, bytes_this);
                advance_with_duty(cluster, from, pid, w, duty, pages_this)?;
            }
            SiteHit::Lost => {
                cluster.inject_failure(from);
                return Err(SimError::SourceLostMidMigration {
                    residual_pages: pages_this,
                });
            }
        }
        bytes_precopy += bytes_this;
        let cost = src_kernel(cluster, from, pages_this)?.cost.clone();
        let window = wire_ns(&cost, bytes_this);
        advance_with_duty(cluster, from, pid, window, duty, pages_this)?;

        // Sample what the guest dirtied behind the transfer.
        let dirty = {
            let k = src_kernel(cluster, from, pages_this)?;
            let p = k
                .process_mut(pid)
                .ok_or(SimError::NoSuchProcess(pid))?;
            p.mem.sample_dirty()
        };
        let guest_ns = (window.saturating_mul(duty as u64) / 100).max(1);
        cluster.trace().cluster(
            ClusterEvent::MigrationRound {
                round,
                dirty_pages: dirty,
                bytes: bytes_this,
                dirty_rate_ppms: dirty.saturating_mul(1_000_000) / guest_ns,
            },
            cluster.now(),
        );
        round_log.push(RoundStat {
            round,
            pages: pages_this,
            bytes: bytes_this,
            window_ns: window,
            duty_pct: duty,
            dirty_after: dirty,
        });

        // Cutover policy: freeze only when the projected residual fits.
        let cost = src_kernel(cluster, from, dirty)?.cost.clone();
        let projected = wire_ns(&cost, dirty * PAGE_SIZE);
        if projected <= cfg.downtime_budget_ns {
            break dirty;
        }
        // Divergence detector: the residual must shrink.
        if dirty >= prev_dirty {
            stall_rounds += 1;
        } else {
            stall_rounds = 0;
        }
        prev_dirty = dirty;
        if round + 1 >= cfg.max_rounds {
            return Err(SimError::CutoverDiverged {
                rounds: round + 1,
                residual_pages: dirty,
            });
        }
        if stall_rounds >= cfg.patience {
            if cfg.autoconverge && duty > cfg.min_duty_pct {
                // QEMU auto-converge: throttle the guest instead of
                // aborting; each escalation halves the duty cycle.
                duty = (duty / 2).max(cfg.min_duty_pct);
                stall_rounds = 0;
                prev_dirty = u64::MAX;
            } else {
                return Err(SimError::CutoverDiverged {
                    rounds: round + 1,
                    residual_pages: dirty,
                });
            }
        }

        // Next round: collect + re-arm, capture exactly the dirty set.
        round += 1;
        let upd = {
            let k = src_kernel(cluster, from, dirty)?;
            let col = tracker.collect(k, pid)?;
            tracker.arm(k, pid)?;
            let mut opts =
                CaptureOptions::incremental("livemig-pre", round as u64 + 1, round as u64, col.pages);
            opts.node = from.0;
            opts.encode_pool = cfg.encode_pool.clone();
            capture_image(k, pid, &opts)?
        };
        pages_this = upd.pages.len() as u64;
        bytes_this = ckpt_image::encode(&upd).len() as u64;
        merge_into(&mut acc, upd);
    };

    // Cutover: freeze, ship the residual, resume on the target.
    let (src_down, bytes_cutover, residual_pages) = {
        let k = src_kernel(cluster, from, dirty)?;
        let t_freeze = k.now();
        k.freeze_process(pid)?;
        let col = tracker.collect(k, pid)?;
        let residual = col.pages.len() as u64;
        let mut opts = CaptureOptions::incremental(
            "livemig-pre",
            round as u64 + 2,
            round as u64 + 1,
            col.pages,
        );
        opts.save_file_contents = true;
        opts.node = from.0;
        opts.encode_pool = cfg.encode_pool.clone();
        let upd = capture_image(k, pid, &opts)?;
        let fb = ckpt_image::encode(&upd).len() as u64;
        match classify(&faults, "livemig/cutover", fb) {
            SiteHit::Clean => {}
            SiteHit::Retransmit => {
                let w = wire_ns(&k.cost.clone(), fb);
                k.charge(w);
            }
            SiteHit::Lost => {
                cluster.inject_failure(from);
                return Err(SimError::SourceLostMidMigration {
                    residual_pages: residual,
                });
            }
        }
        let k = src_kernel(cluster, from, residual)?;
        let w = wire_ns(&k.cost.clone(), fb);
        k.charge(w);
        merge_into(&mut acc, upd);
        let k = src_kernel(cluster, from, residual)?;
        (k.now() - t_freeze, fb, residual)
    };
    let (new_pid, tgt_rx) = {
        let k = cluster
            .node(to)
            .kernel()
            .ok_or_else(|| SimError::Usage(format!("{to} is down")))?;
        let t_rx = k.now();
        let t = k.cost.memcpy(bytes_cutover);
        k.charge(t);
        let np = restore_image(k, &acc, &RestoreOptions::fresh_running(RestorePid::Fresh))?;
        (np, k.now() - t_rx)
    };
    // The source copy has left the building.
    {
        let k = src_kernel(cluster, from, 0)?;
        if let Some(p) = k.process_mut(pid) {
            p.state = ProcState::Zombie { code: 0 };
        }
        let _ = k.reap(pid);
    }
    cluster.trace().cluster(
        ClusterEvent::Migration {
            from: from.0,
            to: to.0,
            bytes: bytes_precopy + bytes_cutover,
        },
        cluster.now(),
    );
    Ok(PreCopyReport {
        from,
        to,
        new_pid,
        rounds: round + 1,
        bytes_precopy,
        bytes_cutover,
        residual_pages,
        downtime_ns: src_down + tgt_rx,
        final_duty_pct: duty,
        round_log,
    })
}

/// Record which guest pages an app step touches, on top of a mirror of
/// the frozen source memory. The apps are deterministic over memory
/// state, so the mirror's first-touch order *is* the target's future
/// demand-fault order.
struct RecordingMem<'a> {
    inner: &'a mut VecMem,
    touched: &'a mut BTreeSet<u64>,
}

impl GuestMemIo for RecordingMem<'_> {
    fn r64(&mut self, addr: u64) -> u64 {
        self.touched.insert(addr / PAGE_SIZE);
        self.inner.r64(addr)
    }
    fn w64(&mut self, addr: u64, val: u64) {
        self.touched.insert(addr / PAGE_SIZE);
        self.inner.w64(addr, val);
    }
}

/// Run the target kernel until the migrated process has completed `steps`
/// more app steps (or stops progressing: exit, stop, node loss). One-ns
/// slices guarantee the target never runs past the probed quantum — the
/// fault-ordering invariant depends on exact step parity with the mirror.
fn run_target_steps(k: &mut Kernel, pid: Pid, steps: u64) {
    let Some(start) = k.process(pid).map(|p| p.work_done) else {
        return;
    };
    let goal = start + steps;
    let mut spins = 0u32;
    loop {
        let Some(w) = k.process(pid).map(|p| p.work_done) else {
            return;
        };
        if w >= goal {
            return;
        }
        let _ = k.run_for(1);
        let after = k.process(pid).map(|p| p.work_done).unwrap_or(w);
        if after == w {
            spins += 1;
            if spins > 16 {
                return; // exited / stopped — no more progress possible
            }
        } else {
            spins = 0;
        }
    }
}

/// Copy `pages` out of the frozen source process (missing pages are
/// zero-filled pages on both sides and are skipped).
fn read_source_pages(
    cluster: &mut Cluster,
    from: NodeId,
    pid: Pid,
    pages: &[u64],
    residual: u64,
) -> SimResult<Vec<(u64, Vec<u8>)>> {
    let k = src_kernel(cluster, from, residual)?;
    let p = k.process(pid).ok_or(SimError::NoSuchProcess(pid))?;
    Ok(pages
        .iter()
        .filter_map(|pn| p.mem.page_data(*pn).map(|d| (*pn, d.to_vec())))
        .collect())
}

/// Post-copy migrate `pid` from `from` to `to`: resume on the target
/// immediately, then drain the residual set by address-ordered demand
/// faults plus background prefetch.
pub fn migrate_postcopy(
    cluster: &mut Cluster,
    from: NodeId,
    pid: Pid,
    to: NodeId,
    cfg: &LiveMigConfig,
) -> SimResult<PostCopyReport> {
    if from == to {
        return Err(SimError::Usage("source and target are the same node".into()));
    }
    let faults = src_kernel(cluster, from, 0)?.faults.clone();

    // Freeze the source and build the minimal image (header page only)
    // plus the replay mirror and the residual ledger.
    let (kind, params, minimal, mut mirror, resident, src_down, bytes_minimal) = {
        let k = src_kernel(cluster, from, 0)?;
        let t_freeze = k.now();
        k.freeze_process(pid)?;
        let (kind, params, mirror, resident) = {
            let p = k.process(pid).ok_or(SimError::NoSuchProcess(pid))?;
            let (kind, params) = match &p.program {
                ProgramSpec::Native { kind, params } => (*kind, params.clone()),
                ProgramSpec::Vm { .. } => {
                    return Err(SimError::Usage(
                        "post-copy migration supports native apps only".into(),
                    ))
                }
            };
            let mut mirror = VecMem::new(&params);
            p.mem.peek(HEADER_BASE, &mut mirror.bytes);
            let resident: BTreeSet<u64> = p.mem.resident_pages().collect();
            (kind, params, mirror, resident)
        };
        let hdr_pn = HEADER_BASE / PAGE_SIZE;
        let mut opts = CaptureOptions::full("livemig-post", 1);
        opts.save_file_contents = true;
        opts.node = from.0;
        opts.pages = PageSelection::Set([hdr_pn].into());
        opts.encode_pool = cfg.encode_pool.clone();
        let img = capture_image(k, pid, &opts)?;
        let bytes = ckpt_image::encode(&img).len() as u64;
        let residual = resident.len().saturating_sub(1) as u64;
        match classify(&faults, "livemig/cutover", bytes) {
            SiteHit::Clean => {}
            SiteHit::Retransmit => {
                let w = wire_ns(&k.cost.clone(), bytes);
                k.charge(w);
            }
            SiteHit::Lost => {
                cluster.inject_failure(from);
                return Err(SimError::SourceLostMidMigration {
                    residual_pages: residual + 1,
                });
            }
        }
        let k = src_kernel(cluster, from, residual)?;
        let w = wire_ns(&k.cost.clone(), bytes);
        k.charge(w);
        let down = k.now() - t_freeze;
        (kind, params, img, mirror, resident, down, bytes)
    };

    // Target: restore the minimal image and let the guest resume at once.
    let (new_pid, tgt_rx) = {
        let k = cluster
            .node(to)
            .kernel()
            .ok_or_else(|| SimError::Usage(format!("{to} is down")))?;
        let t_rx = k.now();
        let t = k.cost.memcpy(bytes_minimal);
        k.charge(t);
        let np = restore_image(k, &minimal, &RestoreOptions::fresh_running(RestorePid::Fresh))?;
        (np, k.now() - t_rx)
    };
    let downtime_ns = src_down + tgt_rx;

    // Residual ledger: every source-resident page except the header.
    let hdr_pn = HEADER_BASE / PAGE_SIZE;
    let mut missing: BTreeSet<u64> = resident;
    missing.remove(&hdr_pn);
    let residual_at_resume = missing.len() as u64;

    let mut demand_pages = 0u64;
    let mut demand_batches = 0u64;
    let mut prefetch_pages = 0u64;
    let mut mirror_done = false;

    // Service loop: predict the next quantum's touches on the mirror,
    // deliver them (ordered by address), run the target exactly that far,
    // then prefetch lowest-address residual pages in the background.
    while !missing.is_empty() {
        let residual = missing.len() as u64;
        // Probe the mirror for the pages the target is about to touch.
        let mut touched: BTreeSet<u64> = BTreeSet::new();
        let mut probe_steps = 0u64;
        if !mirror_done {
            while probe_steps < cfg.quantum_steps {
                let out = {
                    let mut rec = RecordingMem {
                        inner: &mut mirror,
                        touched: &mut touched,
                    };
                    apps::step(kind, &params, &mut rec)
                };
                probe_steps += 1;
                if out.finished {
                    mirror_done = true;
                    break;
                }
            }
        }
        // Demand set: predicted touches still missing, ascending address
        // (BTreeSet order) — the fault-ordering invariant.
        let needed: Vec<u64> = touched.intersection(&missing).copied().collect();
        if !needed.is_empty() {
            let bytes = needed.len() as u64 * PAGE_SIZE;
            match classify(&faults, "livemig/demand-fault", bytes) {
                SiteHit::Clean => {}
                SiteHit::Retransmit => {
                    // The retransmission stalls the target a second window.
                    let k = cluster.node(to).kernel().ok_or_else(|| {
                        SimError::Usage(format!("{to} went down mid-migration"))
                    })?;
                    let w = wire_ns(&k.cost.clone(), bytes);
                    k.charge(w);
                }
                SiteHit::Lost => {
                    cluster.inject_failure(from);
                    // The half-populated target is unusable: discard it.
                    if let Some(k) = cluster.node(to).kernel() {
                        if let Some(p) = k.process_mut(new_pid) {
                            p.state = ProcState::Zombie { code: 0 };
                        }
                        let _ = k.reap(new_pid);
                    }
                    return Err(SimError::SourceLostMidMigration {
                        residual_pages: residual,
                    });
                }
            }
            let frames = read_source_pages(cluster, from, pid, &needed, residual)?;
            {
                let cost = src_kernel(cluster, from, residual)?.cost.clone();
                let t = cost.memcpy(bytes);
                src_kernel(cluster, from, residual)?.charge(t);
            }
            let k = cluster
                .node(to)
                .kernel()
                .ok_or_else(|| SimError::Usage(format!("{to} went down mid-migration")))?;
            let stall = wire_ns(&k.cost.clone(), bytes) + k.cost.memcpy(bytes);
            k.charge(stall);
            let p = k
                .process_mut(new_pid)
                .ok_or(SimError::NoSuchProcess(new_pid))?;
            for (pn, data) in &frames {
                p.mem.poke(pn * PAGE_SIZE, data);
            }
            demand_pages += needed.len() as u64;
            demand_batches += 1;
            for pn in &needed {
                missing.remove(pn);
            }
        }
        // Run the target through exactly the probed quantum.
        if probe_steps > 0 {
            let k = cluster
                .node(to)
                .kernel()
                .ok_or_else(|| SimError::Usage(format!("{to} went down mid-migration")))?;
            run_target_steps(k, new_pid, probe_steps);
        }
        // Background prefetch: lowest-address residual pages, overlapped
        // with target execution (charged to the source only).
        let batch: Vec<u64> = missing.iter().take(cfg.prefetch_batch).copied().collect();
        if !batch.is_empty() {
            let residual = missing.len() as u64;
            let bytes = batch.len() as u64 * PAGE_SIZE;
            let frames = read_source_pages(cluster, from, pid, &batch, residual)?;
            {
                let cost = src_kernel(cluster, from, residual)?.cost.clone();
                let t = wire_ns(&cost, bytes) + cost.memcpy(bytes);
                src_kernel(cluster, from, residual)?.charge(t);
            }
            let k = cluster
                .node(to)
                .kernel()
                .ok_or_else(|| SimError::Usage(format!("{to} went down mid-migration")))?;
            let p = k
                .process_mut(new_pid)
                .ok_or(SimError::NoSuchProcess(new_pid))?;
            for (pn, data) in &frames {
                p.mem.poke(pn * PAGE_SIZE, data);
            }
            prefetch_pages += batch.len() as u64;
            for pn in &batch {
                missing.remove(pn);
            }
        }
    }

    // Residual drained: the source copy can be discarded.
    {
        let k = src_kernel(cluster, from, 0)?;
        if let Some(p) = k.process_mut(pid) {
            p.state = ProcState::Zombie { code: 0 };
        }
        let _ = k.reap(pid);
    }
    cluster.trace().cluster(
        ClusterEvent::Migration {
            from: from.0,
            to: to.0,
            bytes: bytes_minimal + (demand_pages + prefetch_pages) * PAGE_SIZE,
        },
        cluster.now(),
    );
    Ok(PostCopyReport {
        from,
        to,
        new_pid,
        downtime_ns,
        residual_pages: residual_at_resume,
        demand_pages,
        demand_batches,
        prefetch_pages,
        bytes_minimal,
    })
}

/// Live-migrate one MPI rank and update the job's rank table — the
/// coordinator's node-rebalance route (e.g. repopulating a repaired node
/// without a full job restart).
pub fn rebalance_rank_live(
    cluster: &mut Cluster,
    job: &mut crate::mpi::MpiJob,
    rank: usize,
    to: NodeId,
    cfg: &LiveMigConfig,
) -> SimResult<PreCopyReport> {
    let r = *job
        .ranks
        .get(rank)
        .ok_or_else(|| SimError::Usage(format!("no such rank {rank}")))?;
    let report = migrate_precopy(cluster, r.node, r.pid, to, cfg)?;
    job.ranks[rank].node = to;
    job.ranks[rank].pid = report.new_pid;
    job.resync_supersteps(cluster)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::FailureConfig;
    use simos::apps::{AppParams, NativeKind};
    use simos::cost::CostModel;

    fn setup(kind: NativeKind, mut params: AppParams) -> (Cluster, Pid) {
        let mut c = Cluster::new(2, CostModel::circa_2005(), FailureConfig::none());
        params.total_steps = u64::MAX;
        let pid = c
            .node(NodeId(0))
            .kernel()
            .unwrap()
            .spawn_native(kind, params)
            .unwrap();
        c.advance(5_000_000);
        (c, pid)
    }

    /// Peek the full app span (header + array) of a process.
    fn guest_bytes(k: &mut Kernel, pid: Pid, params: &AppParams) -> Vec<u8> {
        let span = (apps::ARRAY_BASE - HEADER_BASE) + params.mem_bytes + PAGE_SIZE;
        let mut buf = vec![0u8; span as usize];
        k.process(pid).unwrap().mem.peek(HEADER_BASE, &mut buf);
        buf
    }

    /// Replay the app on a VecMem to the same step count and compare.
    fn assert_state_matches_reference(
        k: &mut Kernel,
        pid: Pid,
        kind: NativeKind,
        params: &AppParams,
    ) {
        let got = guest_bytes(k, pid, params);
        let steps = {
            let mut io = VecMem::new(params);
            io.bytes.copy_from_slice(&got);
            io.r64(apps::H_STEP)
        };
        let mut reference = VecMem::new(params);
        apps::init(kind, params, &mut reference);
        for _ in 0..steps {
            apps::step(kind, params, &mut reference);
        }
        assert_eq!(
            got, reference.bytes,
            "migrated guest state diverged from the unmigrated replay"
        );
    }

    #[test]
    fn precopy_converges_and_preserves_state() {
        let params = AppParams::small();
        let (mut c, pid) = setup(NativeKind::SparseRandom, params.clone());
        let r = migrate_precopy(&mut c, NodeId(0), pid, NodeId(1), &LiveMigConfig::default())
            .expect("pre-copy must converge with auto-converge on");
        assert!(r.rounds >= 1);
        assert!(r.bytes_precopy > 0);
        assert!(c.node(NodeId(0)).kernel().unwrap().process(pid).is_none());
        let k = c.node(NodeId(1)).kernel().unwrap();
        assert_state_matches_reference(k, r.new_pid, NativeKind::SparseRandom, &params);
        // The guest keeps running on the target.
        let w0 = k.process(r.new_pid).unwrap().work_done;
        c.advance(5_000_000);
        let k = c.node(NodeId(1)).kernel().unwrap();
        assert!(k.process(r.new_pid).unwrap().work_done > w0);
    }

    #[test]
    fn precopy_without_autoconverge_reports_divergence() {
        let (mut c, pid) = setup(NativeKind::SparseRandom, AppParams::small());
        let cfg = LiveMigConfig {
            autoconverge: false,
            downtime_budget_ns: 25_000, // < one page residual: unreachable at full speed
            ..LiveMigConfig::default()
        };
        match migrate_precopy(&mut c, NodeId(0), pid, NodeId(1), &cfg) {
            Err(SimError::CutoverDiverged { rounds, .. }) => assert!(rounds >= 1),
            other => panic!("expected CutoverDiverged, got {other:?}"),
        }
        // The source guest survives a diverged (aborted) migration.
        let k = c.node(NodeId(0)).kernel().unwrap();
        assert!(k.process(pid).is_some());
    }

    #[test]
    fn postcopy_preserves_state_and_beats_freeze_downtime() {
        let params = AppParams::small();
        let (mut c, pid) = setup(NativeKind::SparseRandom, params.clone());
        let r = migrate_postcopy(&mut c, NodeId(0), pid, NodeId(1), &LiveMigConfig::default())
            .expect("post-copy");
        assert_eq!(
            r.demand_pages + r.prefetch_pages,
            r.residual_pages,
            "every residual page must drain exactly once"
        );
        assert!(c.node(NodeId(0)).kernel().unwrap().process(pid).is_none());
        let k = c.node(NodeId(1)).kernel().unwrap();
        assert_state_matches_reference(k, r.new_pid, NativeKind::SparseRandom, &params);
        // Downtime is the minimal-image window only: far below one full
        // image transfer (96 KiB at 4 ns/B is ~400 us on the wire).
        assert!(
            r.downtime_ns < 200_000,
            "post-copy downtime {} should be well under a full-image transfer",
            r.downtime_ns
        );
    }

    #[test]
    fn postcopy_source_loss_is_typed_and_discards_target() {
        let (mut c, pid) = setup(NativeKind::SparseRandom, AppParams::small());
        // Record the demand-fault sites, then arm the first one.
        let faults = FaultHandle::recording();
        c.node(NodeId(0)).kernel().unwrap().set_faults(faults.clone());
        let probe = migrate_postcopy(&mut c, NodeId(0), pid, NodeId(1), &LiveMigConfig::default());
        let site = faults
            .sites()
            .into_iter()
            .find(|s| s.name.starts_with("livemig/demand-fault"))
            .expect("post-copy must visit demand-fault sites")
            .name;
        probe.expect("recording run must succeed");

        // Fresh cluster, armed fault.
        let (mut c, pid) = setup(NativeKind::SparseRandom, AppParams::small());
        let armed = FaultHandle::armed(&site, Fault::FailStop);
        c.node(NodeId(0)).kernel().unwrap().set_faults(armed.clone());
        match migrate_postcopy(&mut c, NodeId(0), pid, NodeId(1), &LiveMigConfig::default()) {
            Err(SimError::SourceLostMidMigration { residual_pages }) => {
                assert!(residual_pages > 0)
            }
            other => panic!("expected SourceLostMidMigration, got {other:?}"),
        }
        // Source node is down; target holds no half-state process.
        assert!(!c.node(NodeId(0)).alive());
        let k = c.node(NodeId(1)).kernel().unwrap();
        assert!(k.pids().is_empty(), "target must hold no half-state process");
    }

    #[test]
    fn precopy_beats_freeze_copy_downtime() {
        // Freeze-copy baseline.
        let params = AppParams::small();
        let (mut c, pid) = setup(NativeKind::SparseRandom, params.clone());
        let s0 = c.node(NodeId(0)).now();
        let t0 = c.node(NodeId(1)).now();
        crate::migrate::migrate(
            &mut c,
            NodeId(0),
            pid,
            NodeId(1),
            crate::migrate::MigrationMode::FreshPid,
            None,
        )
        .unwrap();
        let freeze_downtime =
            (c.node(NodeId(0)).now() - s0) + (c.node(NodeId(1)).now() - t0);

        let (mut c, pid) = setup(NativeKind::SparseRandom, params);
        let r = migrate_precopy(&mut c, NodeId(0), pid, NodeId(1), &LiveMigConfig::default())
            .unwrap();
        assert!(
            r.downtime_ns < freeze_downtime,
            "pre-copy downtime {} must beat freeze-copy {}",
            r.downtime_ns,
            freeze_downtime
        );
    }
}
