//! The cluster: nodes advanced in lock-step, a shared remote checkpoint
//! server, and exponential fail-stop failure injection.
//!
//! The paper's motivating arithmetic: machines like BlueGene/L (65,536
//! nodes) have an aggregate MTBF "orders of magnitude shorter than the
//! execution times of the applications they are intended to run", under
//! fail-stop semantics "where faults can always be detected". The injector
//! draws i.i.d. exponential failure times per node; a failed node loses its
//! kernel and volatile state, its local media become unreachable, and it
//! returns after a repair delay.

use crate::node::{Node, NodeId};
use ckpt_core::shared_storage;
use ckpt_ec::{EcStripedStore, ErasureStore};
use ckpt_replica::{ReplicaConfig, ReplicaSet, ReplicatedStore, StripedReplicaSet, StripedStore};
use ckpt_storage::RemoteServer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simos::cost::CostModel;
use simos::trace::{ClusterEvent, TraceHandle};
use std::sync::Arc;

/// Failure-injection configuration.
#[derive(Debug, Clone)]
pub struct FailureConfig {
    /// Per-node mean time between failures (ns of virtual time). `None`
    /// disables injection.
    pub node_mtbf_ns: Option<u64>,
    /// Time from failure to the node rejoining.
    pub repair_ns: u64,
    pub seed: u64,
}

impl FailureConfig {
    pub fn none() -> Self {
        FailureConfig {
            node_mtbf_ns: None,
            repair_ns: 0,
            seed: 0,
        }
    }

    pub fn with_mtbf(node_mtbf_ns: u64, repair_ns: u64, seed: u64) -> Self {
        FailureConfig {
            node_mtbf_ns: Some(node_mtbf_ns),
            repair_ns,
            seed,
        }
    }
}

/// A failure event that occurred during an advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureEvent {
    pub node: NodeId,
    pub at_ns: u64,
}

/// The cluster.
pub struct Cluster {
    pub nodes: Vec<Node>,
    pub remote_server: Arc<RemoteServer>,
    /// The shared replica set behind every node's remote handle when the
    /// cluster was built with [`Cluster::new_replicated`]; `None` under the
    /// single-server remote.
    replica_set: Option<Arc<ReplicaSet>>,
    /// The shared striped pool behind every node's remote handle when the
    /// cluster was built with [`Cluster::new_striped`].
    striped_set: Option<Arc<StripedReplicaSet>>,
    now_ns: u64,
    failure_cfg: FailureConfig,
    rng: StdRng,
    /// Next scheduled failure per node (virtual time).
    next_failure: Vec<Option<u64>>,
    /// Pending repairs: (node index, due time).
    pending_repair: Vec<(usize, u64)>,
    /// All failures so far.
    pub failure_log: Vec<FailureEvent>,
    /// Cluster-wide trace sink, shared with every node kernel (a no-op
    /// sink unless [`Cluster::set_trace`] installs a recording one).
    trace: TraceHandle,
}

impl Cluster {
    pub fn new(n_nodes: usize, cost: CostModel, failure_cfg: FailureConfig) -> Self {
        let remote_server = RemoteServer::new(1 << 40);
        let server = remote_server.clone();
        Self::build(n_nodes, cost, failure_cfg, remote_server, None, move |id, cost| {
            Node::new(id, cost, server.clone())
        })
    }

    /// Build a cluster whose remote stable storage is one logical
    /// quorum-replicated store over `n_replicas` simulated replica nodes
    /// with write quorum `w` (`w > n_replicas / 2`). Every cluster node
    /// gets its own [`ReplicatedStore`] client onto the same shared
    /// [`ReplicaSet`], so a checkpoint committed by one node is readable
    /// from any survivor — the paper's survivability requirement — and
    /// replica losses degrade to a typed `QuorumLost`, never silence.
    pub fn new_replicated(
        n_nodes: usize,
        cost: CostModel,
        failure_cfg: FailureConfig,
        n_replicas: usize,
        w: usize,
    ) -> Self {
        // The single-server remote is still constructed (the field is part
        // of the public surface) but no node points at it in this mode.
        let remote_server = RemoteServer::new(1 << 40);
        let set = ReplicaSet::new(n_replicas);
        let cfg = ReplicaConfig::new(n_replicas, w);
        let client_set = set.clone();
        Self::build(
            n_nodes,
            cost,
            failure_cfg,
            remote_server,
            Some(set),
            move |id, cost| {
                let store = ReplicatedStore::new(client_set.clone(), cfg);
                Node::with_remote(id, cost, shared_storage(store))
            },
        )
    }

    fn build(
        n_nodes: usize,
        cost: CostModel,
        failure_cfg: FailureConfig,
        remote_server: Arc<RemoteServer>,
        replica_set: Option<Arc<ReplicaSet>>,
        mut make_node: impl FnMut(NodeId, CostModel) -> Node,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(failure_cfg.seed);
        let nodes: Vec<Node> = (0..n_nodes)
            .map(|i| make_node(NodeId(i as u32), cost.clone()))
            .collect();
        let next_failure = (0..n_nodes)
            .map(|_| Self::draw_failure(&mut rng, &failure_cfg, 0))
            .collect();
        Cluster {
            nodes,
            remote_server,
            replica_set,
            striped_set: None,
            now_ns: 0,
            failure_cfg,
            rng,
            next_failure,
            pending_repair: Vec::new(),
            failure_log: Vec::new(),
            trace: TraceHandle::disabled(),
        }
    }

    /// Build a cluster whose remote stable storage is a striped replica
    /// pool: `stripes` independent quorum sets of `n_replicas` each (write
    /// quorum `w`), keys routed by lineage hash. Every cluster node gets
    /// its own [`StripedStore`] client onto the same shared pool, so
    /// commits to different rank lineages overlap in virtual time instead
    /// of serializing behind one replica set.
    pub fn new_striped(
        n_nodes: usize,
        cost: CostModel,
        failure_cfg: FailureConfig,
        stripes: usize,
        n_replicas: usize,
        w: usize,
    ) -> Self {
        let remote_server = RemoteServer::new(1 << 40);
        let set = StripedReplicaSet::new(stripes, n_replicas);
        let cfg = ReplicaConfig::new(n_replicas, w);
        let client_set = set.clone();
        let mut c = Self::build(
            n_nodes,
            cost,
            failure_cfg,
            remote_server,
            None,
            move |id, cost| {
                let store = StripedStore::new(client_set.clone(), cfg);
                Node::with_remote(id, cost, shared_storage(store))
            },
        );
        c.striped_set = Some(set);
        c
    }

    /// Build a cluster whose remote stable storage is one RS(k, m)
    /// erasure-coded shard group of `k + m` simulated nodes. Every
    /// cluster node gets its own [`ErasureStore`] client onto the same
    /// shared [`ReplicaSet`], so a checkpoint committed by one node is
    /// readable (reconstructible) from any survivor while each commit
    /// moves only `(k + m) / k ×` its bytes — against `N ×` under
    /// [`Cluster::new_replicated`] at the same loss tolerance.
    pub fn new_erasure(
        n_nodes: usize,
        cost: CostModel,
        failure_cfg: FailureConfig,
        k: usize,
        m: usize,
    ) -> Self {
        let remote_server = RemoteServer::new(1 << 40);
        let set = ReplicaSet::new(k + m);
        let client_set = set.clone();
        Self::build(
            n_nodes,
            cost,
            failure_cfg,
            remote_server,
            Some(set),
            move |id, cost| {
                let store = ErasureStore::new(client_set.clone(), k, m);
                Node::with_remote(id, cost, shared_storage(store))
            },
        )
    }

    /// Build a cluster whose remote stable storage is an erasure-coded
    /// striped pool: `stripes` independent RS(k, m) shard groups, keys
    /// routed by lineage hash — the sharded control plane's commit
    /// overlap at coded bandwidth. Every cluster node gets its own
    /// [`EcStripedStore`] client onto the same shared pool.
    pub fn new_ec_striped(
        n_nodes: usize,
        cost: CostModel,
        failure_cfg: FailureConfig,
        stripes: usize,
        k: usize,
        m: usize,
    ) -> Self {
        let remote_server = RemoteServer::new(1 << 40);
        let set = StripedReplicaSet::new(stripes, k + m);
        let client_set = set.clone();
        let mut c = Self::build(
            n_nodes,
            cost,
            failure_cfg,
            remote_server,
            None,
            move |id, cost| {
                let store = EcStripedStore::new(client_set.clone(), k, m);
                Node::with_remote(id, cost, shared_storage(store))
            },
        );
        c.striped_set = Some(set);
        c
    }

    /// The shared replica set (replicated and erasure-coded clusters).
    pub fn replica_set(&self) -> Option<&Arc<ReplicaSet>> {
        self.replica_set.as_ref()
    }

    /// The shared striped pool (striped and EC-striped clusters).
    pub fn striped_set(&self) -> Option<&Arc<StripedReplicaSet>> {
        self.striped_set.as_ref()
    }

    /// Install a trace sink on the cluster and every node kernel (nodes
    /// repaired later inherit it too).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
        for node in self.nodes.iter_mut() {
            if let Some(k) = node.kernel() {
                k.set_trace(self.trace.clone());
            }
        }
    }

    /// The cluster-wide trace sink.
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    fn draw_failure(rng: &mut StdRng, cfg: &FailureConfig, now: u64) -> Option<u64> {
        let mtbf = cfg.node_mtbf_ns? as f64;
        // Exponential inter-arrival via inverse CDF.
        let u: f64 = rng.gen_range(1e-12..1.0);
        Some(now + (-mtbf * u.ln()) as u64)
    }

    pub fn now(&self) -> u64 {
        self.now_ns
    }

    pub fn node(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0 as usize]
    }

    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.alive())
            .map(|n| n.id)
            .collect()
    }

    /// Advance every node by `ns`, processing failure and repair events at
    /// their scheduled instants (to a `chunk`-granularity within the
    /// window). Returns the failures that occurred.
    pub fn advance(&mut self, ns: u64) -> Vec<FailureEvent> {
        let deadline = self.now_ns + ns;
        let mut events = Vec::new();
        while self.now_ns < deadline {
            // Next interesting instant: earliest failure/repair within the
            // window, else the deadline.
            let mut next = deadline;
            for t in self.next_failure.iter().flatten() {
                if *t > self.now_ns {
                    next = next.min(*t);
                }
            }
            for (_, t) in &self.pending_repair {
                if *t > self.now_ns {
                    next = next.min(*t);
                }
            }
            let step = next - self.now_ns;
            if step > 0 {
                for node in self.nodes.iter_mut() {
                    if let Some(k) = node.kernel() {
                        let _ = k.run_for(step);
                    }
                }
                self.now_ns = next;
            }
            // Fire due failures.
            for i in 0..self.nodes.len() {
                if let Some(t) = self.next_failure[i] {
                    if t <= self.now_ns && self.nodes[i].alive() {
                        self.nodes[i].fail();
                        self.trace
                            .cluster(ClusterEvent::FailureInjected { node: i as u32 }, self.now_ns);
                        events.push(FailureEvent {
                            node: NodeId(i as u32),
                            at_ns: self.now_ns,
                        });
                        self.pending_repair
                            .push((i, self.now_ns + self.failure_cfg.repair_ns));
                        self.next_failure[i] =
                            Self::draw_failure(&mut self.rng, &self.failure_cfg, self.now_ns)
                                .map(|f| f + self.failure_cfg.repair_ns);
                    }
                }
            }
            // Fire due repairs.
            let now = self.now_ns;
            let mut due: Vec<usize> = Vec::new();
            self.pending_repair.retain(|(i, t)| {
                if *t <= now {
                    due.push(*i);
                    false
                } else {
                    true
                }
            });
            for i in due {
                self.nodes[i].repair(now);
                if let Some(k) = self.nodes[i].kernel() {
                    k.set_trace(self.trace.clone());
                }
                self.trace
                    .cluster(ClusterEvent::NodeRepaired { node: i as u32 }, now);
            }
            if step == 0 && next == deadline {
                break;
            }
        }
        self.failure_log.extend(events.iter().copied());
        events
    }

    /// Force a failure on a specific node right now (for directed tests).
    pub fn inject_failure(&mut self, id: NodeId) -> FailureEvent {
        let i = id.0 as usize;
        self.nodes[i].fail();
        self.trace
            .cluster(ClusterEvent::FailureInjected { node: id.0 }, self.now_ns);
        let ev = FailureEvent {
            node: id,
            at_ns: self.now_ns,
        };
        self.failure_log.push(ev);
        self.pending_repair
            .push((i, self.now_ns + self.failure_cfg.repair_ns));
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::apps::{AppParams, NativeKind};

    #[test]
    fn advance_moves_all_clocks_together() {
        let mut c = Cluster::new(3, CostModel::circa_2005(), FailureConfig::none());
        c.advance(50_000_000);
        assert_eq!(c.now(), 50_000_000);
        for n in &c.nodes {
            assert_eq!(n.kernel_ref().unwrap().now(), 50_000_000);
        }
    }

    #[test]
    fn failures_follow_configured_mtbf_roughly() {
        // 4 nodes, MTBF 100 ms, run 2 s → expect ~80 failures; accept a
        // wide band (repair downtime lowers the effective rate).
        let mut c = Cluster::new(
            4,
            CostModel::circa_2005(),
            FailureConfig::with_mtbf(100_000_000, 10_000_000, 42),
        );
        c.advance(2_000_000_000);
        let n = c.failure_log.len();
        assert!(n > 30, "too few failures: {n}");
        assert!(n < 200, "too many failures: {n}");
    }

    #[test]
    fn failed_node_loses_processes_and_returns_after_repair() {
        let mut c = Cluster::new(
            2,
            CostModel::circa_2005(),
            FailureConfig::with_mtbf(u64::MAX / 4, 20_000_000, 1),
        );
        let pid = c
            .node(NodeId(0))
            .kernel()
            .unwrap()
            .spawn_native(NativeKind::SparseRandom, AppParams::small())
            .unwrap();
        c.advance(10_000_000);
        c.inject_failure(NodeId(0));
        assert!(!c.nodes[0].alive());
        // Repair happens during further advance.
        c.advance(30_000_000);
        assert!(c.nodes[0].alive());
        assert!(c.node(NodeId(0)).kernel().unwrap().process(pid).is_none());
        // Clock resynchronized with the cluster.
        assert_eq!(c.nodes[0].now(), c.now());
    }

    #[test]
    fn erasure_cluster_shares_one_coded_shard_group() {
        let c = Cluster::new_erasure(
            2,
            CostModel::circa_2005(),
            FailureConfig::none(),
            4,
            2,
        );
        let set = c.replica_set().expect("coded cluster exposes its shard set");
        assert_eq!(set.len(), 6);
        // A commit through node 0's client is reconstructible through
        // node 1's — even after m shard nodes die.
        let cost = CostModel::circa_2005();
        c.nodes[0]
            .remote
            .lock()
            .store("ckpt/a", b"coded once, readable anywhere", &cost)
            .unwrap();
        set.node(0).fail();
        set.node(5).fail();
        let (bytes, _) = c.nodes[1].remote.lock().load("ckpt/a", &cost).unwrap();
        assert_eq!(bytes, b"coded once, readable anywhere");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed: u64| -> Vec<u64> {
            let mut c = Cluster::new(
                3,
                CostModel::circa_2005(),
                FailureConfig::with_mtbf(50_000_000, 5_000_000, seed),
            );
            c.advance(500_000_000);
            c.failure_log.iter().map(|e| e.at_ns).collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
