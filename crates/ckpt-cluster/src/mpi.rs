//! A minimal deterministic message-passing (MPI-like) job layer.
//!
//! The `repro_why` note for this reproduction observes that Rust MPI
//! bindings are thin; coordinated checkpointing only needs a
//! bulk-synchronous send/recv/barrier substrate, so we build exactly that:
//! ranks are native guest apps, each **superstep** runs every rank for a
//! fixed number of app steps and then performs a deterministic neighbour
//! exchange (each rank sends a digest of its state to the next rank, ring
//! topology), charged with network latency/bandwidth on both kernels.
//!
//! Everything a rank knows — including its superstep counter and inbox —
//! lives in its guest memory, so a coordinated checkpoint taken at a
//! superstep boundary (where no messages are in flight) captures the whole
//! job state, and restart correctness is checkable end to end.

use crate::cluster::Cluster;
use crate::node::NodeId;
use simos::apps::{AppParams, NativeKind, HEADER_BASE};
use simos::types::{Pid, SimError, SimResult};

/// Guest-memory slots the job driver maintains per rank (within the app
/// header page, after the app's own fields).
pub const SLOT_SUPERSTEP: u64 = HEADER_BASE + 32;
pub const SLOT_INBOX: u64 = HEADER_BASE + 40;

/// Where one rank currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankRef {
    pub rank: u32,
    pub node: NodeId,
    pub pid: Pid,
}

/// Why a superstep could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobInterrupt {
    /// A node hosting a rank failed; the job must be recovered.
    NodeLost(NodeId),
}

/// A bulk-synchronous parallel job.
pub struct MpiJob {
    pub name: String,
    pub ranks: Vec<RankRef>,
    pub steps_per_superstep: u64,
    /// Payload size of each neighbour message.
    pub msg_bytes: u64,
    pub kind: NativeKind,
    pub params: AppParams,
    completed_supersteps: u64,
}

impl MpiJob {
    /// Launch `n_ranks` ranks round-robin across the alive nodes.
    pub fn launch(
        cluster: &mut Cluster,
        name: &str,
        n_ranks: u32,
        kind: NativeKind,
        mut params: AppParams,
        steps_per_superstep: u64,
        msg_bytes: u64,
    ) -> SimResult<Self> {
        params.total_steps = u64::MAX; // the job driver decides completion
        let alive = cluster.alive_nodes();
        if alive.is_empty() {
            return Err(SimError::Usage("no alive nodes".into()));
        }
        let mut ranks = Vec::new();
        for r in 0..n_ranks {
            let node = alive[r as usize % alive.len()];
            let mut p = params.clone();
            p.seed = params.seed.wrapping_add(r as u64);
            let k = cluster
                .node(node)
                .kernel()
                .ok_or_else(|| SimError::Usage(format!("{node} down at launch")))?;
            let pid = k.spawn_native(kind, p)?;
            ranks.push(RankRef { rank: r, node, pid });
        }
        Ok(MpiJob {
            name: name.to_string(),
            ranks,
            steps_per_superstep,
            msg_bytes,
            kind,
            params,
            completed_supersteps: 0,
        })
    }

    pub fn completed_supersteps(&self) -> u64 {
        self.completed_supersteps
    }

    /// After a restart, resynchronize the driver's superstep counter from
    /// rank 0's guest memory (the durable truth).
    pub fn resync_supersteps(&mut self, cluster: &mut Cluster) -> SimResult<()> {
        let r = self.ranks[0];
        let k = cluster
            .node(r.node)
            .kernel()
            .ok_or_else(|| SimError::Usage(format!("{} down", r.node)))?;
        let mut buf = [0u8; 8];
        k.process(r.pid)
            .ok_or(SimError::NoSuchProcess(r.pid))?
            .mem
            .peek(SLOT_SUPERSTEP, &mut buf);
        self.completed_supersteps = u64::from_le_bytes(buf);
        Ok(())
    }

    fn rank_work_target(&self) -> u64 {
        (self.completed_supersteps + 1) * self.steps_per_superstep
    }

    /// Execute one superstep: compute phase on all ranks, then the ring
    /// exchange, then the barrier (counter bump). On a node loss the
    /// caller must recover from the last coordinated checkpoint.
    pub fn superstep(&mut self, cluster: &mut Cluster) -> Result<(), JobInterrupt> {
        // --- compute phase ---
        let target = self.rank_work_target();
        loop {
            let mut all_done = true;
            for r in &self.ranks {
                let Some(k) = cluster.node(r.node).kernel() else {
                    return Err(JobInterrupt::NodeLost(r.node));
                };
                let Some(p) = k.process(r.pid) else {
                    return Err(JobInterrupt::NodeLost(r.node));
                };
                if p.work_done < target {
                    all_done = false;
                }
            }
            if all_done {
                break;
            }
            let events = cluster.advance(2_000_000);
            for ev in &events {
                if self.ranks.iter().any(|r| r.node == ev.node) {
                    return Err(JobInterrupt::NodeLost(ev.node));
                }
            }
        }
        // --- exchange phase (ring): rank r → rank (r+1) % R ---
        let n = self.ranks.len();
        let mut digests = Vec::with_capacity(n);
        for r in &self.ranks {
            let k = cluster
                .node(r.node)
                .kernel()
                .ok_or(JobInterrupt::NodeLost(r.node))?;
            let mut buf = [0u8; 8];
            k.process(r.pid)
                .ok_or(JobInterrupt::NodeLost(r.node))?
                .mem
                .peek(simos::apps::H_SUM, &mut buf);
            digests.push(u64::from_le_bytes(buf));
        }
        #[allow(clippy::needless_range_loop)] // ring topology needs both indices
        for i in 0..n {
            let to = (i + 1) % n;
            let payload = digests[i]
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(self.completed_supersteps);
            // Sender pays a send syscall + wire time.
            {
                let sender = self.ranks[i];
                let k = cluster
                    .node(sender.node)
                    .kernel()
                    .ok_or(JobInterrupt::NodeLost(sender.node))?;
                k.stats.syscalls += 1;
                let t = k.cost.syscall_round_trip()
                    + k.cost.net_latency_ns
                    + (self.msg_bytes as f64 * k.cost.net_ns_per_byte).round() as u64;
                k.charge(t);
            }
            // Receiver pays a recv syscall + copy into its inbox slot.
            {
                let recv = self.ranks[to];
                let k = cluster
                    .node(recv.node)
                    .kernel()
                    .ok_or(JobInterrupt::NodeLost(recv.node))?;
                k.stats.syscalls += 1;
                let t = k.cost.syscall_round_trip() + k.cost.memcpy(self.msg_bytes);
                k.charge(t);
                k.mem_write(recv.pid, SLOT_INBOX, &payload.to_le_bytes())
                    .map_err(|_| JobInterrupt::NodeLost(recv.node))?;
            }
        }
        // --- barrier: bump every rank's superstep counter ---
        self.completed_supersteps += 1;
        for r in &self.ranks {
            let done = self.completed_supersteps;
            let k = cluster
                .node(r.node)
                .kernel()
                .ok_or(JobInterrupt::NodeLost(r.node))?;
            k.mem_write(r.pid, SLOT_SUPERSTEP, &done.to_le_bytes())
                .map_err(|_| JobInterrupt::NodeLost(r.node))?;
        }
        Ok(())
    }

    /// Read every rank's (superstep, inbox) — for correctness checks.
    pub fn rank_states(&self, cluster: &mut Cluster) -> SimResult<Vec<(u64, u64)>> {
        let mut out = Vec::new();
        for r in &self.ranks {
            let k = cluster
                .node(r.node)
                .kernel()
                .ok_or_else(|| SimError::Usage(format!("{} down", r.node)))?;
            let p = k.process(r.pid).ok_or(SimError::NoSuchProcess(r.pid))?;
            let mut a = [0u8; 8];
            let mut b = [0u8; 8];
            p.mem.peek(SLOT_SUPERSTEP, &mut a);
            p.mem.peek(SLOT_INBOX, &mut b);
            out.push((u64::from_le_bytes(a), u64::from_le_bytes(b)));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::FailureConfig;
    use simos::cost::CostModel;

    fn job_on(n_nodes: usize, n_ranks: u32) -> (Cluster, MpiJob) {
        let mut c = Cluster::new(n_nodes, CostModel::circa_2005(), FailureConfig::none());
        let job = MpiJob::launch(
            &mut c,
            "stencil",
            n_ranks,
            NativeKind::SparseRandom,
            AppParams::small(),
            8,
            64 * 1024,
        )
        .unwrap();
        (c, job)
    }

    #[test]
    fn ranks_placed_round_robin() {
        let (_c, job) = job_on(2, 4);
        assert_eq!(job.ranks[0].node, NodeId(0));
        assert_eq!(job.ranks[1].node, NodeId(1));
        assert_eq!(job.ranks[2].node, NodeId(0));
        assert_eq!(job.ranks[3].node, NodeId(1));
    }

    #[test]
    fn supersteps_advance_all_ranks_in_lockstep() {
        let (mut c, mut job) = job_on(2, 4);
        for _ in 0..3 {
            job.superstep(&mut c).unwrap();
        }
        assert_eq!(job.completed_supersteps(), 3);
        let states = job.rank_states(&mut c).unwrap();
        for (ss, inbox) in &states {
            assert_eq!(*ss, 3);
            assert_ne!(*inbox, 0, "every rank received a message");
        }
    }

    #[test]
    fn exchange_is_deterministic() {
        let run = || {
            let (mut c, mut job) = job_on(2, 3);
            for _ in 0..4 {
                job.superstep(&mut c).unwrap();
            }
            job.rank_states(&mut c).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn node_loss_interrupts_the_superstep() {
        let (mut c, mut job) = job_on(2, 2);
        job.superstep(&mut c).unwrap();
        c.inject_failure(NodeId(1));
        match job.superstep(&mut c) {
            Err(JobInterrupt::NodeLost(n)) => assert_eq!(n, NodeId(1)),
            other => panic!("expected NodeLost, got {other:?}"),
        }
    }

    #[test]
    fn messaging_charges_network_time() {
        let (mut c, mut job) = job_on(2, 2);
        let t0 = c.node(NodeId(0)).now();
        job.superstep(&mut c).unwrap();
        // Node time advanced beyond pure compute (net latency charged).
        assert!(c.node(NodeId(0)).now() > t0);
        let k = c.node(NodeId(0)).kernel().unwrap();
        assert!(k.stats.syscalls >= 2, "send+recv syscalls charged");
    }
}
