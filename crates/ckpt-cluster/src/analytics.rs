//! Utilization analytics: how checkpoint interval, checkpoint cost and
//! MTBF trade off — the capability-computing arithmetic that motivates the
//! whole paper (BlueGene/L's 65,536 nodes, MTBF "orders of magnitude
//! shorter" than job run times).
//!
//! Two layers:
//!
//! * [`simulate_job`] — runs a *real* job on the kernel-level cluster with
//!   failure injection and coordinated checkpointing, measuring actual
//!   completion time and lost work. Small scale, fully mechanistic.
//! * [`stochastic_run`] — an event-level Monte-Carlo model (no kernels)
//!   that scales to 65,536 nodes, validated against the same first-order
//!   analytics in [`ckpt_core::policy`]. This is how the BlueGene/L
//!   extrapolation in the experiments is produced.

use crate::cluster::{Cluster, FailureConfig};
use crate::coordinator::Coordinator;
use crate::mpi::{JobInterrupt, MpiJob};
use ckpt_core::tracker::TrackerKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simos::apps::{AppParams, NativeKind};
use simos::cost::CostModel;
use simos::types::{SimError, SimResult};

/// Configuration of a mechanistic fault-tolerant run.
#[derive(Debug, Clone)]
pub struct JobRunConfig {
    pub n_nodes: usize,
    pub n_ranks: u32,
    pub target_supersteps: u64,
    pub steps_per_superstep: u64,
    pub checkpoint_every_supersteps: u64,
    pub kind: NativeKind,
    pub params: AppParams,
    pub failure: FailureConfig,
    pub tracker: TrackerKind,
    pub cost: CostModel,
}

impl JobRunConfig {
    pub fn small() -> Self {
        JobRunConfig {
            n_nodes: 3,
            n_ranks: 3,
            target_supersteps: 20,
            steps_per_superstep: 4,
            checkpoint_every_supersteps: 5,
            kind: NativeKind::SparseRandom,
            params: AppParams::small(),
            failure: FailureConfig::none(),
            tracker: TrackerKind::KernelPage,
            cost: CostModel::circa_2005(),
        }
    }
}

/// What a mechanistic run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRunReport {
    pub completed: bool,
    pub total_ns: u64,
    pub failures: u64,
    pub recoveries: u64,
    pub checkpoints: u64,
    pub checkpoint_bytes: u64,
    /// Supersteps that were executed more than once due to rollback.
    pub supersteps_reexecuted: u64,
}

/// Run a job to completion under failures with periodic coordinated
/// checkpointing. Gives up after `max_recoveries` consecutive failed
/// recovery attempts.
pub fn simulate_job(cfg: &JobRunConfig) -> SimResult<JobRunReport> {
    let mut cluster = Cluster::new(cfg.n_nodes, cfg.cost.clone(), cfg.failure.clone());
    let mut job = MpiJob::launch(
        &mut cluster,
        "job",
        cfg.n_ranks,
        cfg.kind,
        cfg.params.clone(),
        cfg.steps_per_superstep,
        32 * 1024,
    )?;
    let mut coord = Coordinator::new("ftrun", cfg.tracker);
    let mut recoveries = 0u64;
    let mut reexec = 0u64;
    let mut max_superstep_seen = 0u64;
    let give_up_at = 10_000u64;
    let mut attempts = 0u64;
    while job.completed_supersteps() < cfg.target_supersteps {
        attempts += 1;
        if attempts > give_up_at {
            return Err(SimError::Timeout("job never completed".into()));
        }
        match job.superstep(&mut cluster) {
            Ok(()) => {
                let done = job.completed_supersteps();
                if done <= max_superstep_seen {
                    reexec += 1;
                } else {
                    max_superstep_seen = done;
                }
                if cfg.checkpoint_every_supersteps > 0
                    && done % cfg.checkpoint_every_supersteps == 0
                {
                    coord.checkpoint(&mut cluster, &job)?;
                }
            }
            Err(JobInterrupt::NodeLost(_)) => {
                // Wait for enough capacity, then recover from the last
                // coordinated checkpoint (or restart from scratch if none).
                while cluster.alive_nodes().is_empty() {
                    cluster.advance(cfg.failure.repair_ns.max(1_000_000));
                }
                if coord.has_checkpoint() {
                    coord.restart(&mut cluster, &mut job)?;
                } else {
                    job = MpiJob::launch(
                        &mut cluster,
                        "job",
                        cfg.n_ranks,
                        cfg.kind,
                        cfg.params.clone(),
                        cfg.steps_per_superstep,
                        32 * 1024,
                    )?;
                }
                recoveries += 1;
            }
        }
    }
    Ok(JobRunReport {
        completed: true,
        total_ns: cluster.now(),
        failures: cluster.failure_log.len() as u64,
        recoveries,
        checkpoints: coord.outcomes.len() as u64,
        checkpoint_bytes: coord.outcomes.iter().map(|o| o.total_bytes).sum(),
        supersteps_reexecuted: reexec,
    })
}

/// One data point of the large-scale stochastic model.
#[derive(Debug, Clone, PartialEq)]
pub struct StochasticReport {
    pub n_nodes: u64,
    pub job_mtbf_ns: f64,
    pub total_ns: u64,
    pub useful_ns: u64,
    pub failures: u64,
    pub checkpoints: u64,
    pub utilization: f64,
}

/// Event-level Monte-Carlo: a job of `work_ns` useful nanoseconds runs on
/// `n_nodes` nodes whose *aggregate* failure process is exponential with
/// rate `n / node_mtbf`. Periodic checkpoints cost `ckpt_cost_ns`;
/// a failure rolls back to the last checkpoint and pays `restart_cost_ns`.
pub fn stochastic_run(
    n_nodes: u64,
    node_mtbf_ns: u64,
    ckpt_interval_ns: u64,
    ckpt_cost_ns: u64,
    restart_cost_ns: u64,
    work_ns: u64,
    seed: u64,
) -> StochasticReport {
    assert!(n_nodes > 0 && node_mtbf_ns > 0 && ckpt_interval_ns > 0);
    let job_mtbf = node_mtbf_ns as f64 / n_nodes as f64;
    let mut rng = StdRng::seed_from_u64(seed);
    let draw = |rng: &mut StdRng| -> f64 {
        let u: f64 = rng.gen_range(1e-12..1.0f64);
        -job_mtbf * u.ln()
    };
    let mut clock = 0f64;
    let mut done_work = 0u64; // work preserved by the last checkpoint
    let mut failures = 0u64;
    let mut checkpoints = 0u64;
    let mut next_failure = draw(&mut rng);
    // Each segment: compute ckpt_interval of work then checkpoint. The
    // segment size depends only on `done_work`, so it is recomputed on
    // commit rather than on every failure retry (the hot path when the
    // interval is much longer than the job MTBF).
    let mut segment_work = ckpt_interval_ns.min(work_ns) as f64;
    let mut segment_span = segment_work + ckpt_cost_ns as f64;
    while done_work < work_ns {
        if clock + segment_span <= next_failure {
            // Segment completes and commits.
            clock += segment_span;
            done_work += segment_work as u64;
            checkpoints += 1;
            segment_work = ckpt_interval_ns.min(work_ns - done_work) as f64;
            segment_span = segment_work + ckpt_cost_ns as f64;
        } else {
            // Failure mid-segment: everything since the last checkpoint is
            // lost; pay restart and continue.
            failures += 1;
            clock = next_failure + restart_cost_ns as f64;
            next_failure = clock + draw(&mut rng);
        }
        // Defensive bound for absurd configurations.
        if failures > 10_000_000 {
            break;
        }
    }
    let total = clock.round() as u64;
    StochasticReport {
        n_nodes,
        job_mtbf_ns: job_mtbf,
        total_ns: total.max(1),
        useful_ns: work_ns.min(done_work),
        failures,
        checkpoints,
        utilization: work_ns as f64 / total.max(1) as f64,
    }
}

/// Sweep checkpoint intervals for a fixed system; returns
/// (interval, mean utilization over `trials`).
pub fn interval_sweep(
    n_nodes: u64,
    node_mtbf_ns: u64,
    ckpt_cost_ns: u64,
    restart_cost_ns: u64,
    work_ns: u64,
    intervals: &[u64],
    trials: u64,
) -> Vec<(u64, f64)> {
    // Every (interval, trial) pair is an independent Monte-Carlo run with
    // its own seed, so all of them fan out on the pool at once. The means
    // are then folded per interval in trial order — the same f64 summation
    // order as the serial loop, so the sweep is bit-identical at any width.
    let jobs: Vec<(u64, u64)> = intervals
        .iter()
        .flat_map(|&t| (0..trials).map(move |i| (t, i)))
        .collect();
    let utils = ckpt_par::global().par_map_ordered(jobs, || (), |_, _, (t, i)| {
        stochastic_run(
            n_nodes,
            node_mtbf_ns,
            t,
            ckpt_cost_ns,
            restart_cost_ns,
            work_ns,
            0xC0FFEE + i,
        )
        .utilization
    });
    intervals
        .iter()
        .enumerate()
        .map(|(k, &t)| {
            let lo = k * trials as usize;
            let mean = utils[lo..lo + trials as usize].iter().sum::<f64>() / trials as f64;
            (t, mean)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_core::policy::young_interval;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn failure_free_mechanistic_run_completes() {
        let cfg = JobRunConfig::small();
        let r = simulate_job(&cfg).unwrap();
        assert!(r.completed);
        assert_eq!(r.failures, 0);
        assert_eq!(r.recoveries, 0);
        assert!(r.checkpoints >= 3);
        assert_eq!(r.supersteps_reexecuted, 0);
    }

    /// A run configuration long enough (in virtual time) for failures on a
    /// millisecond MTBF to actually land during the job.
    fn heavy_cfg() -> JobRunConfig {
        let mut cfg = JobRunConfig::small();
        cfg.n_nodes = 4;
        cfg.n_ranks = 4;
        cfg.kind = NativeKind::DenseSweep;
        cfg.params.mem_bytes = 128 * 1024; // ~85 us per step per rank
        cfg.steps_per_superstep = 20;
        cfg.target_supersteps = 10;
        cfg.checkpoint_every_supersteps = 2;
        cfg
    }

    #[test]
    fn run_with_failures_completes_and_reexecutes_some_work() {
        let mut cfg = heavy_cfg();
        cfg.failure = FailureConfig::with_mtbf(20_000_000, 2_000_000, 3);
        let r = simulate_job(&cfg).unwrap();
        assert!(r.completed);
        assert!(r.failures > 0, "no failures injected");
        assert!(r.recoveries > 0);
    }

    #[test]
    fn checkpointing_beats_no_checkpointing_under_failures() {
        // Without checkpoints the job restarts from scratch each failure;
        // with them it only loses the tail. Completion time must reflect
        // that (run both on identical failure seeds).
        let mut with = heavy_cfg();
        with.failure = FailureConfig::with_mtbf(40_000_000, 2_000_000, 9);
        let mut without = with.clone();
        without.checkpoint_every_supersteps = 0;
        let a = simulate_job(&with).unwrap();
        let b = simulate_job(&without).unwrap();
        assert!(a.failures > 0, "seed produced no failures");
        assert!(
            a.total_ns < b.total_ns,
            "with ckpt {} should beat without {}",
            a.total_ns,
            b.total_ns
        );
    }

    #[test]
    fn stochastic_utilization_peaks_near_young() {
        let n = 1024;
        let node_mtbf = 3600 * SEC; // per-node 1 h → job MTBF ≈ 3.5 s
        let c = SEC / 2;
        let r = 5 * SEC;
        let work = 2_000 * SEC;
        let t_young = young_interval(c, (node_mtbf as f64 / n as f64) as u64);
        let sweep = interval_sweep(
            n,
            node_mtbf,
            c,
            r,
            work,
            &[t_young / 16, t_young, t_young * 16],
            8,
        );
        let u = |i: usize| sweep[i].1;
        assert!(u(1) > u(0), "Young {} ≤ too-short {}", u(1), u(0));
        assert!(u(1) > u(2), "Young {} ≤ too-long {}", u(1), u(2));
    }

    #[test]
    fn utilization_collapses_at_bluegene_scale_without_short_intervals() {
        // 65,536 nodes with per-node MTBF of 10 h → job MTBF ≈ 0.55 s at
        // full scale. With a 1-minute interval the machine does almost no
        // useful work; with Young's interval it does far better.
        let n = 65_536;
        let node_mtbf = 36_000 * SEC;
        let c = SEC / 10;
        let long = stochastic_run(n, node_mtbf, 60 * SEC, c, SEC, 60 * SEC, 7);
        let t_young = young_interval(c, (node_mtbf as f64 / n as f64) as u64);
        let tuned = stochastic_run(n, node_mtbf, t_young.max(1), c, SEC, 60 * SEC, 7);
        assert!(
            tuned.utilization > 2.0 * long.utilization,
            "tuned {} vs naive {}",
            tuned.utilization,
            long.utilization
        );
    }

    #[test]
    fn stochastic_model_tracks_analytic_first_order() {
        // Where the interval is well below the job MTBF (the regime the
        // first-order model is valid in), Monte-Carlo mean utilization
        // should be within a few points of the closed form.
        let n = 16;
        let node_mtbf = 3600 * SEC; // job MTBF = 225 s
        let c = SEC;
        let r = 10 * SEC;
        let t = 30 * SEC;
        let mc: f64 = (0..32)
            .map(|i| {
                stochastic_run(n, node_mtbf, t, c, r, 2_000 * SEC, 100 + i).utilization
            })
            .sum::<f64>()
            / 32.0;
        let analytic = ckpt_core::policy::expected_utilization(
            t,
            c,
            r,
            (node_mtbf as f64 / n as f64) as u64,
        );
        assert!(
            (mc - analytic).abs() < 0.1,
            "Monte-Carlo {mc:.3} vs analytic {analytic:.3}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = stochastic_run(128, 3600 * SEC, 60 * SEC, SEC, 5 * SEC, 500 * SEC, 11);
        let b = stochastic_run(128, 3600 * SEC, 60 * SEC, SEC, 5 * SEC, 500 * SEC, 11);
        assert_eq!(a, b);
    }
}
