//! An LSF-style centralized batch manager — the user-level management
//! layer the paper contrasts with system-level autonomy.
//!
//! Section 4.1: "The common practice to provide flexibility is by
//! integrating the user-initiation operations within a batch management
//! software such as the LSF … we believe that the lack of these
//! capabilities at system-level is a limiting factor to enable autonomic
//! computers because … (2) [it] reduces the scalability and fault
//! tolerance of autonomic computers because the management is
//! centralized."
//!
//! [`BatchManager`] makes both criticisms measurable:
//!
//! * **centralized initiation**: each checkpoint round issues one remote
//!   request per managed node *serially from the manager*, so round
//!   latency grows linearly with cluster size — versus the per-node
//!   autonomic daemon whose rounds are local and concurrent;
//! * **single point of failure**: if the manager node is down, nobody
//!   initiates checkpoints at all.

use crate::cluster::Cluster;
use crate::node::NodeId;
use ckpt_core::autonomic::AutonomicDaemon;
use simos::types::{Pid, SimError, SimResult};

/// One process under batch management.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManagedJob {
    pub node: NodeId,
    pub pid: Pid,
}

/// What one manager-driven checkpoint round cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRoundReport {
    pub requests_sent: usize,
    pub requests_failed: usize,
    /// Virtual time from round start to the last acknowledgement reaching
    /// the manager.
    pub round_latency_ns: u64,
}

/// The centralized manager. It lives on one node and drives checkpoint
/// daemons on the others over the network.
pub struct BatchManager {
    pub home: NodeId,
    pub jobs: Vec<ManagedJob>,
    /// Name of the daemon module installed on each managed node.
    pub daemon_name: String,
    pub rounds: Vec<BatchRoundReport>,
}

impl BatchManager {
    pub fn new(home: NodeId, daemon_name: &str) -> Self {
        BatchManager {
            home,
            jobs: Vec::new(),
            daemon_name: daemon_name.to_string(),
            rounds: Vec::new(),
        }
    }

    pub fn manage(&mut self, node: NodeId, pid: Pid) {
        self.jobs.push(ManagedJob { node, pid });
    }

    /// Drive one checkpoint round from the manager: for each managed job,
    /// a request message travels manager → node (network latency), the
    /// node's daemon checkpoints the process, and an acknowledgement
    /// travels back. Requests are issued serially — the centralization the
    /// paper criticizes.
    pub fn checkpoint_round(&mut self, cluster: &mut Cluster) -> SimResult<BatchRoundReport> {
        // The manager must be up at all.
        if !cluster.nodes[self.home.0 as usize].alive() {
            return Err(SimError::Usage(format!(
                "batch manager node {} is down — no checkpoints happen (the \
                 single-point-of-failure problem)",
                self.home
            )));
        }
        let t0 = cluster
            .node(self.home)
            .kernel()
            .expect("alive")
            .now();
        let mut sent = 0usize;
        let mut failed = 0usize;
        let mut manager_clock = t0;
        for job in self.jobs.clone() {
            sent += 1;
            // Request: manager pays send cost; serialization happens on
            // the manager's clock.
            let (net_latency, _) = {
                let mk = cluster.node(self.home).kernel().expect("alive");
                let lat = mk.cost.net_latency_ns;
                mk.stats.syscalls += 1;
                let t = mk.cost.syscall_round_trip() + lat;
                mk.charge(t);
                (lat, ())
            };
            manager_clock += net_latency;
            // Target node services the request (if it is alive).
            let Some(k) = cluster.node(job.node).kernel() else {
                failed += 1;
                continue;
            };
            // Bring the target's clock up to the request's arrival.
            if k.now() < manager_clock {
                let dt = manager_clock - k.now();
                let _ = k.run_for(dt);
            }
            let ok = k
                .with_module_mut::<AutonomicDaemon, _>(&self.daemon_name, |d, k| {
                    d.checkpoint_now(k, job.pid).is_ok()
                })
                .unwrap_or(false);
            if !ok {
                failed += 1;
                continue;
            }
            // Acknowledgement back to the manager.
            let done_at = cluster.node(job.node).kernel().expect("alive").now() + net_latency;
            manager_clock = manager_clock.max(done_at);
        }
        // The manager's clock reflects the serialized round.
        {
            let mk = cluster.node(self.home).kernel().expect("alive");
            if mk.now() < manager_clock {
                let dt = manager_clock - mk.now();
                let _ = mk.run_for(dt);
            }
        }
        let report = BatchRoundReport {
            requests_sent: sent,
            requests_failed: failed,
            round_latency_ns: manager_clock - t0,
        };
        self.rounds.push(report.clone());
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::FailureConfig;
    use ckpt_core::autonomic::{self, AutonomicConfig};
    use simos::apps::{AppParams, NativeKind};
    use simos::cost::CostModel;

    /// Build a cluster with one managed app per node (plus a daemon
    /// installed per node but with automatic timers disabled — the batch
    /// manager is the only initiator).
    fn setup(n: usize) -> (Cluster, BatchManager) {
        let mut cluster = Cluster::new(n, CostModel::circa_2005(), FailureConfig::none());
        let mut mgr = BatchManager::new(NodeId(0), "lsfd");
        for i in 0..n {
            let node = NodeId(i as u32);
            let remote = cluster.nodes[i].remote.clone();
            let k = cluster.node(node).kernel().unwrap();
            let mut p = AppParams::small();
            p.total_steps = u64::MAX;
            let pid = k.spawn_native(NativeKind::SparseRandom, p).unwrap();
            let cfg = AutonomicConfig {
                module_name: "lsfd".into(),
                job: format!("batch-{i}"),
                adaptive: false,
                initial_interval_ns: u64::MAX / 4, // timer effectively off
                ..Default::default()
            };
            let name = autonomic::install(k, cfg, remote).unwrap();
            autonomic::register(k, &name, pid).unwrap();
            mgr.manage(node, pid);
        }
        (cluster, mgr)
    }

    #[test]
    fn round_checkpoints_every_managed_job() {
        let (mut cluster, mut mgr) = setup(3);
        cluster.advance(10_000_000);
        let r = mgr.checkpoint_round(&mut cluster).unwrap();
        assert_eq!(r.requests_sent, 3);
        assert_eq!(r.requests_failed, 0);
        for i in 0..3 {
            let k = cluster.node(NodeId(i)).kernel().unwrap();
            let n = k
                .with_module_mut::<AutonomicDaemon, _>("lsfd", |d, _| d.outcomes.len())
                .unwrap();
            assert_eq!(n, 1, "node {i} not checkpointed");
        }
    }

    #[test]
    fn round_latency_grows_with_cluster_size() {
        let latency = |n: usize| {
            let (mut cluster, mut mgr) = setup(n);
            cluster.advance(10_000_000);
            mgr.checkpoint_round(&mut cluster).unwrap().round_latency_ns
        };
        let small = latency(2);
        let big = latency(8);
        assert!(
            big > 2 * small,
            "serialized rounds must scale with size: {small} vs {big}"
        );
    }

    #[test]
    fn dead_manager_means_no_checkpoints() {
        let (mut cluster, mut mgr) = setup(3);
        cluster.advance(5_000_000);
        cluster.inject_failure(NodeId(0));
        assert!(mgr.checkpoint_round(&mut cluster).is_err());
        // The other nodes' daemons took no checkpoints on their own.
        for i in 1..3 {
            let k = cluster.node(NodeId(i)).kernel().unwrap();
            let n = k
                .with_module_mut::<AutonomicDaemon, _>("lsfd", |d, _| d.outcomes.len())
                .unwrap();
            assert_eq!(n, 0);
        }
    }

    #[test]
    fn dead_member_is_reported_not_fatal() {
        let (mut cluster, mut mgr) = setup(3);
        cluster.advance(5_000_000);
        cluster.inject_failure(NodeId(2));
        let r = mgr.checkpoint_round(&mut cluster).unwrap();
        assert_eq!(r.requests_sent, 3);
        assert_eq!(r.requests_failed, 1);
    }
}
