//! The sharded control plane: hierarchical coordinated rounds with
//! batched quorum commits.
//!
//! One flat [`Coordinator`](crate::coordinator::Coordinator) barriers
//! every rank and commits every image through one replica set — fine at
//! survey scale, a bottleneck at the paper's capability scale (BlueGene/L:
//! 65,536 nodes). Skjellum et al. (PAPERS.md) argue the checkpoint
//! *service* itself must scale and survive faults. This module is that
//! service:
//!
//! * **Two levels.** Ranks are partitioned across shard coordinators.
//!   Each shard runs a local coordinated round — freeze, capture, encode
//!   — and commits its round's images as ONE framed batched quorum commit
//!   ([`StableStorage::store_batch`]): one admission/backoff/ack cycle
//!   per replica per shard round instead of per image.
//! * **Two phases.** The root commits the global cut only after every
//!   shard's quorum ack (phase 1 = shard commits, phase 2 = root commit).
//!   Both phases carry faultpoint sites — `shard/s<i>/commit` and
//!   `shard/root/commit` — so the crash matrix can kill the protocol
//!   between any two steps. A round that dies part-way burns its
//!   sequence number and leaves the previous cut as the recovery point:
//!   restart can never observe a mix of rounds.
//! * **O(shard) root.** The root aggregates per-shard summaries
//!   ([`ShardRound`]) — it never rescans ranks. Rank bookkeeping for
//!   restart is refreshed only when membership changes (first round,
//!   post-restart), not per round.
//!
//! The [`scale_round`] model extends the measurement to 1k–10k simulated
//! nodes (report `c14`): real [`StripedStore`] commits with synthetic
//! per-rank payloads, the paper's exponential MTBF arithmetic on top.

use crate::cluster::Cluster;
use crate::coordinator::{capture_rank_encoded, restart_saved_ranks};
use crate::mpi::{MpiJob, RankRef};
use ckpt_core::tracker::{Tracker, TrackerKind};
use ckpt_par::Pool;
use ckpt_replica::StripedStore;
use ckpt_storage::ImageKey;
use simos::cost::CostModel;
use simos::faultpoint::{Fault, FaultHandle};
use simos::types::{SimError, SimResult};
use std::collections::BTreeMap;
use std::sync::Arc;

/// What one shard reported to the root: everything the root needs, and
/// all it ever looks at — O(shards) per round, never O(ranks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRound {
    pub shard: usize,
    pub ranks: usize,
    pub bytes: u64,
    /// Virtual time of this shard's batched quorum commit.
    pub commit_ns: u64,
    /// Acknowledgement cycles the commit consumed (1 per stripe touched).
    pub ack_cycles: u64,
}

/// Per-round result of a hierarchical coordinated checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierOutcome {
    pub seq: u64,
    pub shards: usize,
    pub ranks: usize,
    pub total_bytes: u64,
    /// Wall (virtual) time of the whole round (all shards + root commit).
    pub round_ns: u64,
    /// Total replica ack cycles across all shard commits — compare with
    /// `ranks` (what the per-image path would pay).
    pub ack_cycles: u64,
    pub incremental: bool,
    /// Per-shard summaries, in shard order.
    pub shard_rounds: Vec<ShardRound>,
}

/// The two-level coordinated-checkpoint driver for one job.
pub struct ShardedCoordinator {
    pub job_key: String,
    shards: usize,
    tracker_kind: TrackerKind,
    trackers: BTreeMap<u32, Tracker>,
    seq: u64,
    /// Newest sequence number the ROOT committed (phase 2). Shard commits
    /// at a higher seq that never reached phase 2 are dead weight in
    /// storage, not recovery points.
    committed_seq: u64,
    saved_ranks: Vec<u32>,
    /// Set when rank membership changed (launch, restart); the next
    /// commit refreshes `saved_ranks` once instead of every round.
    membership_stale: bool,
    faults: FaultHandle,
    pool: Arc<Pool>,
    pub outcomes: Vec<HierOutcome>,
}

impl ShardedCoordinator {
    /// `shards` shard coordinators under one root. `shards` is clamped to
    /// the rank count at round time; 1 shard degenerates to the flat
    /// protocol (plus the root commit point).
    pub fn new(job_key: &str, tracker_kind: TrackerKind, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ShardedCoordinator {
            job_key: job_key.to_string(),
            shards,
            tracker_kind,
            trackers: BTreeMap::new(),
            seq: 0,
            committed_seq: 0,
            saved_ranks: Vec::new(),
            membership_stale: true,
            faults: FaultHandle::disabled(),
            pool: ckpt_par::global().clone(),
            outcomes: Vec::new(),
        }
    }

    pub fn with_faults(mut self, faults: FaultHandle) -> Self {
        self.faults = faults;
        self
    }

    pub fn with_pool(mut self, pool: Arc<Pool>) -> Self {
        self.pool = pool;
        self
    }

    pub fn committed_seq(&self) -> u64 {
        self.committed_seq
    }

    pub fn has_checkpoint(&self) -> bool {
        self.committed_seq > 0 && !self.saved_ranks.is_empty()
    }

    /// Check a protocol faultpoint. Transients are absorbed by one retry
    /// (the next check); anything else aborts the round.
    fn protocol_fault(&self, site: &str, bytes: u64) -> SimResult<()> {
        if self.faults.is_off() {
            return Ok(());
        }
        match self.faults.check(site, bytes) {
            None => Ok(()),
            Some(Fault::Transient) => match self.faults.check(site, bytes) {
                None | Some(Fault::Transient) => Ok(()),
                Some(_) => Err(SimError::Usage(format!("{site}: coordinator lost"))),
            },
            Some(_) => Err(SimError::Usage(format!("{site}: coordinator lost"))),
        }
    }

    /// Take a hierarchical coordinated checkpoint of every rank. Must be
    /// called at a superstep boundary (quiescent channels — which is what
    /// lets shards commit one after another inside a single consistent
    /// cut: no rank runs until the round returns).
    ///
    /// Transactional end to end: any shard failure, or a root failure
    /// between the last shard ack and the global commit, aborts the round
    /// — staged images are deleted best-effort, every frozen rank is
    /// thawed, the sequence number is burned, and
    /// [`ShardedCoordinator::restart`] still points at the previous cut.
    pub fn checkpoint(&mut self, cluster: &mut Cluster, job: &MpiJob) -> SimResult<HierOutcome> {
        let t0 = cluster.now();
        self.seq += 1;
        let seq = self.seq;
        let incremental = self.committed_seq > 0
            && self.committed_seq + 1 == seq
            && self.tracker_kind.supports_incremental();

        let n_ranks = job.ranks.len();
        let shards = self.shards.min(n_ranks.max(1));
        let per_shard = n_ranks.div_ceil(shards);

        let mut shard_rounds: Vec<ShardRound> = Vec::with_capacity(shards);
        let mut staged: Vec<RankRef> = Vec::new();
        let mut max_node_time = t0;

        // Phase 1: every shard runs its local round and commits one batch.
        for (s, shard_ranks) in job.ranks.chunks(per_shard).enumerate() {
            match self.shard_round(cluster, s, shard_ranks, seq, incremental) {
                Ok(round) => {
                    for r in shard_ranks {
                        if let Some(k) = cluster.node(r.node).kernel() {
                            max_node_time = max_node_time.max(k.now());
                        }
                    }
                    staged.extend_from_slice(shard_ranks);
                    shard_rounds.push(round);
                }
                Err(e) => {
                    self.abort_round(cluster, seq, &staged);
                    return Err(e);
                }
            }
        }

        // Phase 2: the root turns the acked shard set into the global cut.
        // A crash HERE is the interesting window — every shard committed,
        // but the cut does not exist yet, so recovery must use seq - 1.
        let total_bytes: u64 = shard_rounds.iter().map(|r| r.bytes).sum();
        if let Err(e) = self.protocol_fault("shard/root/commit", total_bytes) {
            self.abort_round(cluster, seq, &staged);
            return Err(e);
        }
        self.committed_seq = seq;
        if self.membership_stale {
            self.saved_ranks = job.ranks.iter().map(|r| r.rank).collect();
            self.membership_stale = false;
        }

        // Barrier: every node waits for the slowest shard.
        for node in cluster.alive_nodes() {
            let k = cluster.node(node).kernel().expect("alive");
            if k.now() < max_node_time {
                let dt = max_node_time - k.now();
                let _ = k.run_for(dt);
            }
        }
        let outcome = HierOutcome {
            seq,
            shards,
            ranks: n_ranks,
            total_bytes,
            round_ns: max_node_time - t0,
            ack_cycles: shard_rounds.iter().map(|r| r.ack_cycles).sum(),
            incremental,
            shard_rounds,
        };
        cluster.trace().cluster(
            simos::trace::ClusterEvent::CoordRound {
                ranks: n_ranks as u32,
                bytes: total_bytes,
                round_ns: outcome.round_ns,
            },
            max_node_time,
        );
        self.outcomes.push(outcome.clone());
        Ok(outcome)
    }

    /// One shard's local round: capture + encode every rank (left frozen),
    /// one batched quorum commit through the shard leader's remote handle,
    /// then charge, re-arm, thaw. On error every still-frozen rank of this
    /// shard is thawed and the error propagates to the root for abort.
    fn shard_round(
        &mut self,
        cluster: &mut Cluster,
        s: usize,
        shard_ranks: &[RankRef],
        seq: u64,
        incremental: bool,
    ) -> SimResult<ShardRound> {
        let pool = self.pool.clone();
        let mut captures: Vec<(RankRef, Vec<u8>)> = Vec::with_capacity(shard_ranks.len());
        let thaw_all = |cluster: &mut Cluster, captures: &[(RankRef, Vec<u8>)]| {
            for (r, _) in captures {
                if let Some(k) = cluster.node(r.node).kernel() {
                    let _ = k.thaw_process(r.pid);
                }
            }
        };
        for r in shard_ranks {
            let tracker = self
                .trackers
                .entry(r.rank)
                .or_insert_with(|| Tracker::new(self.tracker_kind));
            match capture_rank_encoded(cluster, *r, seq, incremental, tracker, &pool) {
                Ok(bytes) => captures.push((*r, bytes)),
                Err(e) => {
                    thaw_all(cluster, &captures);
                    return Err(e);
                }
            }
        }
        let shard_bytes: u64 = captures.iter().map(|(_, b)| b.len() as u64).sum();

        // The shard coordinator itself can die between capture and commit.
        if let Err(e) = self.protocol_fault(&format!("shard/s{s}/commit"), shard_bytes) {
            thaw_all(cluster, &captures);
            return Err(e);
        }

        // One framed batch through the shard leader's remote handle.
        let leader = captures[0].0;
        let remote = cluster.nodes[leader.node.0 as usize].remote.clone();
        let cost = {
            let k = cluster
                .node(leader.node)
                .kernel()
                .ok_or_else(|| SimError::Usage(format!("{} down at shard commit", leader.node)))?;
            k.cost.clone()
        };
        let keys: Vec<String> = captures
            .iter()
            .map(|(r, _)| ImageKey::new(&self.job_key, r.rank, seq).to_string())
            .collect();
        let objects: Vec<(&str, &[u8])> = keys
            .iter()
            .zip(&captures)
            .map(|(k, (_, b))| (k.as_str(), b.as_slice()))
            .collect();
        let (receipt, store_label) = {
            let mut st = remote.lock();
            let rc = st.store_batch(&objects, &cost).map_err(|e| {
                SimError::Usage(format!("shard {s} batched commit failed: {e}"))
            });
            match rc {
                Ok(rc) => (rc, st.label()),
                Err(e) => {
                    drop(st);
                    thaw_all(cluster, &captures);
                    return Err(e);
                }
            }
        };

        // Commit landed: charge every participant (they all wait for the
        // shard's quorum ack), re-arm dirty tracking, thaw.
        for (r, bytes) in &captures {
            let k = cluster
                .node(r.node)
                .kernel()
                .ok_or_else(|| SimError::Usage(format!("{} down after shard commit", r.node)))?;
            k.charge(k.cost.memcpy(bytes.len() as u64) + receipt.time_ns);
            self.trackers
                .get_mut(&r.rank)
                .expect("tracker created at capture")
                .arm(k, r.pid)?;
            k.thaw_process(r.pid)?;
        }
        if let Some(k) = cluster.node(leader.node).kernel() {
            k.trace.storage(
                simos::trace::StorageOp::Store,
                &store_label,
                receipt.bytes,
                receipt.time_ns,
            );
        }
        Ok(ShardRound {
            shard: s,
            ranks: captures.len(),
            bytes: receipt.bytes,
            commit_ns: receipt.time_ns,
            ack_cycles: receipt.ack_cycles,
        })
    }

    /// Best-effort removal of an aborted round's staged images; restart
    /// correctness relies on `committed_seq`, not on this cleanup.
    fn abort_round(&mut self, cluster: &mut Cluster, seq: u64, staged: &[RankRef]) {
        for r in staged {
            let remote = cluster.nodes[r.node.0 as usize].remote.clone();
            let mut s = remote.lock();
            let _ = s.delete(&ImageKey::new(&self.job_key, r.rank, seq).to_string());
        }
    }

    /// Restart every rank from the newest ROOT-committed cut (shard
    /// commits beyond it are ignored by construction — loads are capped at
    /// `committed_seq`).
    pub fn restart(&mut self, cluster: &mut Cluster, job: &mut MpiJob) -> SimResult<()> {
        if !self.has_checkpoint() {
            return Err(SimError::Usage("no hierarchical checkpoint to restart".into()));
        }
        let saved = self.saved_ranks.clone();
        restart_saved_ranks(
            cluster,
            job,
            &self.job_key,
            &saved,
            self.committed_seq,
            self.tracker_kind,
            &mut self.trackers,
        )?;
        self.membership_stale = true;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The 1k–10k node scale model (report c14).
// ---------------------------------------------------------------------------

/// One configuration of the scale sweep: `nodes` simulated ranks (one per
/// node), partitioned over `shards` shard coordinators, committing into a
/// striped pool of `stripes` quorum sets of `replicas` replicas each.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    pub nodes: usize,
    pub shards: usize,
    pub stripes: usize,
    pub replicas: usize,
    pub write_quorum: usize,
    /// Mean per-rank (incremental) image size; actual sizes are drawn
    /// deterministically in `[mean/2, 3*mean/2)`.
    pub mean_image_bytes: u64,
    /// Per-node MTBF, hours (the paper's Table 2 regime).
    pub mtbf_hours: f64,
    pub seed: u64,
}

/// What one [`scale_round`] measured.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    pub nodes: usize,
    pub shards: usize,
    pub stripes: usize,
    pub dirty_bytes: u64,
    /// Slowest rank's local capture (memcpy of its image).
    pub capture_ns: u64,
    /// Commit phase: busiest stripe's total commit time (stripes are
    /// independent, shards hitting the same stripe serialize on it).
    pub commit_ns: u64,
    /// capture + commit + the root's two-phase network round-trips.
    pub round_ns: u64,
    /// Replica ack cycles the batched path actually paid.
    pub batched_ack_cycles: u64,
    /// What the per-image path would pay: one cycle per rank.
    pub per_image_ack_cycles: u64,
    /// P(at least one node fails during the round) under exponential
    /// failures: `1 - exp(-nodes * round / mtbf)`.
    pub p_disturb: f64,
    /// Expected rework per round: a disturbed sharded round redoes one
    /// shard; a disturbed monolithic round redoes everything.
    pub expected_redo_ns: u64,
    pub expected_redo_mono_ns: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Run one hierarchical round at scale: deterministic synthetic per-rank
/// payloads (no kernels — the control plane is what is being measured),
/// REAL batched quorum commits through a [`StripedStore`], the paper's
/// MTBF arithmetic on the resulting round time.
pub fn scale_round(cfg: &ScaleConfig, cost: &CostModel) -> ScalePoint {
    scale_round_with_pool(cfg, cost, ckpt_par::global().clone())
}

/// [`scale_round`] with an explicit worker pool (width 1 = the exact
/// serial path; results are identical at every width).
pub fn scale_round_with_pool(cfg: &ScaleConfig, cost: &CostModel, pool: Arc<Pool>) -> ScalePoint {
    assert!(cfg.nodes >= 1 && cfg.shards >= 1 && cfg.stripes >= 1);
    // Per-rank payloads: pure, deterministic, fanned out on the pool with
    // ordered merge (width-invariant by construction).
    let seed = cfg.seed;
    let mean = cfg.mean_image_bytes.max(2);
    let payloads: Vec<(String, Vec<u8>)> = pool.par_map_ordered(
        (0..cfg.nodes).collect(),
        || (),
        |_, _, rank| {
            let h = splitmix64(seed ^ (rank as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
            let len = (mean / 2 + h % mean) as usize;
            let key = ImageKey::new("scale", rank as u32, 1).to_string();
            (key, vec![(rank & 0xff) as u8; len])
        },
    );
    let dirty_bytes: u64 = payloads.iter().map(|(_, d)| d.len() as u64).sum();
    let capture_ns = payloads
        .iter()
        .map(|(_, d)| cost.memcpy(d.len() as u64))
        .max()
        .unwrap_or(0);

    // One batched commit per shard; stripes are independent in virtual
    // time, but shards routed to the same stripe serialize on it.
    let mut store = StripedStore::fresh(cfg.stripes, cfg.replicas, cfg.write_quorum)
        .with_pool(pool.clone());
    let per_shard = cfg.nodes.div_ceil(cfg.shards);
    let mut stripe_busy = vec![0u64; cfg.stripes];
    let mut batched_ack_cycles = 0u64;
    for shard in payloads.chunks(per_shard) {
        let objects: Vec<(&str, &[u8])> = shard
            .iter()
            .map(|(k, d)| (k.as_str(), d.as_slice()))
            .collect();
        let receipts = store
            .store_batch_detailed(&objects, cost)
            .expect("healthy pool commits");
        for (j, r) in receipts {
            stripe_busy[j] += r.time_ns;
            batched_ack_cycles += r.ack_cycles;
        }
    }
    let commit_ns = stripe_busy.iter().copied().max().unwrap_or(0);
    // Two-phase root: shard-ack collection + global commit broadcast.
    let round_ns = capture_ns + commit_ns + 2 * cost.net_latency_ns;

    // The paper's exponential-failure arithmetic at aggregate scale.
    let round_s = round_ns as f64 / 1e9;
    let mtbf_s = cfg.mtbf_hours * 3600.0;
    let lambda = cfg.nodes as f64 * round_s / mtbf_s;
    let p_disturb = 1.0 - (-lambda).exp();
    let expected_redo_ns = (p_disturb * round_ns as f64 / cfg.shards as f64) as u64;
    let expected_redo_mono_ns = (p_disturb * round_ns as f64) as u64;

    ScalePoint {
        nodes: cfg.nodes,
        shards: cfg.shards,
        stripes: cfg.stripes,
        dirty_bytes,
        capture_ns,
        commit_ns,
        round_ns,
        batched_ack_cycles,
        per_image_ack_cycles: cfg.nodes as u64,
        p_disturb,
        expected_redo_ns,
        expected_redo_mono_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::FailureConfig;
    use crate::coordinator::Coordinator;
    use crate::node::NodeId;
    use simos::apps::{AppParams, NativeKind};

    fn setup_striped(
        n_nodes: usize,
        n_ranks: u32,
        shards: usize,
    ) -> (Cluster, MpiJob, ShardedCoordinator) {
        let mut c = Cluster::new_striped(
            n_nodes,
            CostModel::circa_2005(),
            FailureConfig::none(),
            4,
            3,
            2,
        );
        let job = MpiJob::launch(
            &mut c,
            "app",
            n_ranks,
            NativeKind::SparseRandom,
            AppParams::small(),
            6,
            32 * 1024,
        )
        .unwrap();
        let coord = ShardedCoordinator::new("job1", TrackerKind::KernelPage, shards);
        (c, job, coord)
    }

    #[test]
    fn hierarchical_round_commits_and_amortizes_acks() {
        // 16 ranks over 2 shards and 4 stripes: a shard round pays at most
        // one ack cycle per stripe it touches (≤ 2 × 4 = 8), while the
        // per-image path would pay 16.
        let (mut c, mut job, mut coord) = setup_striped(4, 16, 2);
        for _ in 0..2 {
            job.superstep(&mut c).unwrap();
        }
        let o = coord.checkpoint(&mut c, &job).unwrap();
        assert_eq!((o.ranks, o.shards), (16, 2));
        assert_eq!(o.shard_rounds.len(), 2);
        assert!(o.total_bytes > 0);
        assert!(
            o.ack_cycles < o.ranks as u64,
            "batched commits must pay fewer ack cycles ({}) than ranks ({})",
            o.ack_cycles,
            o.ranks
        );
        // The job continues, and the next round is incremental.
        job.superstep(&mut c).unwrap();
        let o2 = coord.checkpoint(&mut c, &job).unwrap();
        assert!(o2.incremental);
        assert!(o2.total_bytes < o.total_bytes);
    }

    #[test]
    fn sharded_recovery_matches_failure_free_run() {
        let reference = {
            let (mut c, mut job, _) = setup_striped(3, 6, 2);
            for _ in 0..6 {
                job.superstep(&mut c).unwrap();
            }
            job.rank_states(&mut c).unwrap()
        };
        let (mut c, mut job, mut coord) = setup_striped(3, 6, 2);
        for _ in 0..3 {
            job.superstep(&mut c).unwrap();
        }
        coord.checkpoint(&mut c, &job).unwrap();
        job.superstep(&mut c).unwrap(); // will be lost
        c.inject_failure(NodeId(1));
        let _ = job.superstep(&mut c);
        coord.restart(&mut c, &mut job).unwrap();
        assert_eq!(job.completed_supersteps(), 3);
        for r in &job.ranks {
            assert_ne!(r.node, NodeId(1));
        }
        for _ in 0..3 {
            job.superstep(&mut c).unwrap();
        }
        assert_eq!(job.rank_states(&mut c).unwrap(), reference);
    }

    #[test]
    fn shard_count_does_not_change_recovered_state() {
        // The whole point of width-invariance: 1, 2, or 8 shards commit
        // the SAME cut — recovered application state is byte-identical,
        // and identical to the flat coordinator's.
        let run_sharded = |shards: usize| {
            let (mut c, mut job, mut coord) = setup_striped(3, 6, shards);
            for _ in 0..3 {
                job.superstep(&mut c).unwrap();
            }
            coord.checkpoint(&mut c, &job).unwrap();
            c.inject_failure(NodeId(0));
            let _ = job.superstep(&mut c);
            coord.restart(&mut c, &mut job).unwrap();
            for _ in 0..2 {
                job.superstep(&mut c).unwrap();
            }
            job.rank_states(&mut c).unwrap()
        };
        let flat = {
            let mut c = Cluster::new_striped(
                3,
                CostModel::circa_2005(),
                FailureConfig::none(),
                4,
                3,
                2,
            );
            let mut job = MpiJob::launch(
                &mut c,
                "app",
                6,
                NativeKind::SparseRandom,
                AppParams::small(),
                6,
                32 * 1024,
            )
            .unwrap();
            let mut coord = Coordinator::new("job1", TrackerKind::KernelPage);
            for _ in 0..3 {
                job.superstep(&mut c).unwrap();
            }
            coord.checkpoint(&mut c, &job).unwrap();
            c.inject_failure(NodeId(0));
            let _ = job.superstep(&mut c);
            coord.restart(&mut c, &mut job).unwrap();
            for _ in 0..2 {
                job.superstep(&mut c).unwrap();
            }
            job.rank_states(&mut c).unwrap()
        };
        let one = run_sharded(1);
        assert_eq!(one, run_sharded(2), "2 shards diverged from 1");
        assert_eq!(one, run_sharded(8), "8 shards diverged from 1");
        assert_eq!(one, flat, "sharded cut diverged from the flat protocol");
    }

    #[test]
    fn root_crash_after_all_shard_acks_recovers_at_previous_cut() {
        let (mut c, mut job, mut coord) = setup_striped(3, 6, 2);
        for _ in 0..2 {
            job.superstep(&mut c).unwrap();
        }
        coord.checkpoint(&mut c, &job).unwrap(); // seq 1, the safe cut
        job.superstep(&mut c).unwrap();
        // Arm the root commit point: every shard acks seq 2, then the
        // root dies before phase 2.
        coord = ShardedCoordinator {
            faults: FaultHandle::armed("shard/root/commit@1", Fault::FailStop),
            ..coord
        };
        assert!(coord.checkpoint(&mut c, &job).is_err());
        assert_eq!(coord.committed_seq(), 1, "seq 2 must not be a recovery point");
        // Recovery lands on superstep 2 (the seq-1 cut), never a mix.
        coord.restart(&mut c, &mut job).unwrap();
        assert_eq!(job.completed_supersteps(), 2);
        job.superstep(&mut c).unwrap();
        assert_eq!(job.completed_supersteps(), 3);
    }

    #[test]
    fn shard_crash_mid_round_aborts_cleanly() {
        let (mut c, mut job, mut coord) = setup_striped(3, 6, 3);
        for _ in 0..2 {
            job.superstep(&mut c).unwrap();
        }
        coord.checkpoint(&mut c, &job).unwrap();
        job.superstep(&mut c).unwrap();
        coord = ShardedCoordinator {
            faults: FaultHandle::armed("shard/s1/commit@1", Fault::FailStop),
            ..coord
        };
        assert!(coord.checkpoint(&mut c, &job).is_err());
        assert_eq!(coord.committed_seq(), 1);
        // Every rank was thawed by the abort: the job keeps running.
        job.superstep(&mut c).unwrap();
        assert_eq!(job.completed_supersteps(), 4);
        // And a clean retry commits (seq 2 was burned, seq 3 lands).
        coord.faults = FaultHandle::disabled();
        let o = coord.checkpoint(&mut c, &job).unwrap();
        assert_eq!(o.seq, 3);
        assert_eq!(coord.committed_seq(), 3);
    }

    #[test]
    fn scale_round_is_width_and_determinism_stable() {
        let cfg = ScaleConfig {
            nodes: 1000,
            shards: 8,
            stripes: 4,
            replicas: 3,
            write_quorum: 2,
            mean_image_bytes: 1024,
            mtbf_hours: 10.0,
            seed: 42,
        };
        let cost = CostModel::circa_2005();
        let p1 = scale_round_with_pool(&cfg, &cost, Arc::new(Pool::new(1)));
        let p4 = scale_round_with_pool(&cfg, &cost, Arc::new(Pool::new(4)));
        let p8 = scale_round_with_pool(&cfg, &cost, Arc::new(Pool::new(8)));
        assert_eq!(p1, p4, "pool width 4 changed the scale model");
        assert_eq!(p1, p8, "pool width 8 changed the scale model");
        assert!(p1.batched_ack_cycles < p1.per_image_ack_cycles / 10);
        assert!(p1.p_disturb > 0.0 && p1.p_disturb < 1.0);
    }

    #[test]
    fn more_stripes_shrink_the_commit_phase() {
        let cost = CostModel::circa_2005();
        let base = ScaleConfig {
            nodes: 2000,
            shards: 8,
            stripes: 1,
            replicas: 3,
            write_quorum: 2,
            mean_image_bytes: 1024,
            mtbf_hours: 10.0,
            seed: 7,
        };
        let narrow = scale_round(&base, &cost);
        let wide = scale_round(&ScaleConfig { stripes: 8, ..base }, &cost);
        assert!(
            wide.commit_ns * 2 < narrow.commit_ns,
            "8 stripes must overlap commits: {} vs {}",
            wide.commit_ns,
            narrow.commit_ns
        );
    }
}
