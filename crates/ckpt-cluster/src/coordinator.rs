//! Coordinated checkpointing and restart of parallel jobs — the LAM/MPI /
//! CoCheck scheme of the survey.
//!
//! The protocol exploits the bulk-synchronous structure of [`crate::mpi`]:
//! at a superstep boundary no messages are in flight, so a globally
//! consistent cut is simply "freeze every rank, checkpoint every rank,
//! thaw". Images go to **remote** stable storage (each node pays its own
//! network cost), which is what makes recovery from a node loss possible
//! at all — the paper's criticism of local-only systems.
//!
//! As the paper notes of LAM/MPI, the scheme is transparent to the
//! *application* but not to the *message-passing layer*: it is the job
//! driver (this module) that knows where the boundaries are.

use crate::cluster::Cluster;
use crate::mpi::{MpiJob, RankRef};
use ckpt_core::capture::{capture_image, restore_image, CaptureOptions, RestoreOptions, RestorePid};
use ckpt_core::tracker::{Tracker, TrackerKind};
use ckpt_storage::{load_chain_at, store_image_bytes, ImageKey};
use simos::types::{SimError, SimResult};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-round result of a coordinated checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordOutcome {
    pub seq: u64,
    pub ranks: usize,
    pub total_bytes: u64,
    /// Wall (virtual) time of the slowest rank's checkpoint — the job
    /// resumes only when all ranks are done (it is a barrier).
    pub round_ns: u64,
    pub incremental: bool,
}

/// Freeze rank `r` and capture + encode its image (pool-chunked CRC),
/// returning the encoded bytes. On success the rank is left **frozen** —
/// the caller commits the bytes (inline, or as part of a shard's batched
/// quorum commit) and thaws it; on error the rank is thawed best-effort
/// here and nothing is recorded.
pub(crate) fn capture_rank_encoded(
    cluster: &mut Cluster,
    r: RankRef,
    seq: u64,
    incremental: bool,
    tracker: &mut Tracker,
    pool: &Arc<ckpt_par::Pool>,
) -> SimResult<Vec<u8>> {
    let k = cluster
        .node(r.node)
        .kernel()
        .ok_or_else(|| SimError::Usage(format!("{} down during checkpoint", r.node)))?;
    k.freeze_process(r.pid)?;
    let pool_stats0 = pool.stats();
    let result = (|| -> SimResult<Vec<u8>> {
        let opts = if incremental && tracker.is_armed() {
            let c = tracker.collect(k, r.pid)?;
            let mut o = CaptureOptions::incremental("coordinated", seq, seq - 1, c.pages);
            o.node = r.node.0;
            o.encode_pool = Some(pool.clone());
            o
        } else {
            let mut o = CaptureOptions::full("coordinated", seq);
            o.node = r.node.0;
            o.encode_pool = Some(pool.clone());
            o
        };
        let mut img = capture_image(k, r.pid, &opts)?;
        // Key images by *rank*, which is stable across migrations.
        img.header.pid = r.rank;
        // Serialize (pool-chunked CRC) while frozen; the commit happens
        // outside, in whatever order the protocol requires.
        Ok(ckpt_image::encode_with_pool(&img, pool))
    })();
    let pool_delta = pool.stats().since(pool_stats0);
    k.trace
        .par_encode(pool_delta.tasks, pool_delta.steals, pool_delta.merge_stalls);
    result.inspect_err(|_| {
        let _ = k.thaw_process(r.pid);
    })
}

/// Restart every saved rank from the cut committed at `committed_seq`,
/// placing ranks round-robin on the currently alive nodes. Shared by the
/// flat [`Coordinator`] and the sharded one — the restore path is
/// identical; only how the cut was *committed* differs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn restart_saved_ranks(
    cluster: &mut Cluster,
    job: &mut MpiJob,
    job_key: &str,
    saved_ranks: &[u32],
    committed_seq: u64,
    tracker_kind: TrackerKind,
    trackers: &mut BTreeMap<u32, Tracker>,
) -> SimResult<()> {
    // Kill any surviving ranks (a consistent cut requires all ranks to
    // roll back together).
    for r in &job.ranks {
        if let Some(k) = cluster.node(r.node).kernel() {
            if k.process(r.pid).is_some() {
                k.post_signal(r.pid, simos::signal::Sig::SIGKILL);
                let _ = k.run_for(1_000_000);
                let _ = k.reap(r.pid);
            }
        }
    }
    let alive = cluster.alive_nodes();
    if alive.is_empty() {
        return Err(SimError::Usage("no alive nodes to restart on".into()));
    }
    let mut new_ranks = Vec::new();
    for (i, rank) in saved_ranks.iter().copied().enumerate() {
        let node = alive[i % alive.len()];
        let remote = cluster.nodes[node.0 as usize].remote.clone();
        let k = cluster.node(node).kernel().expect("alive");
        let (full, load_ns, load_label) = {
            let s = remote.lock();
            let (img, t) = load_chain_at(&**s, job_key, rank, committed_seq, &k.cost)
                .map_err(|e| SimError::Usage(format!("coordinated load failed: {e}")))?;
            (img, t, s.label())
        };
        k.charge(load_ns);
        k.trace.storage(
            simos::trace::StorageOp::Load,
            &load_label,
            full.memory_bytes(),
            load_ns,
        );
        let pid = restore_image(k, &full, &RestoreOptions::fresh_running(RestorePid::Fresh))?;
        // Tracking state does not survive migration; re-arm fresh.
        if let Some(t) = trackers.get_mut(&rank) {
            *t = Tracker::new(tracker_kind);
        }
        new_ranks.push(RankRef { rank, node, pid });
    }
    // Trackers were re-created above (unarmed), so the next checkpoint
    // round is automatically full; the sequence number keeps increasing
    // so chain lineage in storage stays valid.
    job.ranks = new_ranks;
    job.resync_supersteps(cluster)?;
    Ok(())
}

/// The coordinated-checkpoint driver for one job.
pub struct Coordinator {
    pub job_key: String,
    tracker_kind: TrackerKind,
    trackers: BTreeMap<u32, Tracker>,
    seq: u64,
    /// Newest sequence number at which **every** rank's image landed. A
    /// round that fails part-way burns its seq; restart loads chains
    /// capped at this value so it can never mix rounds.
    committed_seq: u64,
    /// Ranks recorded at the last completed checkpoint (for restart).
    saved_ranks: Vec<u32>,
    saved_pids: BTreeMap<u32, u32>,
    pub outcomes: Vec<CoordOutcome>,
    /// Pool for each rank's page encode (pipelined with the gather) and
    /// chunked image CRC. The per-rank *commit* sequence — store on the
    /// shared remote, virtual-time charge, tracker re-arm, thaw — stays
    /// strictly serialized in rank order: the remote server and the fault
    /// plan are shared state whose operation order is observable, and
    /// same-node ranks observe each other's charges through `taken_at_ns`.
    pool: Arc<ckpt_par::Pool>,
}

impl Coordinator {
    pub fn new(job_key: &str, tracker_kind: TrackerKind) -> Self {
        Self::with_pool(job_key, tracker_kind, ckpt_par::global().clone())
    }

    /// [`Coordinator::new`] with an explicit encode pool (width 1 = the
    /// exact serial path).
    pub fn with_pool(job_key: &str, tracker_kind: TrackerKind, pool: Arc<ckpt_par::Pool>) -> Self {
        Coordinator {
            job_key: job_key.to_string(),
            tracker_kind,
            trackers: BTreeMap::new(),
            seq: 0,
            committed_seq: 0,
            saved_ranks: Vec::new(),
            saved_pids: BTreeMap::new(),
            outcomes: Vec::new(),
            pool,
        }
    }

    /// Take a coordinated checkpoint of every rank. Must be called at a
    /// superstep boundary (quiescent channels).
    ///
    /// The round is transactional: the previous checkpoint stays the
    /// recovery point until **every** rank's image has landed. A failure
    /// part-way (a node lost mid-round, a store fault) returns a typed
    /// error, best-effort deletes the partial images, burns the round's
    /// sequence number, and leaves [`Coordinator::restart`] pointing at
    /// the last fully committed cut — never at a mix of rounds.
    pub fn checkpoint(&mut self, cluster: &mut Cluster, job: &MpiJob) -> SimResult<CoordOutcome> {
        let t0 = cluster.now();
        self.seq += 1;
        let seq = self.seq;
        // An incremental round is only valid when its parent (seq - 1) is
        // the committed cut; after an aborted round the seq gap forces the
        // next round full, which also re-baselines every tracker.
        let incremental = self.committed_seq > 0
            && self.committed_seq + 1 == seq
            && self.tracker_kind.supports_incremental();
        let mut total_bytes = 0u64;
        let mut max_node_time = t0;
        let mut staged: Vec<RankRef> = Vec::new();
        for r in &job.ranks {
            match self.checkpoint_rank(cluster, *r, seq, incremental) {
                Ok(bytes) => {
                    total_bytes += bytes;
                    if let Some(k) = cluster.node(r.node).kernel() {
                        max_node_time = max_node_time.max(k.now());
                    }
                    staged.push(*r);
                }
                Err(e) => {
                    self.abort_round(cluster, seq, &staged);
                    return Err(e);
                }
            }
        }
        // Commit point: all ranks landed.
        self.committed_seq = seq;
        self.saved_ranks = staged.iter().map(|r| r.rank).collect();
        self.saved_pids = staged.iter().map(|r| (r.rank, r.pid.0)).collect();
        // Barrier: every node waits for the slowest checkpoint.
        let target = max_node_time;
        for node in cluster.alive_nodes() {
            let k = cluster.node(node).kernel().expect("alive");
            if k.now() < target {
                let dt = target - k.now();
                let _ = k.run_for(dt);
            }
        }
        let outcome = CoordOutcome {
            seq,
            ranks: job.ranks.len(),
            total_bytes,
            round_ns: target - t0,
            incremental,
        };
        cluster.trace().cluster(
            simos::trace::ClusterEvent::CoordRound {
                ranks: job.ranks.len() as u32,
                bytes: total_bytes,
                round_ns: outcome.round_ns,
            },
            target,
        );
        self.outcomes.push(outcome.clone());
        Ok(outcome)
    }

    /// Freeze, capture, store, re-arm, and thaw one rank. On any error the
    /// rank is thawed best-effort and nothing is recorded.
    fn checkpoint_rank(
        &mut self,
        cluster: &mut Cluster,
        r: RankRef,
        seq: u64,
        incremental: bool,
    ) -> SimResult<u64> {
        let pool = self.pool.clone();
        let tracker = self
            .trackers
            .entry(r.rank)
            .or_insert_with(|| Tracker::new(self.tracker_kind));
        let remote = cluster.nodes[r.node.0 as usize].remote.clone();
        let job_key = self.job_key.clone();
        // Capture + encode leaves the rank frozen; commit the pre-encoded
        // bytes in rank order on the shared remote, then thaw.
        let bytes = capture_rank_encoded(cluster, r, seq, incremental, tracker, &pool)?;
        let k = cluster
            .node(r.node)
            .kernel()
            .ok_or_else(|| SimError::Usage(format!("{} down during checkpoint", r.node)))?;
        let result = (|| -> SimResult<u64> {
            let (receipt, store_label) = {
                let mut s = remote.lock();
                let rc = store_image_bytes(s.as_mut(), &job_key, r.rank, seq, &bytes, &k.cost)
                    .map_err(|e| SimError::Usage(format!("coordinated store failed: {e}")))?;
                (rc, s.label())
            };
            k.trace.storage(
                simos::trace::StorageOp::Store,
                &store_label,
                receipt.bytes,
                receipt.time_ns,
            );
            let t = k.cost.memcpy(receipt.bytes) + receipt.time_ns;
            k.charge(t);
            tracker.arm(k, r.pid)?;
            Ok(receipt.bytes)
        })();
        match result {
            Ok(bytes) => {
                k.thaw_process(r.pid)?;
                Ok(bytes)
            }
            Err(e) => {
                let _ = k.thaw_process(r.pid);
                Err(e)
            }
        }
    }

    /// Best-effort removal of an aborted round's partial images. A remote
    /// that is unreachable (its node just died) simply keeps the orphan;
    /// correctness does not depend on this cleanup because restart loads
    /// are capped at [`Self::committed_seq`].
    fn abort_round(&mut self, cluster: &mut Cluster, seq: u64, staged: &[RankRef]) {
        for r in staged {
            let remote = cluster.nodes[r.node.0 as usize].remote.clone();
            let mut s = remote.lock();
            let _ = s.delete(&ImageKey::new(&self.job_key, r.rank, seq).to_string());
        }
    }

    /// Whether a completed checkpoint exists to recover from.
    pub fn has_checkpoint(&self) -> bool {
        self.committed_seq > 0 && !self.saved_ranks.is_empty()
    }

    /// Restart every rank of the job from the newest coordinated
    /// checkpoint, placing ranks round-robin on the currently alive nodes
    /// (ranks from lost nodes migrate automatically). Rebuilds the job's
    /// rank table and resynchronizes its superstep counter.
    pub fn restart(&mut self, cluster: &mut Cluster, job: &mut MpiJob) -> SimResult<()> {
        if !self.has_checkpoint() {
            return Err(SimError::Usage("no coordinated checkpoint to restart".into()));
        }
        let saved = self.saved_ranks.clone();
        restart_saved_ranks(
            cluster,
            job,
            &self.job_key,
            &saved,
            self.committed_seq,
            self.tracker_kind,
            &mut self.trackers,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::FailureConfig;
    use crate::node::NodeId;
    use simos::apps::{AppParams, NativeKind};
    use simos::cost::CostModel;

    fn setup(n_nodes: usize, n_ranks: u32) -> (Cluster, MpiJob, Coordinator) {
        let mut c = Cluster::new(n_nodes, CostModel::circa_2005(), FailureConfig::none());
        let job = MpiJob::launch(
            &mut c,
            "app",
            n_ranks,
            NativeKind::SparseRandom,
            AppParams::small(),
            6,
            32 * 1024,
        )
        .unwrap();
        let coord = Coordinator::new("job1", TrackerKind::KernelPage);
        (c, job, coord)
    }

    #[test]
    fn coordinated_checkpoint_then_clean_continue() {
        let (mut c, mut job, mut coord) = setup(3, 6);
        for _ in 0..2 {
            job.superstep(&mut c).unwrap();
        }
        let o = coord.checkpoint(&mut c, &job).unwrap();
        assert_eq!(o.ranks, 6);
        assert!(!o.incremental);
        assert!(o.total_bytes > 0);
        // Job continues normally.
        job.superstep(&mut c).unwrap();
        assert_eq!(job.completed_supersteps(), 3);
        // Second checkpoint is incremental and smaller.
        let o2 = coord.checkpoint(&mut c, &job).unwrap();
        assert!(o2.incremental);
        assert!(o2.total_bytes < o.total_bytes);
    }

    #[test]
    fn recovery_after_node_loss_migrates_and_preserves_progress() {
        let (mut c, mut job, mut coord) = setup(3, 6);
        for _ in 0..3 {
            job.superstep(&mut c).unwrap();
        }
        coord.checkpoint(&mut c, &job).unwrap();
        // More progress that will be lost.
        job.superstep(&mut c).unwrap();
        assert_eq!(job.completed_supersteps(), 4);
        // Node 1 dies and stays dead.
        c.inject_failure(NodeId(1));
        assert!(matches!(
            job.superstep(&mut c),
            Err(crate::mpi::JobInterrupt::NodeLost(_))
        ));
        coord.restart(&mut c, &mut job).unwrap();
        // Rolled back to superstep 3 (the checkpoint), ranks only on alive
        // nodes.
        assert_eq!(job.completed_supersteps(), 3);
        for r in &job.ranks {
            assert_ne!(r.node, NodeId(1));
        }
        // The job completes from there.
        for _ in 0..3 {
            job.superstep(&mut c).unwrap();
        }
        assert_eq!(job.completed_supersteps(), 6);
    }

    #[test]
    fn recovery_after_node_loss_with_live_migration_rebalance() {
        // Node-loss recovery followed by the live-migration replacement
        // route: once the lost node is repaired, a rank is moved back to
        // it by iterative pre-copy — no rollback, no job restart — and
        // the job still completes with the rank table consistent.
        let (mut c, mut job, mut coord) = setup(3, 6);
        for _ in 0..3 {
            job.superstep(&mut c).unwrap();
        }
        coord.checkpoint(&mut c, &job).unwrap();
        c.inject_failure(NodeId(1));
        assert!(matches!(
            job.superstep(&mut c),
            Err(crate::mpi::JobInterrupt::NodeLost(_))
        ));
        coord.restart(&mut c, &mut job).unwrap();
        assert_eq!(job.completed_supersteps(), 3);
        // The failed node comes back (FailureConfig::none has zero repair
        // delay, so the next advance repairs it) — empty.
        c.advance(1_000_000);
        assert!(c.node(NodeId(1)).alive());
        assert!(job.ranks.iter().all(|r| r.node != NodeId(1)));
        // Repopulate it by live-migrating one rank back.
        let victim = job
            .ranks
            .iter()
            .position(|r| r.node != NodeId(1))
            .expect("some rank lives elsewhere");
        let moved_rank = job.ranks[victim].rank;
        let rep = crate::livemig::rebalance_rank_live(
            &mut c,
            &mut job,
            victim,
            NodeId(1),
            &crate::livemig::LiveMigConfig::default(),
        )
        .unwrap();
        assert_eq!(job.ranks[victim].node, NodeId(1));
        assert_eq!(job.ranks[victim].pid, rep.new_pid);
        assert_eq!(job.ranks[victim].rank, moved_rank);
        // Live migration lost nothing: still at superstep 3, and the job
        // runs to completion with the migrated rank participating.
        assert_eq!(job.completed_supersteps(), 3);
        for _ in 0..3 {
            job.superstep(&mut c).unwrap();
        }
        assert_eq!(job.completed_supersteps(), 6);
    }

    #[test]
    fn recovered_run_matches_failure_free_run() {
        // The gold standard: states after recovery + N supersteps must
        // equal an uninterrupted run's states at the same superstep.
        let reference = {
            let (mut c, mut job, _): (Cluster, MpiJob, Coordinator) = setup(2, 4);
            for _ in 0..6 {
                job.superstep(&mut c).unwrap();
            }
            job.rank_states(&mut c).unwrap()
        };
        let (mut c, mut job, mut coord) = setup(2, 4);
        for _ in 0..3 {
            job.superstep(&mut c).unwrap();
        }
        coord.checkpoint(&mut c, &job).unwrap();
        job.superstep(&mut c).unwrap(); // superstep 4, will be lost
        c.inject_failure(NodeId(0));
        let _ = job.superstep(&mut c);
        coord.restart(&mut c, &mut job).unwrap();
        assert_eq!(job.completed_supersteps(), 3);
        for _ in 0..3 {
            job.superstep(&mut c).unwrap();
        }
        let recovered = job.rank_states(&mut c).unwrap();
        assert_eq!(recovered, reference, "recovered run diverged");
    }

    #[test]
    fn restart_without_checkpoint_refuses() {
        let (mut c, mut job, mut coord) = setup(2, 2);
        assert!(coord.restart(&mut c, &mut job).is_err());
    }
}
