//! Gang scheduling via checkpoint-based safe preemption.
//!
//! The introduction lists gang scheduling among checkpointing's uses, and
//! Section 1 calls out "*safe* pre-emption by another process" as an
//! autonomic capability. This module time-slices whole jobs over the same
//! nodes: the outgoing gang is checkpointed (so its state is durable — a
//! crash during the other gang's slot cannot lose it) and frozen; the
//! incoming gang thaws and runs.

use crate::cluster::Cluster;
use crate::coordinator::Coordinator;
use crate::mpi::MpiJob;
use ckpt_core::tracker::TrackerKind;
use simos::types::{SimError, SimResult};

/// A gang: one parallel job plus its coordinated-checkpoint driver.
pub struct Gang {
    pub job: MpiJob,
    pub coord: Coordinator,
    pub supersteps_run: u64,
}

impl Gang {
    pub fn new(job: MpiJob, tracker: TrackerKind) -> Self {
        let key = format!("gang-{}", job.name);
        Gang {
            job,
            coord: Coordinator::new(&key, tracker),
            supersteps_run: 0,
        }
    }
}

/// The gang scheduler: round-robins jobs over the cluster, `quantum`
/// supersteps at a time, with a safe-preemption checkpoint at every
/// switch.
pub struct GangScheduler {
    pub gangs: Vec<Gang>,
    pub quantum_supersteps: u64,
    pub switches: u64,
}

impl GangScheduler {
    pub fn new(quantum_supersteps: u64) -> Self {
        GangScheduler {
            gangs: Vec::new(),
            quantum_supersteps,
            switches: 0,
        }
    }

    pub fn add(&mut self, gang: Gang) {
        self.gangs.push(gang);
    }

    fn freeze_gang(cluster: &mut Cluster, gang: &Gang) -> SimResult<()> {
        for r in &gang.job.ranks {
            let k = cluster
                .node(r.node)
                .kernel()
                .ok_or_else(|| SimError::Usage(format!("{} down", r.node)))?;
            k.freeze_process(r.pid)?;
        }
        Ok(())
    }

    fn thaw_gang(cluster: &mut Cluster, gang: &Gang) -> SimResult<()> {
        for r in &gang.job.ranks {
            let k = cluster
                .node(r.node)
                .kernel()
                .ok_or_else(|| SimError::Usage(format!("{} down", r.node)))?;
            k.thaw_process(r.pid)?;
        }
        Ok(())
    }

    /// Run all gangs round-robin until each has completed
    /// `target_supersteps`. Returns per-gang completion order.
    pub fn run(
        &mut self,
        cluster: &mut Cluster,
        target_supersteps: u64,
    ) -> SimResult<Vec<usize>> {
        // Everyone starts frozen except the first runnable gang.
        for gang in &self.gangs {
            Self::freeze_gang(cluster, gang)?;
        }
        let mut completion_order = Vec::new();
        let mut done = vec![false; self.gangs.len()];
        while done.iter().any(|d| !d) {
            #[allow(clippy::needless_range_loop)] // i indexes two parallel vecs
            for i in 0..self.gangs.len() {
                if done[i] {
                    continue;
                }
                Self::thaw_gang(cluster, &self.gangs[i])?;
                let gang = &mut self.gangs[i];
                for _ in 0..self.quantum_supersteps {
                    if gang.job.completed_supersteps() >= target_supersteps {
                        break;
                    }
                    gang.job
                        .superstep(cluster)
                        .map_err(|e| SimError::Usage(format!("gang interrupted: {e:?}")))?;
                    gang.supersteps_run += 1;
                }
                if gang.job.completed_supersteps() >= target_supersteps {
                    done[i] = true;
                    completion_order.push(i);
                    // Leave it stopped; it is finished.
                    Self::freeze_gang(cluster, &self.gangs[i])?;
                } else {
                    // Safe preemption: checkpoint before yielding the
                    // nodes.
                    let gang = &mut self.gangs[i];
                    gang.coord.checkpoint(cluster, &gang.job)?;
                    self.switches += 1;
                    Self::freeze_gang(cluster, &self.gangs[i])?;
                }
            }
        }
        Ok(completion_order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::FailureConfig;
    use simos::apps::{AppParams, NativeKind};
    use simos::cost::CostModel;

    fn launch_gang(cluster: &mut Cluster, name: &str, seed: u64) -> Gang {
        let mut params = AppParams::small();
        params.seed = seed;
        let job = MpiJob::launch(
            cluster,
            name,
            2,
            NativeKind::SparseRandom,
            params,
            4,
            16 * 1024,
        )
        .unwrap();
        Gang::new(job, TrackerKind::KernelPage)
    }

    #[test]
    fn two_gangs_share_nodes_and_both_finish() {
        let mut c = Cluster::new(2, CostModel::circa_2005(), FailureConfig::none());
        let a = launch_gang(&mut c, "A", 1);
        let b = launch_gang(&mut c, "B", 2);
        let mut sched = GangScheduler::new(3);
        sched.add(a);
        sched.add(b);
        let order = sched.run(&mut c, 9).unwrap();
        assert_eq!(order.len(), 2);
        assert!(sched.switches >= 4, "expected several safe preemptions");
        for gang in &sched.gangs {
            assert_eq!(gang.job.completed_supersteps(), 9);
        }
    }

    #[test]
    fn preemption_checkpoints_make_state_durable() {
        let mut c = Cluster::new(2, CostModel::circa_2005(), FailureConfig::none());
        let a = launch_gang(&mut c, "A", 1);
        let b = launch_gang(&mut c, "B", 2);
        let mut sched = GangScheduler::new(2);
        sched.add(a);
        sched.add(b);
        sched.run(&mut c, 4).unwrap();
        // Every preemption produced a coordinated checkpoint.
        let total_ckpts: usize = sched.gangs.iter().map(|g| g.coord.outcomes.len()).sum();
        assert!(total_ckpts as u64 >= sched.switches);
    }

    #[test]
    fn gangs_do_not_interfere_while_preempted() {
        // A frozen gang's ranks make no progress during the other's slot.
        let mut c = Cluster::new(2, CostModel::circa_2005(), FailureConfig::none());
        let a = launch_gang(&mut c, "A", 1);
        let b = launch_gang(&mut c, "B", 2);
        let mut sched = GangScheduler::new(1);
        sched.add(a);
        sched.add(b);
        // Run one quantum manually: freeze both, thaw A, superstep A.
        for g in &sched.gangs {
            GangScheduler::freeze_gang(&mut c, g).unwrap();
        }
        GangScheduler::thaw_gang(&mut c, &sched.gangs[0]).unwrap();
        let b_work_before: Vec<u64> = sched.gangs[1]
            .job
            .ranks
            .iter()
            .map(|r| {
                c.node(r.node)
                    .kernel()
                    .unwrap()
                    .process(r.pid)
                    .unwrap()
                    .work_done
            })
            .collect();
        sched.gangs[0].job.superstep(&mut c).unwrap();
        let b_work_after: Vec<u64> = sched.gangs[1]
            .job
            .ranks
            .iter()
            .map(|r| {
                c.node(r.node)
                    .kernel()
                    .unwrap()
                    .process(r.pid)
                    .unwrap()
                    .work_done
            })
            .collect();
        assert_eq!(b_work_before, b_work_after, "frozen gang must not run");
    }
}
