//! A cluster node: one simulated kernel plus its storage media.

use ckpt_core::{shared_storage, SharedStorage};
use ckpt_storage::{LocalDisk, RamStore, RemoteServer, RemoteStore, SwapStore};
use simos::cost::CostModel;
use simos::Kernel;
use std::sync::Arc;

/// Node identifier within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Why a node is currently down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DownReason {
    /// Fail-stop fault.
    Failed,
    /// Administrative power-down.
    PoweredDown,
}

/// One machine in the cluster.
pub struct Node {
    pub id: NodeId,
    /// The node's kernel; `None` while the node is down (fail-stop: the
    /// machine and everything volatile on it is gone).
    kernel: Option<Kernel>,
    pub local_disk: SharedStorage,
    pub swap: SharedStorage,
    pub ram_store: SharedStorage,
    pub remote: SharedStorage,
    pub down: Option<DownReason>,
    /// Fail-stop events experienced.
    pub failures: u64,
    cost: CostModel,
}

impl Node {
    pub fn new(id: NodeId, cost: CostModel, remote_server: Arc<RemoteServer>) -> Self {
        Self::with_remote(id, cost, shared_storage(RemoteStore::new(remote_server)))
    }

    /// Build a node whose remote stable-storage handle is supplied by the
    /// caller — e.g. a per-node [`ckpt_replica::ReplicatedStore`] client
    /// over a cluster-shared replica set.
    pub fn with_remote(id: NodeId, cost: CostModel, remote: SharedStorage) -> Self {
        Node {
            id,
            kernel: Some(Kernel::new(cost.clone())),
            local_disk: shared_storage(LocalDisk::new(1 << 34)),
            swap: shared_storage(SwapStore::new(1 << 33)),
            ram_store: shared_storage(RamStore::new(1 << 32)),
            remote,
            down: None,
            failures: 0,
            cost,
        }
    }

    pub fn alive(&self) -> bool {
        self.down.is_none()
    }

    /// Access the kernel; `None` while down.
    pub fn kernel(&mut self) -> Option<&mut Kernel> {
        if self.down.is_some() {
            return None;
        }
        self.kernel.as_mut()
    }

    pub fn kernel_ref(&self) -> Option<&Kernel> {
        if self.down.is_some() {
            return None;
        }
        self.kernel.as_ref()
    }

    /// Fail-stop: the kernel (and every process on it) is gone; volatile
    /// storage is lost; non-volatile local media become unreachable.
    pub fn fail(&mut self) {
        if self.down.is_some() {
            return;
        }
        self.kernel = None;
        self.down = Some(DownReason::Failed);
        self.failures += 1;
        self.local_disk.lock().on_node_failure();
        self.swap.lock().on_node_failure();
        self.ram_store.lock().on_node_failure();
        self.remote.lock().on_node_failure();
    }

    /// Planned power-down (hibernation flow): kernel stops, RAM is lost,
    /// disks keep their data and stay readable after repair.
    pub fn power_down(&mut self) {
        if self.down.is_some() {
            return;
        }
        self.kernel = None;
        self.down = Some(DownReason::PoweredDown);
        self.local_disk.lock().on_power_down();
        self.swap.lock().on_power_down();
        self.ram_store.lock().on_power_down();
    }

    /// Bring the node back with a fresh kernel advanced to the cluster's
    /// current virtual time.
    pub fn repair(&mut self, now_ns: u64) {
        if self.down.is_none() {
            return;
        }
        self.down = None;
        self.local_disk.lock().on_node_repair();
        self.swap.lock().on_node_repair();
        self.ram_store.lock().on_node_repair();
        self.remote.lock().on_node_repair();
        let mut k = Kernel::new(self.cost.clone());
        let _ = k.run_for(now_ns);
        self.kernel = Some(k);
    }

    /// Current virtual time of this node's kernel (0 when down).
    pub fn now(&self) -> u64 {
        self.kernel_ref().map(|k| k.now()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::apps::{AppParams, NativeKind};

    fn node() -> Node {
        Node::new(
            NodeId(0),
            CostModel::circa_2005(),
            RemoteServer::new(1 << 30),
        )
    }

    #[test]
    fn failure_kills_kernel_and_volatile_storage() {
        let mut n = node();
        let pid = n
            .kernel()
            .unwrap()
            .spawn_native(NativeKind::SparseRandom, AppParams::small())
            .unwrap();
        n.ram_store
            .lock()
            .store("k", b"v", &CostModel::circa_2005())
            .unwrap();
        n.local_disk
            .lock()
            .store("k", b"v", &CostModel::circa_2005())
            .unwrap();
        n.fail();
        assert!(n.kernel().is_none());
        assert!(!n.alive());
        assert!(!n.local_disk.lock().available());
        n.repair(1_000_000);
        assert!(n.alive());
        // Processes are gone; disk data survived; RAM data did not.
        assert!(n.kernel().unwrap().process(pid).is_none());
        assert_eq!(
            n.local_disk
                .lock()
                .load("k", &CostModel::circa_2005())
                .unwrap()
                .0,
            b"v"
        );
        assert!(n
            .ram_store
            .lock()
            .load("k", &CostModel::circa_2005())
            .is_err());
        // Kernel clock resynchronized.
        assert!(n.now() >= 1_000_000);
    }

    #[test]
    fn power_down_preserves_disks_loses_ram() {
        let mut n = node();
        let c = CostModel::circa_2005();
        n.swap.lock().store("img", b"hib", &c).unwrap();
        n.ram_store.lock().store("img", b"hib", &c).unwrap();
        n.power_down();
        assert!(!n.alive());
        n.repair(0);
        assert_eq!(n.swap.lock().load("img", &c).unwrap().0, b"hib");
        assert!(n.ram_store.lock().load("img", &c).is_err());
        // Power-down is not a failure.
        assert_eq!(n.failures, 0);
    }

    #[test]
    fn double_fail_is_idempotent() {
        let mut n = node();
        n.fail();
        n.fail();
        assert_eq!(n.failures, 1);
    }
}
