//! Mid-checkpoint node loss: a coordinated round that dies part-way must
//! leave the *previous* round as the recovery point — a typed error, never
//! a restart that silently mixes two rounds' images.
//!
//! The failure is injected through the same `simos::faultpoint` engine the
//! crash matrix uses: a node's remote-storage handle is wrapped in
//! [`FaultInjectStore`] so the fault strikes at a byte-accurate point in
//! the round (after some ranks' images have already landed).

use ckpt_cluster::{Cluster, Coordinator, FailureConfig, MpiJob, NodeId};
use ckpt_core::tracker::TrackerKind;
use ckpt_storage::{FaultInjectStore, LocalDisk};
use simos::apps::{AppParams, NativeKind};
use simos::cost::CostModel;
use simos::faultpoint::{Fault, FaultHandle};
use simos::types::Pid;

fn setup(n_nodes: usize, n_ranks: u32) -> (Cluster, MpiJob, Coordinator) {
    let mut c = Cluster::new(n_nodes, CostModel::circa_2005(), FailureConfig::none());
    let job = MpiJob::launch(
        &mut c,
        "app",
        n_ranks,
        NativeKind::SparseRandom,
        AppParams::small(),
        6,
        32 * 1024,
    )
    .unwrap();
    let coord = Coordinator::new("mixjob", TrackerKind::KernelPage);
    (c, job, coord)
}

/// Wrap `node`'s remote-storage handle in a fault-injecting decorator
/// driven by `faults`. The underlying medium (and the shared remote
/// server behind it) is untouched.
fn arm_remote(c: &mut Cluster, node: usize, faults: &FaultHandle) {
    let remote = c.nodes[node].remote.clone();
    let mut guard = remote.lock();
    let inner = std::mem::replace(&mut *guard, Box::new(LocalDisk::new(1)));
    *guard = Box::new(FaultInjectStore::new(inner, faults.clone()));
}

/// Every rank's in-guest superstep counter (the durable truth a restart
/// must make consistent).
fn guest_supersteps(c: &mut Cluster, job: &MpiJob) -> Vec<u64> {
    job.ranks
        .iter()
        .map(|r| {
            let k = c.node(r.node).kernel().expect("rank node alive");
            let mut buf = [0u8; 8];
            k.process(r.pid).unwrap().mem.peek(ckpt_cluster::mpi::SLOT_SUPERSTEP, &mut buf);
            u64::from_le_bytes(buf)
        })
        .collect()
}

#[test]
fn mid_round_store_fault_keeps_the_committed_cut() {
    let (mut c, mut job, mut coord) = setup(3, 6);
    for _ in 0..3 {
        job.superstep(&mut c).unwrap();
    }
    coord.checkpoint(&mut c, &job).unwrap();
    // Progress past the committed cut — this is what the failed round
    // would have captured, and what the restart must roll back.
    job.superstep(&mut c).unwrap();
    assert_eq!(job.completed_supersteps(), 4);

    // Node 1 hosts ranks 1 and 4; its first store of round 2 fails.
    let faults = FaultHandle::armed("storage/remote/store@1", Fault::Transient);
    arm_remote(&mut c, 1, &faults);
    let err = coord.checkpoint(&mut c, &job).unwrap_err();
    assert!(
        err.to_string().contains("store failed"),
        "mid-round fault must surface typed: {err}"
    );
    assert!(faults.fired().is_some(), "the armed site actually fired");

    // Rank 0's round-2 image landed before the fault; the abort must have
    // removed it so the failed round leaves no debris.
    assert!(
        !c.remote_server.keys().iter().any(|k| k.ends_with("seq00000002")),
        "aborted round left partial images: {:?}",
        c.remote_server.keys()
    );

    // The committed round is still the recovery point.
    assert!(coord.has_checkpoint());
    coord.restart(&mut c, &mut job).unwrap();
    assert_eq!(job.completed_supersteps(), 3, "restart rolls back to round 1's cut");
    let counters = guest_supersteps(&mut c, &job);
    assert!(
        counters.iter().all(|&s| s == 3),
        "ranks restored from different rounds: {counters:?}"
    );

    // The job is healthy: more progress, and the next round commits (full,
    // because the aborted round burned its sequence number).
    job.superstep(&mut c).unwrap();
    let o = coord.checkpoint(&mut c, &job).unwrap();
    assert!(!o.incremental, "round after an abort must re-baseline as full");
    let o2 = {
        job.superstep(&mut c).unwrap();
        coord.checkpoint(&mut c, &job).unwrap()
    };
    assert!(o2.incremental, "chain resumes incrementally after the full round");
}

#[test]
fn node_loss_mid_round_never_mixes_rounds() {
    let (mut c, mut job, mut coord) = setup(3, 6);
    for _ in 0..2 {
        job.superstep(&mut c).unwrap();
    }
    coord.checkpoint(&mut c, &job).unwrap();
    job.superstep(&mut c).unwrap();

    // The node dies between rank 0's store and rank 1's freeze: the round
    // must abort with a typed error, not half-commit.
    c.inject_failure(NodeId(1));
    let err = coord.checkpoint(&mut c, &job).unwrap_err();
    assert!(
        err.to_string().contains("down during checkpoint"),
        "node loss mid-round must surface typed: {err}"
    );
    assert!(coord.has_checkpoint(), "previous round survives the aborted one");

    // Recover onto the survivors.
    coord.restart(&mut c, &mut job).unwrap();
    assert!(
        job.ranks.iter().all(|r| r.node != NodeId(1)),
        "ranks must migrate off the dead node"
    );
    assert_eq!(job.completed_supersteps(), 2);
    let counters = guest_supersteps(&mut c, &job);
    assert!(counters.iter().all(|&s| s == 2), "inconsistent cut: {counters:?}");

    // Forward progress on two nodes, including a committing checkpoint.
    job.superstep(&mut c).unwrap();
    assert_eq!(job.completed_supersteps(), 3);
    coord.checkpoint(&mut c, &job).unwrap();
}

#[test]
fn undeletable_partial_image_is_ignored_by_the_capped_restart() {
    // The nastiest case: a rank's round-2 image lands, then its *own* node
    // crashes later in the same round, so the abort cannot delete the
    // partial image — it survives on the remote server as an orphan. The
    // restart must still restore every rank from round 1.
    let (mut c, mut job, mut coord) = setup(3, 6);
    for _ in 0..3 {
        job.superstep(&mut c).unwrap();
    }
    coord.checkpoint(&mut c, &job).unwrap();
    job.superstep(&mut c).unwrap();

    // Node 1 stores rank 1's image (its first store of the round), then
    // fail-stops on its second (rank 4): the handle latches node-crashed,
    // so the abort's delete of rank 1's image is refused.
    let faults = FaultHandle::armed("storage/remote/store@2", Fault::FailStop);
    arm_remote(&mut c, 1, &faults);
    let err = coord.checkpoint(&mut c, &job).unwrap_err();
    assert!(err.to_string().contains("store failed"), "typed abort: {err}");
    faults.set_crashed();
    c.inject_failure(NodeId(1));

    // The orphaned round-2 image for rank 1 really is still out there...
    assert!(
        c.remote_server
            .keys()
            .iter()
            .any(|k| k.contains("pid1/") && k.ends_with("seq00000002")),
        "scenario needs the undeletable orphan: {:?}",
        c.remote_server.keys()
    );

    // ...and the restart ignores it: loads are capped at the committed
    // round, so rank 1 comes back from round 1 like everyone else.
    coord.restart(&mut c, &mut job).unwrap();
    assert_eq!(job.completed_supersteps(), 3);
    let counters = guest_supersteps(&mut c, &job);
    assert!(
        counters.iter().all(|&s| s == 3),
        "orphan image leaked into the restart: {counters:?}"
    );

    // All restored pids are live processes on alive nodes.
    for r in &job.ranks {
        assert_ne!(r.node, NodeId(1));
        let pid: Pid = r.pid;
        assert!(c.node(r.node).kernel().unwrap().process(pid).is_some());
    }
}
