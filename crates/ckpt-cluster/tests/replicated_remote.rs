//! Coordinated checkpointing onto the quorum-replicated remote backend.
//!
//! `Cluster::new_replicated` gives every node its own `ReplicatedStore`
//! client onto one shared replica set, so these tests exercise the full
//! survivability story the paper argues for: a round keeps committing
//! while replicas die (as long as the write quorum holds), losing the
//! quorum is a *typed* abort that preserves the previous cut, and a
//! cluster-node loss mid-round restarts from the committed round on the
//! survivors — with the images coming back from whichever replicas are
//! still reachable.

use ckpt_cluster::{Cluster, Coordinator, FailureConfig, MpiJob, NodeId};
use ckpt_core::tracker::TrackerKind;
use simos::apps::{AppParams, NativeKind};
use simos::cost::CostModel;

fn setup_replicated(
    n_nodes: usize,
    n_ranks: u32,
    n_replicas: usize,
    w: usize,
) -> (Cluster, MpiJob, Coordinator) {
    let mut c = Cluster::new_replicated(
        n_nodes,
        CostModel::circa_2005(),
        FailureConfig::none(),
        n_replicas,
        w,
    );
    let job = MpiJob::launch(
        &mut c,
        "app",
        n_ranks,
        NativeKind::SparseRandom,
        AppParams::small(),
        6,
        32 * 1024,
    )
    .unwrap();
    let coord = Coordinator::new("repljob", TrackerKind::KernelPage);
    (c, job, coord)
}

/// Every rank's in-guest superstep counter (the durable truth a restart
/// must make consistent).
fn guest_supersteps(c: &mut Cluster, job: &MpiJob) -> Vec<u64> {
    job.ranks
        .iter()
        .map(|r| {
            let k = c.node(r.node).kernel().expect("rank node alive");
            let mut buf = [0u8; 8];
            k.process(r.pid)
                .unwrap()
                .mem
                .peek(ckpt_cluster::mpi::SLOT_SUPERSTEP, &mut buf);
            u64::from_le_bytes(buf)
        })
        .collect()
}

#[test]
fn rounds_commit_through_replica_loss_and_survive_node_loss() {
    let (mut c, mut job, mut coord) = setup_replicated(3, 6, 3, 2);
    for _ in 0..2 {
        job.superstep(&mut c).unwrap();
    }
    let o = coord.checkpoint(&mut c, &job).unwrap();
    assert_eq!(o.ranks, 6);
    assert!(o.total_bytes > 0);

    // Every replica holds every rank's image after a healthy round.
    let set = c.replica_set().expect("replicated cluster").clone();
    for node in set.nodes() {
        assert_eq!(node.keys().len(), 6, "replica {} incomplete", node.index());
    }

    // A replica dies. w = 2 of N = 3 still holds: the next round commits.
    set.node(1).fail();
    job.superstep(&mut c).unwrap();
    let o2 = coord.checkpoint(&mut c, &job).unwrap();
    assert!(o2.incremental);

    // Now a *cluster* node dies with the replica still down. Restart must
    // assemble round 2 from the two surviving replicas, on the survivors.
    c.inject_failure(NodeId(1));
    assert!(matches!(
        job.superstep(&mut c),
        Err(ckpt_cluster::mpi::JobInterrupt::NodeLost(_))
    ));
    coord.restart(&mut c, &mut job).unwrap();
    assert_eq!(job.completed_supersteps(), 3, "restart lands on round 2's cut");
    let counters = guest_supersteps(&mut c, &job);
    assert!(counters.iter().all(|&s| s == 3), "inconsistent cut: {counters:?}");
    for r in &job.ranks {
        assert_ne!(r.node, NodeId(1), "ranks must migrate off the dead node");
    }

    // Read-repair during the restart loads must not have resurrected the
    // dead replica — it is still down.
    assert!(set.node(1).is_down());

    // The job completes from the restored cut.
    for _ in 0..3 {
        job.superstep(&mut c).unwrap();
    }
    assert_eq!(job.completed_supersteps(), 6);
}

#[test]
fn losing_the_quorum_is_a_typed_abort_and_repair_recovers_the_cut() {
    let (mut c, mut job, mut coord) = setup_replicated(2, 4, 3, 2);
    for _ in 0..3 {
        job.superstep(&mut c).unwrap();
    }
    coord.checkpoint(&mut c, &job).unwrap();
    job.superstep(&mut c).unwrap();

    // Two of three replicas gone: writes cannot reach w = 2.
    let set = c.replica_set().unwrap().clone();
    set.node(0).fail();
    set.node(2).fail();
    let err = coord.checkpoint(&mut c, &job).unwrap_err();
    assert!(
        err.to_string().contains("quorum lost"),
        "quorum loss must surface typed, got: {err}"
    );
    assert!(coord.has_checkpoint(), "the committed round survives the abort");

    // Reads are refused too — a restart now would have to guess, so it
    // must not answer.
    let load_err = coord.restart(&mut c, &mut job).unwrap_err();
    assert!(
        load_err.to_string().contains("quorum lost"),
        "quorum-lost restart must refuse typed, got: {load_err}"
    );

    // Repair the replicas: the committed cut is intact and restartable.
    set.node(0).repair();
    set.node(2).repair();
    coord.restart(&mut c, &mut job).unwrap();
    assert_eq!(job.completed_supersteps(), 3);
    let counters = guest_supersteps(&mut c, &job);
    assert!(counters.iter().all(|&s| s == 3), "inconsistent cut: {counters:?}");

    // And the post-abort round re-baselines full, then commits.
    job.superstep(&mut c).unwrap();
    let o = coord.checkpoint(&mut c, &job).unwrap();
    assert!(!o.incremental, "round after an abort must re-baseline as full");
}

#[test]
fn node_loss_mid_round_on_replicated_remote_keeps_the_cut() {
    let (mut c, mut job, mut coord) = setup_replicated(3, 6, 5, 3);
    for _ in 0..2 {
        job.superstep(&mut c).unwrap();
    }
    coord.checkpoint(&mut c, &job).unwrap();
    job.superstep(&mut c).unwrap();

    // A cluster node dies mid-round: typed abort, no mixed rounds.
    c.inject_failure(NodeId(1));
    let err = coord.checkpoint(&mut c, &job).unwrap_err();
    assert!(
        err.to_string().contains("down during checkpoint"),
        "node loss mid-round must surface typed: {err}"
    );
    assert!(coord.has_checkpoint());

    coord.restart(&mut c, &mut job).unwrap();
    assert_eq!(job.completed_supersteps(), 2);
    let counters = guest_supersteps(&mut c, &job);
    assert!(counters.iter().all(|&s| s == 2), "inconsistent cut: {counters:?}");
    assert!(job.ranks.iter().all(|r| r.node != NodeId(1)));

    // Forward progress and a committing round on the survivors.
    job.superstep(&mut c).unwrap();
    coord.checkpoint(&mut c, &job).unwrap();
}
