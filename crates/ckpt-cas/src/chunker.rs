//! Content-defined chunking with a gear rolling hash.
//!
//! Fixed-size chunking defeats dedup the moment one byte is inserted —
//! every later chunk boundary shifts. Content-defined boundaries are
//! chosen where a rolling hash of the recent window hits a mask, so they
//! re-synchronize after an edit and identical content re-chunks
//! identically wherever it appears. Boundary selection is strictly
//! sequential (it is a scan, and determinism demands one answer); only
//! the per-chunk digests fan out on the [`ckpt_par`] pool, merged in
//! chunk order, so the result is byte-for-byte identical at any pool
//! width.

use crate::digest::fnv1a64;
use ckpt_par::Pool;

/// Chunking parameters: minimum chunk size, average-size exponent
/// (boundary probability `2^-avg_bits` per byte once past `min`), and a
/// hard maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkParams {
    /// No boundary before this many bytes (also the floor for the final
    /// chunk, which may be shorter only at end of input).
    pub min: usize,
    /// Expected chunk size is roughly `min + 2^avg_bits` bytes.
    pub avg_bits: u32,
    /// Forced boundary at this many bytes.
    pub max: usize,
}

impl ChunkParams {
    /// Defaults tuned for page-image payloads: 1 KiB min / ~5 KiB avg /
    /// 16 KiB max, a few chunks per 4 KiB-page run.
    pub const DEFAULT: ChunkParams = ChunkParams { min: 1024, avg_bits: 12, max: 16384 };

    /// Coarse parameters for fault-matrix runs: fewer chunks per object
    /// keeps the number of per-chunk crash sites (and matrix cells)
    /// bounded.
    pub const COARSE: ChunkParams = ChunkParams { min: 8192, avg_bits: 14, max: 65536 };
}

impl Default for ChunkParams {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// One chunk of an object: `data[offset..offset + len]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSpan {
    pub offset: usize,
    pub len: usize,
}

const fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The gear table: one pseudo-random 64-bit word per byte value, fixed at
/// compile time so chunk boundaries are stable across runs and builds.
const GEAR: [u64; 256] = {
    let mut t = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = splitmix64(i as u64 ^ 0x434B_5054_4341_5344);
        i += 1;
    }
    t
};

/// Split `data` into content-defined spans. Concatenated spans cover
/// `data` exactly, in order. Empty input yields no spans.
pub fn split(data: &[u8], p: &ChunkParams) -> Vec<ChunkSpan> {
    assert!(p.min >= 1 && p.max >= p.min, "degenerate chunk params");
    let mask: u64 = (1u64 << p.avg_bits) - 1;
    let mut spans = Vec::new();
    let mut start = 0usize;
    let mut h: u64 = 0;
    let mut i = 0usize;
    while i < data.len() {
        h = (h << 1).wrapping_add(GEAR[data[i] as usize]);
        i += 1;
        let len = i - start;
        if (len >= p.min && (h & mask) == mask) || len >= p.max {
            spans.push(ChunkSpan { offset: start, len });
            start = i;
            h = 0;
        }
    }
    if start < data.len() {
        spans.push(ChunkSpan { offset: start, len: data.len() - start });
    }
    spans
}

/// Split and digest: boundaries found serially, per-chunk FNV digests
/// computed on `pool` with ordered merge. Returns `(span, digest)` in
/// chunk order — identical output at any pool width.
pub fn split_and_digest(data: &[u8], p: &ChunkParams, pool: &Pool) -> Vec<(ChunkSpan, u64)> {
    let spans = split(data, p);
    let digests = pool.par_map_ordered(spans.clone(), || (), |_, _, span: ChunkSpan| {
        fnv1a64(&data[span.offset..span.offset + span.len])
    });
    spans.into_iter().zip(digests).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_bytes(n: usize, seed: u64) -> Vec<u8> {
        let mut v = Vec::with_capacity(n);
        let mut x = seed;
        while v.len() < n {
            x = splitmix64(x);
            v.extend_from_slice(&x.to_le_bytes());
        }
        v.truncate(n);
        v
    }

    #[test]
    fn spans_cover_input_exactly() {
        let data = pseudo_bytes(100_000, 7);
        let p = ChunkParams::DEFAULT;
        let spans = split(&data, &p);
        let mut at = 0;
        for s in &spans {
            assert_eq!(s.offset, at);
            assert!(s.len <= p.max);
            at += s.len;
        }
        assert_eq!(at, data.len());
        // Every span except possibly the last respects the minimum.
        for s in &spans[..spans.len() - 1] {
            assert!(s.len >= p.min);
        }
    }

    #[test]
    fn boundaries_resync_after_insertion() {
        let base = pseudo_bytes(80_000, 11);
        let mut edited = base.clone();
        edited.splice(1000..1000, [0xAAu8; 17]);
        let p = ChunkParams::DEFAULT;
        let a: std::collections::HashSet<u64> = split(&base, &p)
            .iter()
            .map(|s| fnv1a64(&base[s.offset..s.offset + s.len]))
            .collect();
        let b: Vec<u64> = split(&edited, &p)
            .iter()
            .map(|s| fnv1a64(&edited[s.offset..s.offset + s.len]))
            .collect();
        let shared = b.iter().filter(|d| a.contains(d)).count();
        assert!(
            shared * 2 > b.len(),
            "most chunks must survive a 17-byte insertion ({shared}/{})",
            b.len()
        );
    }

    #[test]
    fn digest_fanout_is_width_invariant() {
        let data = pseudo_bytes(60_000, 3);
        let p = ChunkParams::DEFAULT;
        let serial = split_and_digest(&data, &p, &Pool::new(1));
        for w in [2, 4, 8] {
            assert_eq!(serial, split_and_digest(&data, &p, &Pool::new(w)));
        }
    }

    #[test]
    fn empty_input_has_no_spans() {
        assert!(split(&[], &ChunkParams::DEFAULT).is_empty());
    }
}
