//! The chunk-manifest object format.
//!
//! A deduplicated image is stored under its image key as a *manifest*:
//! the recipe that rebuilds the object's bytes from content-addressed
//! chunks (optionally via an XOR+RLE delta against a base recipe). A
//! manifest is distinguishable from a raw image by its leading magic, and
//! carries its own FNV checksum so a torn manifest write decodes to a
//! typed failure, never to wrong bytes.

use crate::digest::fnv1a64;

/// Leading magic of every manifest object: `"CKPTCAS1"`. Distinct from
/// `ckpt_image::IMAGE_MAGIC`, so the two object kinds can share a
/// namespace.
pub const MANIFEST_MAGIC: u64 = 0x434B_5054_4341_5331;

/// One chunk of a recipe: which content digest, how many bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRef {
    pub digest: u64,
    pub len: u32,
}

/// The chunked form of the delta base. Kept inline in the child manifest
/// so resolving a delta image never needs the base *manifest* object —
/// pruning may have deleted it; the base's chunks are protected by this
/// manifest's own references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaseRecipe {
    pub len: u64,
    pub digest: u64,
    pub chunks: Vec<ChunkRef>,
}

/// How the payload chunks relate to the object bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Encoding {
    /// Chunks concatenate directly into the object.
    Raw,
    /// Chunks concatenate into an XOR+RLE delta stream; apply it to the
    /// base recipe's bytes to get the object.
    Delta(BaseRecipe),
}

/// A stored chunk manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Final object length in bytes.
    pub object_len: u64,
    /// FNV-1a of the final object bytes — verified after resolution.
    pub object_digest: u64,
    pub encoding: Encoding,
    /// Chunks of the payload (object bytes for `Raw`, delta stream for
    /// `Delta`), in order.
    pub chunks: Vec<ChunkRef>,
}

impl Manifest {
    /// Every chunk this manifest keeps alive: payload chunks plus, for a
    /// delta, the base's chunks.
    pub fn referenced_chunks(&self) -> Vec<ChunkRef> {
        let mut refs = self.chunks.clone();
        if let Encoding::Delta(base) = &self.encoding {
            refs.extend(base.chunks.iter().copied());
        }
        refs
    }
}

/// Why a manifest failed to decode. Torn writes land in `Truncated` or
/// `Checksum`; both are detection, not corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManifestError {
    Truncated,
    BadVersion(u32),
    Checksum,
}

/// Whether `bytes` carries the manifest magic (cheap dispatch before a
/// full decode).
pub fn is_manifest(bytes: &[u8]) -> bool {
    bytes.len() >= 8 && bytes[..8] == MANIFEST_MAGIC.to_be_bytes()
}

const VERSION: u32 = 1;

struct Writer(Vec<u8>);

impl Writer {
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn chunks(&mut self, refs: &[ChunkRef]) {
        self.u32(refs.len() as u32);
        for r in refs {
            self.u64(r.digest);
            self.u32(r.len);
        }
    }
}

struct Reader<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn u32(&mut self) -> Result<u32, ManifestError> {
        let end = self.at.checked_add(4).ok_or(ManifestError::Truncated)?;
        let b = self.data.get(self.at..end).ok_or(ManifestError::Truncated)?;
        self.at = end;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ManifestError> {
        let end = self.at.checked_add(8).ok_or(ManifestError::Truncated)?;
        let b = self.data.get(self.at..end).ok_or(ManifestError::Truncated)?;
        self.at = end;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }
    fn chunks(&mut self) -> Result<Vec<ChunkRef>, ManifestError> {
        let n = self.u32()? as usize;
        // A chunk ref is 12 encoded bytes; reject counts the input cannot
        // possibly hold before allocating.
        if n > self.data.len() / 12 + 1 {
            return Err(ManifestError::Truncated);
        }
        let mut refs = Vec::with_capacity(n);
        for _ in 0..n {
            let digest = self.u64()?;
            let len = self.u32()?;
            refs.push(ChunkRef { digest, len });
        }
        Ok(refs)
    }
}

/// Serialize a manifest (magic + version + body + FNV trailer).
pub fn encode(m: &Manifest) -> Vec<u8> {
    let mut w = Writer(Vec::with_capacity(64 + 12 * m.chunks.len()));
    w.0.extend_from_slice(&MANIFEST_MAGIC.to_be_bytes());
    w.u32(VERSION);
    w.u64(m.object_len);
    w.u64(m.object_digest);
    match &m.encoding {
        Encoding::Raw => w.u32(0),
        Encoding::Delta(base) => {
            w.u32(1);
            w.u64(base.len);
            w.u64(base.digest);
            w.chunks(&base.chunks);
        }
    }
    w.chunks(&m.chunks);
    let sum = fnv1a64(&w.0);
    w.u64(sum);
    w.0
}

/// Decode a manifest. The caller should gate on [`is_manifest`] first;
/// bytes without the magic are `Truncated`.
pub fn decode(bytes: &[u8]) -> Result<Manifest, ManifestError> {
    if !is_manifest(bytes) || bytes.len() < 16 {
        return Err(ManifestError::Truncated);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let sum = u64::from_le_bytes(trailer.try_into().unwrap());
    if fnv1a64(body) != sum {
        return Err(ManifestError::Checksum);
    }
    let mut r = Reader { data: body, at: 8 };
    let version = r.u32()?;
    if version != VERSION {
        return Err(ManifestError::BadVersion(version));
    }
    let object_len = r.u64()?;
    let object_digest = r.u64()?;
    let encoding = match r.u32()? {
        0 => Encoding::Raw,
        1 => {
            let len = r.u64()?;
            let digest = r.u64()?;
            let chunks = r.chunks()?;
            Encoding::Delta(BaseRecipe { len, digest, chunks })
        }
        _ => return Err(ManifestError::Truncated),
    };
    let chunks = r.chunks()?;
    if r.at != body.len() {
        return Err(ManifestError::Truncated);
    }
    Ok(Manifest { object_len, object_digest, encoding, chunks })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(delta: bool) -> Manifest {
        Manifest {
            object_len: 12345,
            object_digest: 0xfeed_beef,
            encoding: if delta {
                Encoding::Delta(BaseRecipe {
                    len: 999,
                    digest: 0x1234,
                    chunks: vec![ChunkRef { digest: 7, len: 500 }, ChunkRef { digest: 8, len: 499 }],
                })
            } else {
                Encoding::Raw
            },
            chunks: vec![ChunkRef { digest: 1, len: 6000 }, ChunkRef { digest: 2, len: 6345 }],
        }
    }

    #[test]
    fn round_trips_raw_and_delta() {
        for delta in [false, true] {
            let m = sample(delta);
            let bytes = encode(&m);
            assert!(is_manifest(&bytes));
            assert_eq!(decode(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = encode(&sample(true));
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let mut bytes = encode(&sample(false));
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn raw_image_bytes_are_not_a_manifest() {
        assert!(!is_manifest(&ckpt_storage::StorageError::Unavailable.to_string().into_bytes()));
        assert!(!is_manifest(b"short"));
    }

    #[test]
    fn delta_manifest_references_base_chunks() {
        let m = sample(true);
        assert_eq!(m.referenced_chunks().len(), 4);
        assert_eq!(sample(false).referenced_chunks().len(), 2);
    }
}
