//! XOR-delta + run-length encoding between successive versions of an
//! object.
//!
//! Successive checkpoint images of one process lineage differ in few
//! pages; XOR against the previous version turns the unchanged majority
//! into zero bytes, and the RLE pass collapses the zero runs. The stream
//! is self-delimiting: a `u64` output length, then `(zero_run, literal_run,
//! literal bytes)` records with varint run lengths. Decoding XORs the
//! reconstructed stream back over the base (positions past the base's end
//! XOR against zero, so the delta also extends the object).

/// LEB128-style varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn get_varint(data: &[u8], at: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*at)?;
        *at += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Don't break a literal run for a zero run shorter than this — the two
/// varint headers would cost more than the zeros they elide.
const MIN_ZERO_RUN: usize = 4;

/// Encode `cur` as an XOR+RLE delta against `base`.
pub fn xor_rle_encode(base: &[u8], cur: &[u8]) -> Vec<u8> {
    let x = |i: usize| cur[i] ^ base.get(i).copied().unwrap_or(0);
    let n = cur.len();
    let mut out = Vec::with_capacity(64);
    put_varint(&mut out, n as u64);
    let mut i = 0usize;
    while i < n {
        let zero_start = i;
        while i < n && x(i) == 0 {
            i += 1;
        }
        let zeros = i - zero_start;
        // Literal run: until end, or until a zero run long enough to be
        // worth a record boundary.
        let lit_start = i;
        while i < n {
            if x(i) == 0 {
                let mut j = i;
                while j < n && x(j) == 0 {
                    j += 1;
                }
                if j - i >= MIN_ZERO_RUN || j == n {
                    break;
                }
                i = j;
            } else {
                i += 1;
            }
        }
        put_varint(&mut out, zeros as u64);
        put_varint(&mut out, (i - lit_start) as u64);
        for k in lit_start..i {
            out.push(x(k));
        }
    }
    out
}

/// Decode a delta produced by [`xor_rle_encode`] back into the full
/// object. Returns `None` on any malformed input (truncation, length
/// overrun) — the caller maps that to a typed corruption error.
pub fn xor_rle_decode(base: &[u8], delta: &[u8]) -> Option<Vec<u8>> {
    let mut at = 0usize;
    let n = usize::try_from(get_varint(delta, &mut at)?).ok()?;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let zeros = usize::try_from(get_varint(delta, &mut at)?).ok()?;
        let lits = usize::try_from(get_varint(delta, &mut at)?).ok()?;
        if out.len() + zeros + lits > n || at + lits > delta.len() {
            return None;
        }
        for _ in 0..zeros {
            let i = out.len();
            out.push(base.get(i).copied().unwrap_or(0));
        }
        for k in 0..lits {
            let i = out.len();
            out.push(delta[at + k] ^ base.get(i).copied().unwrap_or(0));
        }
        at += lits;
    }
    if at != delta.len() {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, seed: u64) -> Vec<u8> {
        let mut v = Vec::with_capacity(n);
        let mut x = seed;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(seed | 1);
            v.push((x >> 33) as u8);
        }
        v
    }

    #[test]
    fn round_trips_arbitrary_pairs() {
        for (bn, cn, s) in [(0, 0, 1), (100, 100, 2), (100, 50, 3), (50, 100, 4), (0, 77, 5)] {
            let base = pseudo(bn, s);
            let cur = pseudo(cn, s + 100);
            let d = xor_rle_encode(&base, &cur);
            assert_eq!(xor_rle_decode(&base, &d).unwrap(), cur);
        }
    }

    #[test]
    fn near_identical_versions_compress_hard() {
        let base = pseudo(64 * 1024, 9);
        let mut cur = base.clone();
        cur[100] ^= 1;
        cur[40_000] ^= 0xff;
        let d = xor_rle_encode(&base, &cur);
        assert_eq!(xor_rle_decode(&base, &d).unwrap(), cur);
        assert!(d.len() < 64, "two changed bytes must encode tiny, got {}", d.len());
    }

    #[test]
    fn truncated_delta_is_detected() {
        let base = pseudo(1000, 2);
        let cur = pseudo(1000, 3);
        let d = xor_rle_encode(&base, &cur);
        for cut in [0, 1, d.len() / 2, d.len() - 1] {
            assert!(xor_rle_decode(&base, &d[..cut]).is_none(), "cut at {cut}");
        }
        let mut extended = d.clone();
        extended.push(0);
        assert!(xor_rle_decode(&base, &extended).is_none(), "trailing garbage");
    }
}
