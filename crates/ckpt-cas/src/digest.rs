//! Content digests: FNV-1a 64-bit, the same hash family the replica layer
//! uses for torn-frame detection. Not cryptographic — the threat model is
//! accidental corruption and dedup identity inside one trusted store, and
//! a 64-bit digest over at most a few thousand live chunks keeps the
//! accidental-collision probability negligible.

/// FNV-1a over `data` (64-bit).
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
