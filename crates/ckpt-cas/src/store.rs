//! [`DedupStore`]: a content-addressed deduplicating decorator over any
//! [`StableStorage`].
//!
//! Image objects (keys that parse as [`ImageKey`]) are split into
//! content-defined chunks; each chunk is interned in the backing store
//! under its digest key (`cas/<digest:016x>`) with an in-memory refcount,
//! and the image key itself holds a [manifest](crate::manifest) — the
//! recipe that rebuilds the bytes. Successive images of one `(job, pid)`
//! lineage are first XOR+RLE-delta'd against the last raw-stored version
//! (depth-1 deltas only: a delta's base recipe is embedded in its own
//! manifest, so resolution never chases a chain and pruning the base
//! object cannot orphan it). Non-image keys pass through untouched.
//!
//! Observable semantics:
//! * `load` returns the original bytes exactly, or a **typed** error —
//!   [`StorageError::CorruptManifest`] for a torn/corrupt manifest,
//!   [`StorageError::MissingChunk`] when the backing store lost a chunk.
//!   Never silently wrong bytes: the manifest carries the object digest
//!   and every chunk is verified against its address on resolution.
//! * [`StoreReceipt::bytes`] is the **novel** physical bytes the commit
//!   shipped (new chunks + manifest) — on a replicated backing store,
//!   commit bytes scale with novelty, not image size.
//! * Chunk GC is refcount-exact: a chunk is deleted from the backing
//!   store only when no live manifest references it.
//! * Output is deterministic and byte-identical at any pool width: chunk
//!   boundaries are found serially, only digests fan out (ordered merge),
//!   and all backing-store I/O is sequential.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ckpt_par::Pool;
use ckpt_storage::key::ObjectKey;
use ckpt_storage::{ReplicaManifest, StableStorage, StorageClass, StorageError, StoreReceipt};
use simos::cost::CostModel;
use simos::faultpoint::{Fault, FaultHandle};

use crate::chunker::{split_and_digest, ChunkParams};
use crate::delta::{xor_rle_decode, xor_rle_encode};
use crate::digest::fnv1a64;
use crate::manifest::{self, BaseRecipe, ChunkRef, Encoding, Manifest};

#[derive(Default)]
struct Counters {
    logical_bytes: AtomicU64,
    physical_bytes: AtomicU64,
    novel_chunks: AtomicU64,
    dup_chunks: AtomicU64,
    dup_bytes: AtomicU64,
    raw_objects: AtomicU64,
    delta_objects: AtomicU64,
    passthrough_objects: AtomicU64,
    gc_chunks: AtomicU64,
    gc_bytes: AtomicU64,
    live_chunks: AtomicU64,
    live_chunk_bytes: AtomicU64,
}

/// A point-in-time snapshot of a [`DedupStore`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CasStats {
    /// Bytes handed to `store` for image objects (pre-dedup).
    pub logical_bytes: u64,
    /// Novel bytes actually shipped to the backing store (chunks +
    /// manifests).
    pub physical_bytes: u64,
    pub novel_chunks: u64,
    /// Chunk references satisfied by an already-interned chunk.
    pub dup_chunks: u64,
    pub dup_bytes: u64,
    /// Image objects stored without a delta base.
    pub raw_objects: u64,
    /// Image objects stored as a delta against their lineage base.
    pub delta_objects: u64,
    /// Non-image objects forwarded untouched.
    pub passthrough_objects: u64,
    pub gc_chunks: u64,
    pub gc_bytes: u64,
    pub live_chunks: u64,
    pub live_chunk_bytes: u64,
}

impl CasStats {
    /// Logical over physical bytes — the dedup ratio. 1.0 when nothing
    /// was stored.
    pub fn dedup_ratio(&self) -> f64 {
        if self.physical_bytes == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / self.physical_bytes as f64
        }
    }
}

/// A cloneable handle onto a [`DedupStore`]'s counters; stays readable
/// after the store itself moves behind a storage lock.
#[derive(Clone, Default)]
pub struct CasStatsHandle(Arc<Counters>);

impl CasStatsHandle {
    pub fn snapshot(&self) -> CasStats {
        let c = &self.0;
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        CasStats {
            logical_bytes: g(&c.logical_bytes),
            physical_bytes: g(&c.physical_bytes),
            novel_chunks: g(&c.novel_chunks),
            dup_chunks: g(&c.dup_chunks),
            dup_bytes: g(&c.dup_bytes),
            raw_objects: g(&c.raw_objects),
            delta_objects: g(&c.delta_objects),
            passthrough_objects: g(&c.passthrough_objects),
            gc_chunks: g(&c.gc_chunks),
            gc_bytes: g(&c.gc_bytes),
            live_chunks: g(&c.live_chunks),
            live_chunk_bytes: g(&c.live_chunk_bytes),
        }
    }
}

impl std::fmt::Debug for CasStatsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// Interned-chunk bookkeeping: how large, how many live manifests
/// reference it.
struct ChunkEntry {
    len: u32,
    refs: u32,
}

/// The last raw-stored version of one `(job, pid)` lineage: the delta
/// base for subsequent stores. Raw bytes are kept so evicted base chunks
/// can be re-interned if a later delta needs them after the base manifest
/// was pruned.
struct LineageBase {
    seq: u64,
    raw: Vec<u8>,
    digest: u64,
    chunks: Vec<ChunkRef>,
}

/// See the module docs.
pub struct DedupStore {
    inner: Box<dyn StableStorage>,
    params: ChunkParams,
    pool: Arc<Pool>,
    delta: bool,
    faults: FaultHandle,
    index: HashMap<u64, ChunkEntry>,
    lineage: HashMap<String, LineageBase>,
    /// Committed chunk references per stored object key (payload plus
    /// base refs) — the GC root set.
    manifest_refs: HashMap<String, Vec<ChunkRef>>,
    stats: CasStatsHandle,
}

impl DedupStore {
    pub fn new(inner: Box<dyn StableStorage>) -> Self {
        DedupStore {
            inner,
            params: ChunkParams::DEFAULT,
            pool: Arc::new(Pool::new(1)),
            delta: true,
            faults: FaultHandle::disabled(),
            index: HashMap::new(),
            lineage: HashMap::new(),
            manifest_refs: HashMap::new(),
            stats: CasStatsHandle::default(),
        }
    }

    pub fn with_params(mut self, params: ChunkParams) -> Self {
        self.params = params;
        self
    }

    /// Fan per-chunk digests out on `pool`. Output is byte-identical at
    /// any width; this only buys wall-clock time.
    pub fn with_pool(mut self, pool: Arc<Pool>) -> Self {
        self.pool = pool;
        self
    }

    /// Disable the delta-vs-previous-version pass (chunk-level dedup
    /// only).
    pub fn without_delta(mut self) -> Self {
        self.delta = false;
        self
    }

    /// Attach a fault handle exposing the `cas/commit@<n>` site: the
    /// instant between the chunks landing and the manifest write.
    pub fn with_faults(mut self, faults: FaultHandle) -> Self {
        self.faults = faults;
        self
    }

    pub fn stats_handle(&self) -> CasStatsHandle {
        self.stats.clone()
    }

    pub fn stats(&self) -> CasStats {
        self.stats.snapshot()
    }

    fn counter(&self, f: impl Fn(&Counters) -> &AtomicU64, v: u64) {
        f(&self.stats.0).fetch_add(v, Ordering::Relaxed);
    }

    /// Intern one chunk: bump its refcount, shipping the bytes to the
    /// backing store if it is not already live. Records the action in
    /// `tx` for rollback.
    fn intern_chunk(
        &mut self,
        digest: u64,
        bytes: &[u8],
        cost: &CostModel,
        tx: &mut Tx,
    ) -> Result<(), StorageError> {
        if let Some(e) = self.index.get_mut(&digest) {
            if e.refs > 0 {
                e.refs += 1;
                tx.increfed.push(digest);
                self.counter(|c| &c.dup_chunks, 1);
                self.counter(|c| &c.dup_bytes, bytes.len() as u64);
                return Ok(());
            }
        }
        let key = ObjectKey::chunk(digest).to_string();
        let r = self.inner.store(&key, bytes, cost)?;
        tx.time_ns += r.time_ns;
        tx.novel_bytes += bytes.len() as u64;
        tx.increfed.push(digest);
        tx.stored.push(digest);
        self.index.insert(digest, ChunkEntry { len: bytes.len() as u32, refs: 1 });
        self.counter(|c| &c.novel_chunks, 1);
        self.counter(|c| &c.physical_bytes, bytes.len() as u64);
        self.counter(|c| &c.live_chunks, 1);
        self.counter(|c| &c.live_chunk_bytes, bytes.len() as u64);
        Ok(())
    }

    /// Undo a failed commit: release every refcount the transaction took,
    /// deleting (best-effort — the node may be dead) chunks it newly
    /// shipped.
    fn rollback(&mut self, tx: Tx) {
        for digest in tx.increfed.into_iter().rev() {
            self.release_chunk(digest);
        }
    }

    /// Drop one reference; at zero the chunk is dead — GC it from the
    /// backing store (best-effort: a refused delete leaves debris the
    /// next intern simply overwrites).
    fn release_chunk(&mut self, digest: u64) {
        let Some(e) = self.index.get_mut(&digest) else { return };
        e.refs = e.refs.saturating_sub(1);
        if e.refs > 0 {
            return;
        }
        let len = e.len;
        self.index.remove(&digest);
        let _ = self.inner.delete(&ObjectKey::chunk(digest).to_string());
        self.counter(|c| &c.gc_chunks, 1);
        self.counter(|c| &c.gc_bytes, len as u64);
        self.stats.0.live_chunks.fetch_sub(1, Ordering::Relaxed);
        self.stats.0.live_chunk_bytes.fetch_sub(len as u64, Ordering::Relaxed);
    }

    /// Release every chunk a committed object referenced.
    fn release_object(&mut self, key: &str) {
        if let Some(refs) = self.manifest_refs.remove(key) {
            for r in refs {
                self.release_chunk(r.digest);
            }
        }
    }

    /// Cumulative chunk offsets of `chunks` over a contiguous byte run.
    fn chunk_slices<'a>(data: &'a [u8], chunks: &[ChunkRef]) -> Vec<(u64, &'a [u8])> {
        let mut at = 0usize;
        let mut out = Vec::with_capacity(chunks.len());
        for c in chunks {
            let end = at + c.len as usize;
            out.push((c.digest, &data[at..end]));
            at = end;
        }
        debug_assert_eq!(at, data.len());
        out
    }

    /// Resolve a chunk list back into contiguous bytes, verifying each
    /// chunk against its content address.
    fn resolve_chunks(
        &self,
        chunks: &[ChunkRef],
        cost: &CostModel,
        time_ns: &mut u64,
    ) -> Result<Vec<u8>, StorageError> {
        let total: usize = chunks.iter().map(|c| c.len as usize).sum();
        let mut out = Vec::with_capacity(total);
        for c in chunks {
            let key = ObjectKey::chunk(c.digest).to_string();
            let (bytes, t) = match self.inner.load(&key, cost) {
                Ok(v) => v,
                // Availability says nothing about chunk validity — let
                // the caller retry; everything else means the chunk is
                // gone.
                Err(
                    e @ (StorageError::Unavailable
                    | StorageError::Transient
                    | StorageError::QuorumLost { .. }),
                ) => return Err(e),
                Err(_) => return Err(StorageError::MissingChunk { digest: c.digest }),
            };
            *time_ns += t;
            if bytes.len() != c.len as usize || fnv1a64(&bytes) != c.digest {
                return Err(StorageError::MissingChunk { digest: c.digest });
            }
            out.extend_from_slice(&bytes);
        }
        Ok(out)
    }
}

/// In-flight commit state, unwound by [`DedupStore::rollback`] on any
/// failure after the first chunk ships.
#[derive(Default)]
struct Tx {
    increfed: Vec<u64>,
    stored: Vec<u64>,
    novel_bytes: u64,
    time_ns: u64,
}

impl StableStorage for DedupStore {
    fn class(&self) -> StorageClass {
        self.inner.class()
    }

    fn label(&self) -> String {
        format!("dedup({})", self.inner.label())
    }

    fn store(
        &mut self,
        key: &str,
        data: &[u8],
        cost: &CostModel,
    ) -> Result<StoreReceipt, StorageError> {
        let Some(ik) = ObjectKey::parse(key).as_image().cloned() else {
            self.counter(|c| &c.passthrough_objects, 1);
            return self.inner.store(key, data, cost);
        };
        self.counter(|c| &c.logical_bytes, data.len() as u64);
        let object_digest = fnv1a64(data);

        // Delta against the lineage's last raw-stored version, if that
        // wins; always raw otherwise (and raw resets the base, keeping
        // delta depth at one).
        let lineage = ik.lineage();
        let mut encoding = Encoding::Raw;
        let mut payload: std::borrow::Cow<[u8]> = std::borrow::Cow::Borrowed(data);
        if self.delta {
            if let Some(base) = self.lineage.get(&lineage) {
                if base.seq < ik.seq {
                    let d = xor_rle_encode(&base.raw, data);
                    if d.len() * 2 <= data.len().max(1) {
                        encoding = Encoding::Delta(BaseRecipe {
                            len: base.raw.len() as u64,
                            digest: base.digest,
                            chunks: base.chunks.clone(),
                        });
                        payload = std::borrow::Cow::Owned(d);
                    }
                }
            }
        }

        let pool = self.pool.clone();
        let chunked = split_and_digest(&payload, &self.params, &pool);
        let chunk_refs: Vec<ChunkRef> = chunked
            .iter()
            .map(|(s, d)| ChunkRef { digest: *d, len: s.len as u32 })
            .collect();

        let mut tx = Tx::default();
        // Ship payload chunks, then take references on the base's chunks
        // (re-interning any the GC already evicted — the lineage cache
        // holds the raw bytes for exactly this).
        for (span, digest) in &chunked {
            let bytes = &payload[span.offset..span.offset + span.len];
            if let Err(e) = self.intern_chunk(*digest, bytes, cost, &mut tx) {
                self.rollback(tx);
                return Err(e);
            }
        }
        if let Encoding::Delta(base) = &encoding {
            let base_raw = &self.lineage[&lineage].raw;
            let slices: Vec<(u64, Vec<u8>)> = Self::chunk_slices(base_raw, &base.chunks)
                .into_iter()
                .map(|(d, s)| (d, s.to_vec()))
                .collect();
            for (digest, bytes) in slices {
                if let Err(e) = self.intern_chunk(digest, &bytes, cost, &mut tx) {
                    self.rollback(tx);
                    return Err(e);
                }
            }
        }

        let m = Manifest {
            object_len: data.len() as u64,
            object_digest,
            encoding: encoding.clone(),
            chunks: chunk_refs.clone(),
        };
        let manifest_bytes = manifest::encode(&m);

        // The commit point: every chunk is durable, the manifest is not.
        // A fault here is the interesting crash — chunks without a recipe
        // are invisible debris, a torn manifest must read as typed
        // corruption.
        if !self.faults.is_off() {
            if self.faults.node_crashed() {
                self.rollback(tx);
                return Err(StorageError::Unavailable);
            }
            match self.faults.check("cas/commit", manifest_bytes.len() as u64) {
                Some(Fault::Transient) => {
                    self.rollback(tx);
                    return Err(StorageError::Transient);
                }
                Some(Fault::FailStop) => {
                    self.faults.set_crashed();
                    self.rollback(tx);
                    return Err(StorageError::Unavailable);
                }
                Some(Fault::TornWrite { keep_bytes }) => {
                    let keep = (keep_bytes as usize).min(manifest_bytes.len());
                    let _ = self.inner.store(key, &manifest_bytes[..keep], cost);
                    self.faults.set_crashed();
                    self.rollback(tx);
                    return Err(StorageError::Unavailable);
                }
                None => {}
            }
        }

        let receipt = match self.inner.store(key, &manifest_bytes, cost) {
            Ok(r) => r,
            Err(e) => {
                self.rollback(tx);
                return Err(e);
            }
        };
        tx.time_ns += receipt.time_ns;
        tx.novel_bytes += manifest_bytes.len() as u64;
        self.counter(|c| &c.physical_bytes, manifest_bytes.len() as u64);
        match &encoding {
            Encoding::Raw => self.counter(|c| &c.raw_objects, 1),
            Encoding::Delta(_) => self.counter(|c| &c.delta_objects, 1),
        }

        // Commit: the new reference set replaces any previous object
        // under this key, and a raw store becomes the lineage's new delta
        // base.
        self.release_object(key);
        self.manifest_refs.insert(key.to_string(), m.referenced_chunks());
        if matches!(encoding, Encoding::Raw) {
            self.lineage.insert(
                lineage,
                LineageBase {
                    seq: ik.seq,
                    raw: data.to_vec(),
                    digest: object_digest,
                    chunks: chunk_refs,
                },
            );
        }
        Ok(StoreReceipt { key: key.to_string(), bytes: tx.novel_bytes, time_ns: tx.time_ns })
    }

    fn load(&self, key: &str, cost: &CostModel) -> Result<(Vec<u8>, u64), StorageError> {
        let (bytes, mut time_ns) = self.inner.load(key, cost)?;
        if !manifest::is_manifest(&bytes) {
            return Ok((bytes, time_ns));
        }
        let m = manifest::decode(&bytes)
            .map_err(|_| StorageError::CorruptManifest { key: key.to_string() })?;
        let payload = self.resolve_chunks(&m.chunks, cost, &mut time_ns)?;
        let object = match &m.encoding {
            Encoding::Raw => payload,
            Encoding::Delta(base) => {
                let base_bytes = self.resolve_chunks(&base.chunks, cost, &mut time_ns)?;
                if base_bytes.len() as u64 != base.len || fnv1a64(&base_bytes) != base.digest {
                    return Err(StorageError::CorruptManifest { key: key.to_string() });
                }
                xor_rle_decode(&base_bytes, &payload)
                    .ok_or(StorageError::CorruptManifest { key: key.to_string() })?
            }
        };
        if object.len() as u64 != m.object_len || fnv1a64(&object) != m.object_digest {
            return Err(StorageError::CorruptManifest { key: key.to_string() });
        }
        Ok((object, time_ns))
    }

    fn delete(&mut self, key: &str) -> Result<(), StorageError> {
        self.inner.delete(key)?;
        self.release_object(key);
        Ok(())
    }

    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    fn available(&self) -> bool {
        self.inner.available()
    }

    fn used_bytes(&self) -> u64 {
        self.inner.used_bytes()
    }

    fn on_node_failure(&mut self) {
        self.inner.on_node_failure();
    }

    fn on_node_repair(&mut self) {
        self.inner.on_node_repair();
    }

    fn on_power_down(&mut self) {
        self.inner.on_power_down();
    }

    fn replica_manifest(&self, key: &str) -> Option<ReplicaManifest> {
        self.inner.replica_manifest(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_storage::key::ImageKey;
    use ckpt_storage::media::LocalDisk;

    fn cost() -> CostModel {
        CostModel::circa_2005()
    }

    fn store() -> DedupStore {
        DedupStore::new(Box::new(LocalDisk::new(1 << 30)))
    }

    fn key(seq: u64) -> String {
        ImageKey::new("job", 1, seq).to_string()
    }

    fn pseudo(n: usize, seed: u64) -> Vec<u8> {
        let mut v = Vec::with_capacity(n);
        let mut x = seed;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(seed | 1);
            v.push((x >> 33) as u8);
        }
        v
    }

    #[test]
    fn image_round_trips_through_chunks() {
        let mut s = store();
        let data = pseudo(50_000, 1);
        let r = s.store(&key(1), &data, &cost()).unwrap();
        assert!(r.bytes > 0);
        let (back, t) = s.load(&key(1), &cost()).unwrap();
        assert_eq!(back, data);
        assert!(t > 0);
        assert!(s.stats().novel_chunks > 1, "a 50 KiB object must chunk");
    }

    #[test]
    fn identical_objects_share_all_chunks() {
        let mut s = store();
        let data = pseudo(40_000, 2);
        let r1 = s.store(&ImageKey::new("a", 1, 1).to_string(), &data, &cost()).unwrap();
        let r2 = s.store(&ImageKey::new("b", 1, 1).to_string(), &data, &cost()).unwrap();
        assert!(
            r2.bytes < r1.bytes / 4,
            "second copy must ship only a manifest: {} vs {}",
            r2.bytes,
            r1.bytes
        );
        assert!(s.stats().dedup_ratio() > 1.8);
    }

    #[test]
    fn near_identical_successor_ships_novelty_only() {
        let mut s = store();
        let mut data = pseudo(64_000, 3);
        let r1 = s.store(&key(1), &data, &cost()).unwrap();
        data[100] ^= 1;
        let r2 = s.store(&key(2), &data, &cost()).unwrap();
        assert!(
            r2.bytes < r1.bytes / 10,
            "one flipped byte must delta to a sliver: {} vs {}",
            r2.bytes,
            r1.bytes
        );
        assert_eq!(s.stats().delta_objects, 1);
        let (back, _) = s.load(&key(2), &cost()).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn non_image_keys_pass_through() {
        let mut s = store();
        s.store("scratch/obj", b"hello", &cost()).unwrap();
        assert_eq!(s.load("scratch/obj", &cost()).unwrap().0, b"hello");
        assert_eq!(s.stats().passthrough_objects, 1);
        assert_eq!(s.stats().novel_chunks, 0);
    }

    #[test]
    fn delete_gcs_unreferenced_chunks_only() {
        let mut s = store();
        let shared = pseudo(30_000, 4);
        s.store(&ImageKey::new("a", 1, 1).to_string(), &shared, &cost()).unwrap();
        s.store(&ImageKey::new("b", 1, 1).to_string(), &shared, &cost()).unwrap();
        let live = s.stats().live_chunks;
        s.delete(&ImageKey::new("a", 1, 1).to_string()).unwrap();
        assert_eq!(s.stats().live_chunks, live, "b still references every chunk");
        assert_eq!(s.load(&ImageKey::new("b", 1, 1).to_string(), &cost()).unwrap().0, shared);
        s.delete(&ImageKey::new("b", 1, 1).to_string()).unwrap();
        assert_eq!(s.stats().live_chunks, 0, "last reference gone, chunks GC'd");
        assert_eq!(s.stats().gc_chunks, s.stats().novel_chunks);
    }

    #[test]
    fn pruned_base_does_not_orphan_deltas() {
        let mut s = store();
        let mut data = pseudo(48_000, 5);
        s.store(&key(1), &data, &cost()).unwrap();
        data[7] ^= 0xff;
        s.store(&key(2), &data, &cost()).unwrap();
        // Prune the base object; the delta's manifest holds its own base
        // references, so seq 2 must still resolve bit-exactly.
        s.delete(&key(1)).unwrap();
        assert_eq!(s.load(&key(2), &cost()).unwrap().0, data);
        // And a later delta (base manifest long gone) still works.
        data[9000] ^= 0x0f;
        s.store(&key(3), &data, &cost()).unwrap();
        assert_eq!(s.load(&key(3), &cost()).unwrap().0, data);
    }

    #[test]
    fn missing_chunk_is_a_typed_error() {
        let mut s = store();
        let data = pseudo(20_000, 6);
        s.store(&key(1), &data, &cost()).unwrap();
        // Destroy one chunk behind the store's back.
        let chunk_key = s
            .list()
            .into_iter()
            .find(|k| k.starts_with("cas/"))
            .expect("a chunk object exists");
        s.inner.delete(&chunk_key).unwrap();
        match s.load(&key(1), &cost()) {
            Err(StorageError::MissingChunk { .. }) => {}
            other => panic!("expected MissingChunk, got {other:?}"),
        }
    }

    #[test]
    fn torn_manifest_is_a_typed_error() {
        let h = FaultHandle::armed("cas/commit@1", Fault::TornWrite { keep_bytes: 9 });
        let mut s = store().with_faults(h.clone());
        let data = pseudo(20_000, 7);
        assert_eq!(s.store(&key(1), &data, &cost()).unwrap_err(), StorageError::Unavailable);
        assert!(h.node_crashed());
        h.clear_crash();
        match s.load(&key(1), &cost()) {
            Err(StorageError::CorruptManifest { .. }) => {}
            other => panic!("expected CorruptManifest, got {other:?}"),
        }
    }

    #[test]
    fn commit_failstop_rolls_back_chunk_refs() {
        let h = FaultHandle::armed("cas/commit@1", Fault::FailStop);
        let mut s = store().with_faults(h.clone());
        let data = pseudo(20_000, 8);
        assert_eq!(s.store(&key(1), &data, &cost()).unwrap_err(), StorageError::Unavailable);
        assert_eq!(s.stats().live_chunks, 0, "failed commit must not leak references");
        // The store recovers: after "repair" the same image commits clean.
        h.clear_crash();
        s.store(&key(1), &data, &cost()).unwrap();
        assert_eq!(s.load(&key(1), &cost()).unwrap().0, data);
    }

    #[test]
    fn output_is_pool_width_invariant() {
        let datasets: Vec<Vec<u8>> = (0..3).map(|i| pseudo(30_000 + i * 7, 10 + i as u64)).collect();
        let mut receipts: Option<Vec<StoreReceipt>> = None;
        for w in [1usize, 4, 8] {
            let mut s = store().with_pool(Arc::new(Pool::new(w)));
            let rs: Vec<StoreReceipt> = datasets
                .iter()
                .enumerate()
                .map(|(i, d)| s.store(&key(i as u64 + 1), d, &cost()).unwrap())
                .collect();
            for (i, d) in datasets.iter().enumerate() {
                assert_eq!(&s.load(&key(i as u64 + 1), &cost()).unwrap().0, d);
            }
            match &receipts {
                None => receipts = Some(rs),
                Some(prev) => assert_eq!(prev, &rs, "width {w} changed observable output"),
            }
        }
    }
}
