//! # ckpt-cas — content-addressed checkpoint storage
//!
//! The paper's "direction forward" is incremental checkpointing; its
//! production endpoint is deduplication. When many co-scheduled guests
//! run the same application, most checkpoint bytes are identical across
//! processes — and across successive links of one incremental chain.
//! This crate detects that redundancy by *content*:
//!
//! * [`chunker`] — content-defined chunking: a gear rolling hash picks
//!   chunk boundaries that re-synchronize after edits, with min/avg/max
//!   size bounds ([`ChunkParams`]);
//! * [`digest`] — FNV-1a 64-bit content addresses;
//! * [`delta`] — XOR + run-length delta between successive versions of
//!   one lineage, applied before chunking;
//! * [`manifest`] — the stored recipe (chunk list, optional base recipe,
//!   object digest, checksum trailer) that rebuilds an object;
//! * [`store`] — [`DedupStore`], the [`StableStorage`] decorator that
//!   puts it together: refcount-exact chunk GC, novel-bytes receipts,
//!   typed [`MissingChunk`]/[`CorruptManifest`] failures, and
//!   deterministic byte-identical output at any [`ckpt_par`] pool width.
//!
//! [`StableStorage`]: ckpt_storage::StableStorage
//! [`MissingChunk`]: ckpt_storage::StorageError::MissingChunk
//! [`CorruptManifest`]: ckpt_storage::StorageError::CorruptManifest

pub mod chunker;
pub mod delta;
pub mod digest;
pub mod manifest;
pub mod store;

pub use chunker::{split, split_and_digest, ChunkParams, ChunkSpan};
pub use digest::fnv1a64;
pub use manifest::{BaseRecipe, ChunkRef, Encoding, Manifest, ManifestError, MANIFEST_MAGIC};
pub use store::{CasStats, CasStatsHandle, DedupStore};
