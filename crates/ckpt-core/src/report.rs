//! Outcome records: what a checkpoint or restart cost, in the currencies
//! the paper argues in (virtual time, application stall, protection-domain
//! crossings, data volume).

use simos::stats::KernelStats;

/// Result of one checkpoint operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptOutcome {
    /// Sequence number of the produced image.
    pub seq: u64,
    /// Whether the image was full or incremental.
    pub incremental: bool,
    /// Pages carried by the image.
    pub pages_saved: u64,
    /// Bytes of (uncompressed) memory represented by those pages.
    pub memory_bytes: u64,
    /// Logical dirty bytes at the tracker's granularity — for block/line
    /// trackers this is what a format exploiting that granularity would
    /// ship, and it is the size the paper's finer-granularity argument is
    /// about.
    pub logical_dirty_bytes: u64,
    /// Encoded image size actually written to stable storage.
    pub encoded_bytes: u64,
    /// Total virtual time from initiation to the image being durable.
    pub total_ns: u64,
    /// Virtual time the application itself was stopped/stalled.
    pub app_stall_ns: u64,
    /// Time spent in the storage backend.
    pub storage_ns: u64,
    /// Kernel event counters over the operation.
    pub events: KernelStats,
}

impl CkptOutcome {
    /// Compression ratio achieved by the image encoding (1.0 = none).
    pub fn compression_ratio(&self) -> f64 {
        if self.encoded_bytes == 0 {
            return 1.0;
        }
        self.memory_bytes as f64 / self.encoded_bytes as f64
    }
}

/// Result of one restart operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestartOutcome {
    /// Pid the process resumed under.
    pub pid: simos::Pid,
    /// Pages repopulated.
    pub pages_restored: u64,
    /// Total virtual time from initiation to the process being runnable.
    pub total_ns: u64,
    /// Images loaded (1 for full, more for an incremental chain).
    pub images_loaded: u64,
    /// Work counter recorded in the image (progress preserved).
    pub work_done: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_ratio_guards_division() {
        let o = CkptOutcome {
            seq: 1,
            incremental: false,
            pages_saved: 2,
            memory_bytes: 8192,
            logical_dirty_bytes: 8192,
            encoded_bytes: 0,
            total_ns: 0,
            app_stall_ns: 0,
            storage_ns: 0,
            events: KernelStats::default(),
        };
        assert_eq!(o.compression_ratio(), 1.0);
        let o2 = CkptOutcome {
            encoded_bytes: 4096,
            ..o
        };
        assert_eq!(o2.compression_ratio(), 2.0);
    }
}
