//! The modelled user-level checkpoint library (Section 3 of the paper).
//!
//! Everything a user-level checkpointer knows about its process it must
//! learn through syscalls — `sbrk(0)` for the heap boundary, `lseek` per
//! descriptor for file offsets, `sigpending` for pending signals, a read of
//! `/proc/self/maps` for the memory layout (or, with an `LD_PRELOAD` shim,
//! mirrored tables built by interposing `open`/`dup`/`mmap` at run time).
//! Every one of those crossings is charged here, which is precisely why
//! the user-level rows lose the efficiency comparisons in the experiments.

use crate::capture::{capture_image, CaptureOptions};
use crate::report::CkptOutcome;
use crate::tracker::{Tracker, TrackerKind};
use crate::SharedStorage;
use ckpt_image::ImageKind;
use ckpt_storage::{prune_before, store_image};
use simos::module::UserAgent;
use simos::syscall::{Syscall, Whence};
use simos::trace::Phase;
use simos::types::{Pid, SimError, SimResult};
use simos::Kernel;
use std::any::Any;

/// Configuration of a user-level checkpoint agent.
#[derive(Debug, Clone)]
pub struct UserAgentConfig {
    /// Registry name (unique per kernel).
    pub name: String,
    /// Storage key prefix.
    pub job: String,
    /// User-level tracker (must not be a kernel/hardware kind).
    pub tracker: TrackerKind,
    /// Force a full image every N checkpoints (0 = first only).
    pub full_every: u64,
    /// Write-syscall chunk size for the image I/O loop.
    pub chunk: u64,
    /// Use LD_PRELOAD mirrors instead of parsing `/proc/self/maps`.
    pub use_mirrors: bool,
    pub node: u32,
}

impl UserAgentConfig {
    pub fn new(name: &str, job: &str) -> Self {
        UserAgentConfig {
            name: name.to_string(),
            job: job.to_string(),
            tracker: TrackerKind::FullOnly,
            full_every: 0,
            chunk: simos::kernel::USER_IO_CHUNK,
            use_mirrors: false,
            node: 0,
        }
    }
}

/// The agent: user-space checkpoint library code attached to one process.
pub struct UserCkptAgent {
    cfg: UserAgentConfig,
    storage: SharedStorage,
    tracker: Tracker,
    seq: u64,
    last_full_seq: u64,
    /// Completed checkpoints, newest last.
    pub outcomes: Vec<CkptOutcome>,
    /// Errors hit during asynchronous checkpoints (surfaced by mechanisms).
    pub errors: Vec<String>,
}

impl UserCkptAgent {
    pub fn new(cfg: UserAgentConfig, storage: SharedStorage) -> Self {
        assert!(
            matches!(
                cfg.tracker,
                TrackerKind::FullOnly
                    | TrackerKind::UserPage
                    | TrackerKind::ProbBlock { .. }
                    | TrackerKind::AdaptiveBlock { .. }
            ),
            "user-level agents cannot use kernel/hardware trackers"
        );
        let tracker = Tracker::new(cfg.tracker);
        UserCkptAgent {
            cfg,
            storage,
            tracker,
            seq: 0,
            last_full_seq: 0,
            outcomes: Vec::new(),
            errors: Vec::new(),
        }
    }

    pub fn seq(&self) -> u64 {
        self.seq
    }

    pub fn checkpoints_taken(&self) -> u64 {
        self.outcomes.len() as u64
    }

    /// The user-level state gather: one syscall per fact, exactly as the
    /// paper describes. Returns the number of crossings spent (already
    /// charged).
    fn gather_state(&self, k: &mut Kernel, pid: Pid) -> SimResult<u64> {
        let mut crossings = 0u64;
        // Heap boundary.
        let _ = k.do_syscall(pid, Syscall::Sbrk { delta: 0 });
        crossings += 1;
        // Pending signals.
        let _ = k.do_syscall(pid, Syscall::Sigpending);
        crossings += 1;
        // File offsets: lseek(fd, 0, CUR) per open descriptor.
        let fds: Vec<simos::types::Fd> = k
            .process(pid)
            .ok_or(SimError::NoSuchProcess(pid))?
            .fds
            .iter()
            .map(|(fd, _)| fd)
            .collect();
        for fd in fds {
            let _ = k.do_syscall(
                pid,
                Syscall::Lseek {
                    fd,
                    offset: 0,
                    whence: Whence::Cur,
                },
            );
            crossings += 1;
        }
        // Memory layout: mirrors are free at checkpoint time (their cost
        // was paid at every interposed call); otherwise parse
        // /proc/self/maps — open + read + close plus the copy.
        if !self.cfg.use_mirrors {
            let listing_len = k
                .process(pid)
                .map(|p| p.mem.maps_listing().len() as u64)
                .unwrap_or(0);
            k.stats.syscalls += 3;
            let t = 3 * k.cost.syscall_round_trip() + k.cost.memcpy(listing_len);
            k.charge(t);
            crossings += 3;
        }
        Ok(crossings)
    }

    /// Perform one user-level checkpoint in the process's own context.
    pub fn perform_checkpoint(&mut self, k: &mut Kernel, pid: Pid) -> SimResult<CkptOutcome> {
        let t0 = k.now();
        let stats0 = k.stats.clone();
        let trace_before = k.trace.mechanism_total(&self.cfg.name);
        let next_seq = self.seq + 1;
        // The library runs in the application's own context (handler or
        // inserted call): the app is quiescent for free.
        k.faultpoint(&self.cfg.name, "freeze")?;
        k.trace
            .phase(&self.cfg.name, Phase::Freeze, pid.0, next_seq, t0, 0);
        self.gather_state(k, pid)?;
        let incremental_ok = self.tracker.kind().supports_incremental()
            && self.seq > 0
            && self.tracker.is_armed()
            && !(self.cfg.full_every > 0 && next_seq - self.last_full_seq >= self.cfg.full_every);
        let (opts, logical) = if incremental_ok {
            k.faultpoint(&self.cfg.name, "walk")?;
            let c = self.tracker.collect(k, pid)?;
            (
                {
                    let mut o = CaptureOptions::incremental(
                        &self.cfg.name,
                        next_seq,
                        self.seq,
                        c.pages.clone(),
                    );
                    o.node = self.cfg.node;
                    o
                },
                c.logical_dirty_bytes,
            )
        } else {
            let mut o = CaptureOptions::full(&self.cfg.name, next_seq);
            o.node = self.cfg.node;
            (o, 0)
        };
        // The syscall gather + tracker walk are the library's state walk.
        k.trace.phase(
            &self.cfg.name,
            Phase::Walk,
            pid.0,
            next_seq,
            k.now(),
            k.now() - t0,
        );
        let kind = opts.kind;
        // The library serializes its own state; the page copies charged by
        // capture_image stand in for the user-space copy loop.
        k.faultpoint(&self.cfg.name, "capture")?;
        let cap0 = k.now();
        let img = capture_image(k, pid, &opts)?;
        k.trace.phase(
            &self.cfg.name,
            Phase::Capture,
            pid.0,
            next_seq,
            k.now(),
            k.now() - cap0,
        );
        let pages_saved = img.page_count() as u64;
        let memory_bytes = img.memory_bytes();
        // Image I/O: write() loop in chunks — the user-level tax the
        // system-level mechanisms do not pay.
        k.faultpoint(&self.cfg.name, "compress")?;
        k.faultpoint(&self.cfg.name, "store")?;
        let encoded_len;
        let storage_ns;
        {
            let mut storage = self.storage.lock();
            let receipt = store_image(storage.as_mut(), &self.cfg.job, &img, &k.cost)
                .map_err(|e| SimError::Usage(format!("user-level store failed: {e}")))?;
            encoded_len = receipt.bytes;
            storage_ns = receipt.time_ns;
            let label = storage.label();
            drop(storage);
            k.trace
                .storage(simos::trace::StorageOp::Store, &label, encoded_len, storage_ns);
        }
        let io0 = k.now();
        k.charge_user_io(encoded_len, self.cfg.chunk);
        k.trace.phase(
            &self.cfg.name,
            Phase::Compress,
            pid.0,
            next_seq,
            k.now(),
            k.now() - io0,
        );
        k.charge(storage_ns);
        k.trace.phase(
            &self.cfg.name,
            Phase::Store,
            pid.0,
            next_seq,
            k.now(),
            storage_ns,
        );
        self.seq = next_seq;
        if kind == ImageKind::Full {
            self.last_full_seq = next_seq;
            k.faultpoint(&self.cfg.name, "prune")?;
            let prune0 = k.now();
            let mut storage = self.storage.lock();
            let _ = prune_before(storage.as_mut(), &self.cfg.job, pid.0, next_seq, &k.cost);
            drop(storage);
            k.trace.phase(
                &self.cfg.name,
                Phase::Prune,
                pid.0,
                next_seq,
                k.now(),
                k.now() - prune0,
            );
        }
        if self.tracker.kind().supports_incremental() {
            k.faultpoint(&self.cfg.name, "rearm")?;
            let arm0 = k.now();
            self.tracker.arm(k, pid)?;
            k.trace.phase(
                &self.cfg.name,
                Phase::Rearm,
                pid.0,
                next_seq,
                k.now(),
                k.now() - arm0,
            );
        }
        let total_ns = k.now() - t0;
        k.faultpoint(&self.cfg.name, "resume")?;
        k.trace
            .phase(&self.cfg.name, Phase::Resume, pid.0, next_seq, k.now(), 0);
        crate::mechanism::emit_phase_residual(
            k,
            &self.cfg.name,
            pid,
            next_seq,
            total_ns,
            trace_before,
        );
        let outcome = CkptOutcome {
            seq: next_seq,
            incremental: kind == ImageKind::Incremental,
            pages_saved,
            memory_bytes,
            logical_dirty_bytes: if kind == ImageKind::Full {
                memory_bytes
            } else {
                logical
            },
            encoded_bytes: encoded_len,
            total_ns,
            app_stall_ns: total_ns, // runs in the app's context
            storage_ns,
            events: k.stats.delta_since(&stats0),
        };
        self.outcomes.push(outcome.clone());
        Ok(outcome)
    }
}

impl UserAgent for UserCkptAgent {
    fn name(&self) -> &str {
        &self.cfg.name
    }

    fn user_checkpoint(&mut self, k: &mut Kernel, pid: Pid) {
        if let Err(e) = self.perform_checkpoint(k, pid) {
            self.errors.push(e.to_string());
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared_storage;
    use ckpt_storage::LocalDisk;
    use simos::apps::{AppParams, NativeKind};
    use simos::cost::CostModel;

    fn setup(tracker: TrackerKind) -> (Kernel, Pid) {
        let mut k = Kernel::new(CostModel::circa_2005());
        let mut params = AppParams::small();
        params.mem_bytes = 1024 * 1024;
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
        k.run_for(10_000_000).unwrap();
        let mut cfg = UserAgentConfig::new("libckpt", "job");
        cfg.tracker = tracker;
        let agent = UserCkptAgent::new(cfg, shared_storage(LocalDisk::new(1 << 30)));
        k.register_agent(Box::new(agent)).unwrap();
        k.process_mut(pid).unwrap().user_rt.agent = Some("libckpt".into());
        (k, pid)
    }

    #[test]
    fn gather_pays_one_syscall_per_fact() {
        let (mut k, pid) = setup(TrackerKind::FullOnly);
        // Open three files: three extra lseeks at checkpoint time.
        for i in 0..3 {
            k.do_syscall(
                pid,
                Syscall::Open {
                    path: format!("/tmp/f{i}"),
                    flags: simos::fs::OpenFlags::RDWR_CREATE,
                },
            )
            .unwrap();
        }
        let syscalls0 = k.stats.syscalls;
        k.with_agent_mut::<UserCkptAgent, _>("libckpt", |a, k| {
            a.perform_checkpoint(k, pid).unwrap();
        })
        .unwrap();
        let spent = k.stats.syscalls - syscalls0;
        // sbrk + sigpending + 3×lseek + 3×maps + image write loop ≥ 9.
        assert!(spent >= 9, "only {spent} syscalls charged");
    }

    #[test]
    fn mirrors_avoid_the_maps_parse() {
        let run = |mirrors: bool| -> u64 {
            let mut k = Kernel::new(CostModel::circa_2005());
            let mut params = AppParams::small();
            params.total_steps = u64::MAX;
            let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
            k.run_for(5_000_000).unwrap();
            let mut cfg = UserAgentConfig::new("a", "job");
            cfg.use_mirrors = mirrors;
            let agent = UserCkptAgent::new(cfg, shared_storage(LocalDisk::new(1 << 30)));
            k.register_agent(Box::new(agent)).unwrap();
            let s0 = k.stats.syscalls;
            k.with_agent_mut::<UserCkptAgent, _>("a", |a, k| {
                a.perform_checkpoint(k, pid).unwrap();
            });
            k.stats.syscalls - s0
        };
        assert_eq!(run(false) - run(true), 3, "mirrors save the 3 maps syscalls");
    }

    #[test]
    fn incremental_user_checkpoints_shrink() {
        let (mut k, pid) = setup(TrackerKind::UserPage);
        // Widen the working set so a few steps cannot re-dirty everything.
        let first = k
            .with_agent_mut::<UserCkptAgent, _>("libckpt", |a, k| {
                a.perform_checkpoint(k, pid).unwrap()
            })
            .unwrap();
        assert!(!first.incremental);
        // Run a handful of app steps only (sparse writes → few dirty pages).
        let target = k.process(pid).unwrap().work_done + 4;
        while k.process(pid).unwrap().work_done < target {
            k.run_for(1_000).unwrap();
        }
        let second = k
            .with_agent_mut::<UserCkptAgent, _>("libckpt", |a, k| {
                a.perform_checkpoint(k, pid).unwrap()
            })
            .unwrap();
        assert!(second.incremental);
        assert!(second.pages_saved < first.pages_saved);
        // The SIGSEGV tracking handler actually ran.
        assert!(k.process(pid).unwrap().user_rt.segv_tracked > 0);
    }

    #[test]
    #[should_panic(expected = "user-level agents cannot use kernel/hardware trackers")]
    fn kernel_tracker_rejected_for_user_agent() {
        let mut cfg = UserAgentConfig::new("a", "j");
        cfg.tracker = TrackerKind::KernelPage;
        let _ = UserCkptAgent::new(cfg, shared_storage(LocalDisk::new(1024)));
    }
}
