//! # crashpoint — the exhaustive restart-correctness matrix
//!
//! Drives every mechanism family through a checkpointed run with exactly
//! one fault injected at one named [`simos::faultpoint`] site, then
//! restarts on a fresh kernel and classifies the cell:
//!
//! * **Restarted** — the recovered guest state is *bit-for-bit* identical
//!   to a deterministic standalone replay of the application to the same
//!   step (verified over the whole guest data span, word by word).
//! * **Detected** — the restart was rejected up front with a typed error
//!   (no image, CRC/format validation, volatile medium lost the data).
//! * **Skipped** — the fault kind does not apply at this site (a torn
//!   write needs a byte stream); logged, never silently dropped.
//! * **Violation** — anything else: a restart that "succeeded" with wrong
//!   state, or a failure while an intact image demonstrably survives.
//!   A correct implementation produces **zero** of these.
//!
//! The site list itself is not hard-coded: a recording pass runs the same
//! scenario fault-free and enumerates every site the mechanism actually
//! visits (checkpoint phases, per-store byte offsets, chain segments,
//! restart), so new instrumentation is swept in automatically.

use crate::mechanism::fork_concurrent::ForkConcurrentMechanism;
use crate::mechanism::hardware::{HardwareMechanism, HwFlavor};
use crate::mechanism::hibernate::{SoftwareSuspend, SuspendMode};
use crate::mechanism::ksignal::KernelSignalMechanism;
use crate::mechanism::kthread::{KernelThreadMechanism, KthreadIface, KthreadVariant};
use crate::mechanism::syscall::{SyscallMechanism, SyscallVariant};
use crate::mechanism::user_level::{Trigger, UserLevelMechanism};
use crate::mechanism::Mechanism;
use crate::tracker::TrackerKind;
use crate::{shared_storage, RestorePid, SharedStorage};
use ckpt_cas::{ChunkParams, DedupStore};
use ckpt_ec::ErasureStore;
use ckpt_replica::{ReplicaConfig, ReplicaSet, ReplicatedStore, StripedStore};
use ckpt_storage::{
    load_latest_valid_chain, FaultInjectStore, LocalDisk, NvramStore, RamStore, RemoteServer,
    RemoteStore, StableStorage, SwapStore,
};
use simos::apps::{self, AppParams, GuestMemIo, NativeKind, VecMem};
use simos::cost::{CostModel, PAGE_SIZE};
use simos::faultpoint::{Fault, FaultHandle, SiteRecord};
use simos::signal::Sig;
use simos::types::Pid;
use simos::Kernel;
use std::fmt;

/// Job name under which every matrix scenario stores its images.
const JOB: &str = "crashmx";

/// Virtual run window before the first checkpoint.
const RUN1_NS: u64 = 3_000_000;
/// Virtual run window between the two checkpoints.
const RUN2_NS: u64 = 1_500_000;
/// Virtual run window after the second checkpoint.
const RUN3_NS: u64 = 500_000;

/// The six process-level mechanism families driven through [`Mechanism`].
pub const TRAIT_MECHANISMS: [&str; 6] = [
    "user-level",
    "syscall",
    "kernel-signal",
    "kernel-thread",
    "fork-concurrent",
    "hardware",
];

/// Storage backends crossed with the process-level mechanisms.
pub const BACKENDS: [&str; 3] = ["local-disk", "remote", "nvram"];

/// Backends crossed with whole-machine hibernation (its survivability
/// question is power-down, so the volatile RAM medium is included).
pub const HIBERNATE_BACKENDS: [&str; 2] = ["swap", "ram"];

/// Quorum-replicated backends forming the replication tier: every
/// per-replica fault site × every fault kind × both (N, w) configurations.
/// One engine-driven mechanism family carries the tier — the layers above
/// the `StableStorage` trait are orthogonal to replication and already
/// swept against every backend by the main tiers.
pub const REPLICATED_BACKENDS: [&str; 2] = ["replicated(3,2)", "replicated(5,3)"];

/// The mechanism family driven over the replicated backends.
pub const REPLICATION_MECH: &str = "syscall";

/// Dedup-layered backends forming the dedup tier: the content-addressed
/// chunk store's own fault sites (per-chunk stores/loads, the
/// chunks-durable-but-manifest-not `cas/commit` instant) swept over both a
/// single-copy and a quorum-replicated backing store. A torn manifest or
/// missing chunk must always end in typed detection or a bit-exact
/// fallback restart — never silent corruption.
pub const DEDUP_BACKENDS: [&str; 2] = ["dedup(local-disk)", "dedup(replicated(3,2))"];

/// The mechanism family driven over the dedup backends.
pub const DEDUP_MECH: &str = "syscall";

/// Striped quorum pools forming the shard-commit tier: every store on a
/// [`ckpt_replica::StripedStore`] routes through the framed multi-object
/// batch-commit path (as a batch of one), so the recording pass
/// enumerates the per-stripe `stripe<j>/r<i>/batch` sites the sharded
/// control plane's deferred shard commits hit, and the sweep arms each
/// of them with every fault kind. A fault on one stripe must never
/// corrupt keys living on another.
pub const STRIPED_BACKENDS: [&str; 1] = ["striped(2x3,2)"];

/// The mechanism family driven over the striped backends.
pub const STRIPED_MECH: &str = "syscall";

/// Erasure-coded shard groups forming the coding tier: every store on an
/// [`ckpt_ec::ErasureStore`] travels the framed shard batch-commit path
/// (as a batch of one), so the recording pass enumerates the per-shard
/// `ec/s<i>/{batch,load}` sites — one shard node each — and the sweep
/// arms each with every fault kind. Losing a shard mid-commit must end
/// in a quorum rollback or a reconstructing restart, never silent
/// corruption; both geometries keep `m ≥ 1` spare shards over the
/// single-node losses the matrix injects.
pub const ERASURE_BACKENDS: [&str; 2] = ["rs(4,2)", "rs(8,3)"];

/// The mechanism family driven over the erasure-coded backends.
pub const ERASURE_MECH: &str = "syscall";

/// Total cell count of the full matrix, including the live-migration
/// tier contributed by `ckpt-cluster::migmatrix` (the driver test sweeps
/// both). The matrix is deterministic (the site list comes from a
/// fault-free recording pass per column, no sampling), so the count is a
/// fixed artifact of the instrumentation: any new site, backend, or
/// mechanism changes it, and the driver test asserts and prints this
/// constant so the documented number can never drift from the code again.
pub const MATRIX_CELLS: usize = 2250;

/// Parse `"replicated(N,w)"` into its quorum parameters.
fn replicated_params(which: &str) -> Option<(usize, usize)> {
    match which {
        "replicated(3,2)" => Some((3, 2)),
        "replicated(5,3)" => Some((5, 3)),
        _ => None,
    }
}

/// Parse `"dedup(inner)"` into the backing-store name.
fn dedup_inner(which: &str) -> Option<&str> {
    which.strip_prefix("dedup(")?.strip_suffix(')')
}

/// Parse `"striped(KxN,w)"` into (stripes, replicas per stripe, quorum).
fn striped_params(which: &str) -> Option<(usize, usize, usize)> {
    match which {
        "striped(2x3,2)" => Some((2, 3, 2)),
        _ => None,
    }
}

/// Parse `"rs(k,m)"` into its coding geometry.
fn erasure_params(which: &str) -> Option<(usize, usize)> {
    match which {
        "rs(4,2)" => Some((4, 2)),
        "rs(8,3)" => Some((8, 3)),
        _ => None,
    }
}

/// One (mechanism × backend) column of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixConfig {
    pub mechanism: &'static str,
    pub backend: &'static str,
}

/// Every column the full matrix runs.
pub fn all_configs() -> Vec<MatrixConfig> {
    let mut v = Vec::new();
    for mechanism in TRAIT_MECHANISMS {
        for backend in BACKENDS {
            v.push(MatrixConfig { mechanism, backend });
        }
    }
    for backend in HIBERNATE_BACKENDS {
        v.push(MatrixConfig {
            mechanism: "hibernate",
            backend,
        });
    }
    for backend in REPLICATED_BACKENDS {
        v.push(MatrixConfig {
            mechanism: REPLICATION_MECH,
            backend,
        });
    }
    for backend in DEDUP_BACKENDS {
        v.push(MatrixConfig {
            mechanism: DEDUP_MECH,
            backend,
        });
    }
    for backend in STRIPED_BACKENDS {
        v.push(MatrixConfig {
            mechanism: STRIPED_MECH,
            backend,
        });
    }
    for backend in ERASURE_BACKENDS {
        v.push(MatrixConfig {
            mechanism: ERASURE_MECH,
            backend,
        });
    }
    v
}

/// How one cell ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// Restart succeeded and the guest state matched the deterministic
    /// replay bit-for-bit. `lost_steps` is the rollback distance.
    Restarted { lost_steps: u64 },
    /// Restart (or the interrupted checkpoint) failed with a typed error
    /// and no intact image survived — correct detection.
    Detected { error: String },
    /// Fault kind inapplicable at this site (logged, not hidden).
    Skipped { reason: String },
    /// Silent corruption or a refused restart despite an intact image.
    Violation { what: String },
}

/// One cell of the matrix: a (mechanism, backend, site, fault) tuple and
/// its classified outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixCell {
    pub mechanism: &'static str,
    pub backend: &'static str,
    pub site: String,
    pub fault: &'static str,
    pub outcome: CellOutcome,
}

impl fmt::Display for MatrixCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} {} [{}]: {:?}",
            self.mechanism, self.backend, self.site, self.fault, self.outcome
        )
    }
}

/// The whole matrix run.
#[derive(Debug, Clone, Default)]
pub struct MatrixReport {
    pub cells: Vec<MatrixCell>,
}

impl MatrixReport {
    pub fn restarted(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::Restarted { .. }))
    }
    pub fn detected(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::Detected { .. }))
    }
    pub fn skipped(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::Skipped { .. }))
    }
    pub fn violations(&self) -> Vec<&MatrixCell> {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, CellOutcome::Violation { .. }))
            .collect()
    }
    fn count(&self, f: impl Fn(&CellOutcome) -> bool) -> usize {
        self.cells.iter().filter(|c| f(&c.outcome)).count()
    }

    /// Per-(mechanism × backend) outcome counts, in matrix order.
    pub fn by_config(&self) -> Vec<(MatrixConfig, [usize; 4])> {
        let mut out: Vec<(MatrixConfig, [usize; 4])> = Vec::new();
        for c in &self.cells {
            let key = MatrixConfig {
                mechanism: c.mechanism,
                backend: c.backend,
            };
            let slot = match out.iter_mut().find(|(k, _)| *k == key) {
                Some((_, counts)) => counts,
                None => {
                    out.push((key, [0; 4]));
                    &mut out.last_mut().expect("just pushed").1
                }
            };
            let idx = match c.outcome {
                CellOutcome::Restarted { .. } => 0,
                CellOutcome::Detected { .. } => 1,
                CellOutcome::Skipped { .. } => 2,
                CellOutcome::Violation { .. } => 3,
            };
            slot[idx] += 1;
        }
        out
    }
}

// ---------------------------------------------------------------------
// Deterministic guest-state digesting
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_word(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The application parameters every matrix scenario uses. Small enough to
/// keep the full sweep fast, sparse enough to exercise incremental chains.
pub fn app_params() -> AppParams {
    AppParams {
        mem_bytes: 96 * 1024,
        total_steps: u64::MAX,
        writes_per_step: 8,
        write_stride_pages: 4,
        seed: 0xc4a5_0517,
    }
}

/// Byte span of the guest data region (header page + working array).
fn data_span(params: &AppParams) -> (u64, u64) {
    let span = (apps::ARRAY_BASE - apps::HEADER_BASE) + params.mem_bytes + PAGE_SIZE;
    (apps::HEADER_BASE, span)
}

/// FNV-1a over the restored process's guest data span (absent pages read
/// as zero, exactly like the reference executor's untouched bytes).
fn restored_digest(k: &Kernel, pid: Pid, params: &AppParams) -> Option<u64> {
    let p = k.process(pid)?;
    let (base, span) = data_span(params);
    let mut h = FNV_OFFSET;
    let mut addr = base;
    while addr < base + span {
        let pn = addr / PAGE_SIZE;
        let off = (addr % PAGE_SIZE) as usize;
        let word = p
            .mem
            .page_data(pn)
            .map(|d| u64::from_le_bytes(d[off..off + 8].try_into().expect("8-byte slice")))
            .unwrap_or(0);
        h = fnv_word(h, word);
        addr += 8;
    }
    Some(h)
}

/// Replay the app standalone (no kernel) to exactly `target_step` steps
/// and digest the same data span.
fn reference_digest(params: &AppParams, target_step: u64) -> Result<u64, String> {
    let mut mem = VecMem::new(params);
    apps::init(NativeKind::SparseRandom, params, &mut mem);
    while mem.r64(apps::H_STEP) < target_step {
        let out = apps::step(NativeKind::SparseRandom, params, &mut mem);
        if out.finished {
            return Err(format!(
                "replay finished at step {} before target {target_step}",
                mem.r64(apps::H_STEP)
            ));
        }
    }
    if mem.r64(apps::H_STEP) != target_step {
        return Err(format!(
            "replay overshot target {target_step}: at {}",
            mem.r64(apps::H_STEP)
        ));
    }
    let (base, span) = data_span(params);
    let mut h = FNV_OFFSET;
    let mut addr = base;
    while addr < base + span {
        h = fnv_word(h, mem.r64(addr));
        addr += 8;
    }
    Ok(h)
}

/// Verify a restored process against the deterministic replay. Returns the
/// restored step count on success. Public for the same reason as
/// [`faults_for`]: external matrix tiers must use the identical
/// bit-for-bit verification, not a weaker local copy.
pub fn verify_restored(k: &Kernel, pid: Pid, params: &AppParams) -> Result<u64, String> {
    let p = k
        .process(pid)
        .ok_or_else(|| "restored process missing".to_string())?;
    let step = p.work_done;
    let mem_step = p
        .mem
        .page_data(apps::H_STEP / PAGE_SIZE)
        .map(|d| {
            let off = (apps::H_STEP % PAGE_SIZE) as usize;
            u64::from_le_bytes(d[off..off + 8].try_into().expect("8-byte slice"))
        })
        .unwrap_or(0);
    if mem_step != step {
        return Err(format!(
            "restored step counter {mem_step} disagrees with work_done {step}"
        ));
    }
    let expect = reference_digest(params, step)?;
    let got = restored_digest(k, pid, params).ok_or("restored process vanished")?;
    if got != expect {
        return Err(format!(
            "guest memory digest {got:#018x} != replay digest {expect:#018x} at step {step}"
        ));
    }
    Ok(step)
}

// ---------------------------------------------------------------------
// Scenario construction
// ---------------------------------------------------------------------

fn raw_backend(which: &str) -> Box<dyn StableStorage> {
    match which {
        "local-disk" => Box::new(LocalDisk::new(1 << 30)),
        "remote" => Box::new(RemoteStore::new(RemoteServer::new(1 << 30))),
        "nvram" => Box::new(NvramStore::new(1 << 30)),
        "swap" => Box::new(SwapStore::new(1 << 30)),
        "ram" => Box::new(RamStore::new(1 << 30)),
        other => panic!("unknown backend {other}"),
    }
}

fn injected_storage(which: &str, faults: &FaultHandle) -> SharedStorage {
    if let Some(inner) = dedup_inner(which) {
        // The dedup layer sits above a fault-injected backing store, so
        // every per-chunk store/load on the medium is a site — plus the
        // layer's own `cas/commit` site between the chunks landing and
        // the manifest write. Coarse chunking bounds the per-image chunk
        // count, keeping the added matrix columns small.
        let backing: Box<dyn StableStorage> = if let Some((n, w)) = replicated_params(inner) {
            let store = ReplicatedStore::new(ReplicaSet::new(n), ReplicaConfig::new(n, w))
                .with_faults(faults.clone());
            Box::new(FaultInjectStore::new(Box::new(store), faults.clone()))
        } else {
            Box::new(FaultInjectStore::new(raw_backend(inner), faults.clone()))
        };
        return shared_storage(
            DedupStore::new(backing)
                .with_params(ChunkParams::COARSE)
                .with_faults(faults.clone()),
        );
    }
    if let Some((k, n, w)) = striped_params(which) {
        // Single-object stores on the striped pool still travel the framed
        // batch-commit path, so every per-stripe `stripe<j>/r<i>/batch`
        // admission is a recorded site; the outer FaultInjectStore adds
        // the client-side `storage/striped(KxN,w)` sites on top.
        let store = StripedStore::fresh(k, n, w).with_faults(faults.clone());
        return shared_storage(FaultInjectStore::new(Box::new(store), faults.clone()));
    }
    if let Some((k, m)) = erasure_params(which) {
        // Single-object stores on the coded store travel the framed shard
        // batch-commit path, so every per-shard `ec/s<i>/batch` admission
        // is a recorded site; the outer FaultInjectStore adds the
        // client-side `storage/rs(k,m)` sites on top. A lost shard is the
        // case the code exists for: the restart must reconstruct.
        let store = ErasureStore::fresh(k, m).with_faults(faults.clone());
        return shared_storage(FaultInjectStore::new(Box::new(store), faults.clone()));
    }
    if let Some((n, w)) = replicated_params(which) {
        // The replicated store consults the shared handle itself at its
        // per-replica `replica/r<i>/{store,load}` sites; the outer
        // FaultInjectStore adds the client-side `storage/replicated(N,w)`
        // sites, so both the client's path and every replica's path are
        // swept.
        let store = ReplicatedStore::new(ReplicaSet::new(n), ReplicaConfig::new(n, w))
            .with_faults(faults.clone());
        return shared_storage(FaultInjectStore::new(Box::new(store), faults.clone()));
    }
    shared_storage(FaultInjectStore::new(raw_backend(which), faults.clone()))
}

fn build_mechanism(which: &str, storage: SharedStorage) -> Box<dyn Mechanism> {
    match which {
        "user-level" => Box::new(UserLevelMechanism::new(
            "libckpt",
            JOB,
            storage,
            TrackerKind::UserPage,
            Trigger::Signal { sig: Sig::SIGUSR1 },
        )),
        "syscall" => Box::new(SyscallMechanism::new(
            "epckpt",
            SyscallVariant::ByPid,
            JOB,
            storage,
            TrackerKind::KernelPage,
        )),
        "kernel-signal" => Box::new(KernelSignalMechanism::new(
            "chpox",
            JOB,
            storage,
            TrackerKind::KernelPage,
        )),
        "kernel-thread" => Box::new(KernelThreadMechanism::new(
            "crak",
            JOB,
            storage,
            TrackerKind::KernelPage,
            KthreadIface::Ioctl,
            KthreadVariant::default(),
        )),
        "fork-concurrent" => Box::new(ForkConcurrentMechanism::new("forkckpt", JOB, storage)),
        "hardware" => Box::new(HardwareMechanism::new(HwFlavor::Revive, JOB, storage)),
        other => panic!("unknown mechanism {other}"),
    }
}

/// Where a process-level scenario ended: the (possibly crashed) kernel,
/// the mechanism (it carries the restart target), and the shared storage.
struct ScenarioEnd {
    pid: Pid,
    mech: Box<dyn Mechanism>,
    storage: SharedStorage,
    work_at_end: u64,
    ckpt_error: Option<String>,
}

/// Run the standard scenario: spawn the app, run, checkpoint, run,
/// checkpoint again, run. Any injected fault surfaces as `ckpt_error`;
/// the scenario then stops where a real crash would have stopped it.
fn run_mech_scenario(mechanism: &str, backend: &str, faults: &FaultHandle) -> ScenarioEnd {
    let mut k = Kernel::new(CostModel::circa_2005());
    k.set_faults(faults.clone());
    let pid = k
        .spawn_native(NativeKind::SparseRandom, app_params())
        .expect("spawn");
    let _ = k.run_for(RUN1_NS);
    let storage = injected_storage(backend, faults);
    let mut mech = build_mechanism(mechanism, storage.clone());
    let mut ckpt_error = None;
    if let Err(e) = mech.prepare(&mut k, pid) {
        ckpt_error = Some(e.to_string());
    }
    if ckpt_error.is_none() {
        match mech.checkpoint(&mut k, pid) {
            Ok(_) => {
                let _ = k.run_for(RUN2_NS);
                match mech.checkpoint(&mut k, pid) {
                    Ok(_) => {
                        let _ = k.run_for(RUN3_NS);
                    }
                    Err(e) => ckpt_error = Some(e.to_string()),
                }
            }
            Err(e) => ckpt_error = Some(e.to_string()),
        }
    }
    let work_at_end = k.process(pid).map(|p| p.work_done).unwrap_or(0);
    ScenarioEnd {
        pid,
        mech,
        storage,
        work_at_end,
        ckpt_error,
    }
}

/// Does a decodable full chain for the scenario's process survive in
/// storage? Used to validate `Detected` cells: refusing to restart while an
/// intact image exists would be a violation, not a detection.
fn intact_chain_exists(storage: &SharedStorage, pid: Pid) -> bool {
    let cost = CostModel::circa_2005();
    let s = storage.lock();
    load_latest_valid_chain(&**s, JOB, pid.0, &cost, |_| Ok(())).is_ok()
}

// ---------------------------------------------------------------------
// Site enumeration and cell execution
// ---------------------------------------------------------------------

/// Fault-free recording pass for one column: returns every site the
/// scenario (including node failure, repair, and restart) visits.
fn record_sites(cfg: MatrixConfig) -> Vec<SiteRecord> {
    let faults = FaultHandle::recording();
    if cfg.mechanism == "hibernate" {
        let _ = run_hibernate_scenario(cfg.backend, &faults);
        return faults.sites();
    }
    let end = run_mech_scenario(cfg.mechanism, cfg.backend, &faults);
    {
        let mut s = end.storage.lock();
        s.on_node_failure();
        s.on_node_repair();
    }
    let mut mech = end.mech;
    let mut k2 = Kernel::new(CostModel::circa_2005());
    k2.set_faults(faults.clone());
    let _ = mech.restart(&mut k2, RestorePid::Fresh);
    faults.sites()
}

/// The three fault kinds for one recorded site; a torn write only applies
/// where a byte stream is actually written. Public so satellite tiers
/// living in other crates (the live-migration tier in
/// `ckpt-cluster::migmatrix`) sweep the exact same fault kinds.
pub fn faults_for(site: &SiteRecord) -> Vec<(&'static str, Option<Fault>)> {
    let torn = if site.bytes >= 2 {
        Some(Fault::TornWrite {
            keep_bytes: site.bytes / 2,
        })
    } else {
        None
    };
    vec![
        ("fail-stop", Some(Fault::FailStop)),
        ("transient", Some(Fault::Transient)),
        ("torn-write", torn),
    ]
}

/// Run one armed cell for a process-level mechanism.
fn run_mech_cell(cfg: MatrixConfig, site: &str, fault: Fault) -> CellOutcome {
    let faults = FaultHandle::armed(site, fault);
    let end = run_mech_scenario(cfg.mechanism, cfg.backend, &faults);
    let fired_before_restart = faults.fired().is_some();
    // The machine event: the node fails (losing volatile media) and is
    // repaired (or replaced) before the restart attempt.
    faults.clear_crash();
    {
        let mut s = end.storage.lock();
        s.on_node_failure();
        s.on_node_repair();
    }
    let mut mech = end.mech;
    let mut k2 = Kernel::new(CostModel::circa_2005());
    k2.set_faults(faults.clone());
    let mut restart = mech.restart(&mut k2, RestorePid::Fresh);
    if restart.is_err() && !fired_before_restart && faults.fired().is_some() {
        // The injected crash hit the restart itself. Recovery from a crash
        // *during* recovery is simply another restart attempt.
        faults.clear_crash();
        let mut k3 = Kernel::new(CostModel::circa_2005());
        k3.set_faults(faults.clone());
        restart = mech.restart(&mut k3, RestorePid::Fresh);
        k2 = k3;
    }
    let params = app_params();
    match restart {
        Ok(r) => match verify_restored(&k2, r.pid, &params) {
            Ok(step) => {
                if step != r.work_done {
                    return CellOutcome::Violation {
                        what: format!(
                            "restart reported work {} but guest is at step {step}",
                            r.work_done
                        ),
                    };
                }
                CellOutcome::Restarted {
                    lost_steps: end.work_at_end.saturating_sub(step),
                }
            }
            Err(what) => CellOutcome::Violation { what },
        },
        Err(e) => {
            if intact_chain_exists(&end.storage, end.pid) {
                CellOutcome::Violation {
                    what: format!("restart refused ({e}) but an intact chain survives"),
                }
            } else {
                let error = end.ckpt_error.unwrap_or_else(|| e.to_string());
                CellOutcome::Detected { error }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Hibernation (whole-machine) scenarios
// ---------------------------------------------------------------------

struct HibernateEnd {
    susp: SoftwareSuspend,
    storage: SharedStorage,
    pids: Vec<Pid>,
    works: Vec<u64>,
    hib_error: Option<String>,
}

fn run_hibernate_scenario(backend: &str, faults: &FaultHandle) -> HibernateEnd {
    let mut k = Kernel::new(CostModel::circa_2005());
    k.set_faults(faults.clone());
    let mut pids = Vec::new();
    for _ in 0..2 {
        pids.push(
            k.spawn_native(NativeKind::SparseRandom, app_params())
                .expect("spawn"),
        );
    }
    let _ = k.run_for(RUN1_NS);
    let storage = injected_storage(backend, faults);
    let mut susp = SoftwareSuspend::new(storage.clone());
    let mode = if backend == "ram" {
        SuspendMode::ToRam
    } else {
        SuspendMode::ToDisk
    };
    let hib_error = susp.hibernate(&mut k, mode).err().map(|e| e.to_string());
    let works = pids
        .iter()
        .map(|p| k.process(*p).map(|p| p.work_done).unwrap_or(0))
        .collect();
    // Power-down follows the hibernation (that is its entire purpose);
    // during recording this also enumerates the resume-side sites.
    faults.clear_crash();
    storage.lock().on_power_down();
    HibernateEnd {
        susp,
        storage,
        pids,
        works,
        hib_error,
    }
}

/// How many decodable swsusp images exist in storage right now?
fn decodable_hibernate_images(storage: &SharedStorage) -> usize {
    let cost = CostModel::circa_2005();
    let s = storage.lock();
    s.list()
        .iter()
        .filter(|key| key.starts_with("swsusp/"))
        .filter(|key| {
            s.load(key, &cost)
                .ok()
                .and_then(|(bytes, _)| ckpt_image::decode(&bytes).ok())
                .is_some()
        })
        .count()
}

fn run_hibernate_cell(backend: &str, site: &str, fault: Fault) -> CellOutcome {
    let faults = FaultHandle::armed(site, fault);
    let end = run_hibernate_scenario(backend, &faults);
    let fired_before_resume = faults.fired().is_some();
    let mut k2 = Kernel::new(CostModel::circa_2005());
    k2.set_faults(faults.clone());
    let mut susp = end.susp;
    let mut resume = susp.resume(&mut k2);
    if resume.is_err() && !fired_before_resume && faults.fired().is_some() {
        faults.clear_crash();
        let mut k3 = Kernel::new(CostModel::circa_2005());
        k3.set_faults(faults.clone());
        resume = susp.resume(&mut k3);
        k2 = k3;
    }
    let params = app_params();
    match resume {
        Ok(restored) => {
            let mut lost = 0u64;
            for (i, pid) in restored.iter().enumerate() {
                match verify_restored(&k2, *pid, &params) {
                    Ok(step) => {
                        lost += end.works.get(i).copied().unwrap_or(0).saturating_sub(step);
                    }
                    Err(what) => return CellOutcome::Violation { what },
                }
            }
            if restored.len() != end.pids.len() {
                return CellOutcome::Violation {
                    what: format!(
                        "resume brought back {} of {} processes",
                        restored.len(),
                        end.pids.len()
                    ),
                };
            }
            CellOutcome::Restarted { lost_steps: lost }
        }
        Err(e) => {
            // A refusal is only a valid detection if the committed image
            // set did not in fact survive intact.
            if end.hib_error.is_none()
                && decodable_hibernate_images(&end.storage) == end.pids.len()
            {
                CellOutcome::Violation {
                    what: format!("resume refused ({e}) but all hibernation images survive"),
                }
            } else {
                let error = end.hib_error.unwrap_or_else(|| e.to_string());
                CellOutcome::Detected { error }
            }
        }
    }
}

// ---------------------------------------------------------------------
// The matrix
// ---------------------------------------------------------------------

/// Run every cell of one column.
pub fn run_config(cfg: MatrixConfig) -> Vec<MatrixCell> {
    let mut cells = Vec::new();
    for site in record_sites(cfg) {
        for (label, fault) in faults_for(&site) {
            let outcome = match fault {
                None => CellOutcome::Skipped {
                    reason: format!("{label} requires a byte stream at this site"),
                },
                Some(f) => {
                    if cfg.mechanism == "hibernate" {
                        run_hibernate_cell(cfg.backend, &site.name, f)
                    } else {
                        run_mech_cell(cfg, &site.name, f)
                    }
                }
            };
            cells.push(MatrixCell {
                mechanism: cfg.mechanism,
                backend: cfg.backend,
                site: site.name.clone(),
                fault: label,
                outcome,
            });
        }
    }
    cells
}

/// Run the full crash matrix: every mechanism family × every backend ×
/// every recorded site × every fault kind.
pub fn run_crash_matrix() -> MatrixReport {
    let mut cells = Vec::new();
    for cfg in all_configs() {
        cells.extend(run_config(cfg));
    }
    MatrixReport { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_digest_is_step_exact_and_deterministic() {
        let p = app_params();
        let a = reference_digest(&p, 50).unwrap();
        let b = reference_digest(&p, 50).unwrap();
        let c = reference_digest(&p, 51).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c, "one extra step must change the digest");
    }

    #[test]
    fn clean_scenario_restarts_bit_exact() {
        // No fault armed at all: the scenario must classify as Restarted
        // with zero violations for every backend.
        for backend in BACKENDS {
            let faults = FaultHandle::disabled();
            let end = run_mech_scenario("syscall", backend, &faults);
            assert!(end.ckpt_error.is_none(), "{backend}: {:?}", end.ckpt_error);
            {
                let mut s = end.storage.lock();
                s.on_node_failure();
                s.on_node_repair();
            }
            let mut mech = end.mech;
            let mut k2 = Kernel::new(CostModel::circa_2005());
            let r = mech.restart(&mut k2, RestorePid::Fresh).unwrap();
            let step = verify_restored(&k2, r.pid, &app_params()).unwrap();
            assert_eq!(step, r.work_done);
            assert!(end.work_at_end >= step);
        }
    }

    #[test]
    fn recording_enumerates_checkpoint_and_restart_sites() {
        let sites = record_sites(MatrixConfig {
            mechanism: "syscall",
            backend: "local-disk",
        });
        let names: Vec<&str> = sites.iter().map(|s| s.name.as_str()).collect();
        let has = |frag: &str| names.iter().any(|n| n.contains(frag));
        assert!(has("mech/epckpt/freeze"), "{names:?}");
        assert!(has("mech/epckpt/capture"), "{names:?}");
        assert!(has("mech/epckpt/store"), "{names:?}");
        assert!(has("mech/epckpt/walk"), "incremental second checkpoint: {names:?}");
        assert!(has("storage/local-disk/store"), "{names:?}");
        assert!(has("storage/local-disk/load"), "{names:?}");
        assert!(has("chain/seg"), "{names:?}");
        assert!(has("mech/restart/restore"), "{names:?}");
        // Store sites carry byte sizes so torn writes can split them.
        assert!(sites
            .iter()
            .any(|s| s.name.contains("/store") && s.bytes > 0));
    }

    #[test]
    fn fail_stop_mid_store_falls_back_to_previous_checkpoint() {
        let cfg = MatrixConfig {
            mechanism: "syscall",
            backend: "local-disk",
        };
        let sites = record_sites(cfg);
        let store2 = sites
            .iter()
            .find(|s| s.name.contains("storage/local-disk/store@2"))
            .expect("second store site recorded");
        let torn = Fault::TornWrite {
            keep_bytes: store2.bytes / 2,
        };
        let out = run_mech_cell(cfg, &store2.name, torn);
        match out {
            CellOutcome::Restarted { lost_steps } => {
                assert!(lost_steps > 0, "rolled back past the torn checkpoint")
            }
            other => panic!("expected fallback restart, got {other:?}"),
        }
    }

    #[test]
    fn dedup_clean_scenario_restarts_bit_exact() {
        // The dedup tier with no fault armed must restart bit-exact for
        // both backings (plain disk and the replicated quorum).
        for backend in DEDUP_BACKENDS {
            let faults = FaultHandle::disabled();
            let end = run_mech_scenario(DEDUP_MECH, backend, &faults);
            assert!(end.ckpt_error.is_none(), "{backend}: {:?}", end.ckpt_error);
            {
                let mut s = end.storage.lock();
                s.on_node_failure();
                s.on_node_repair();
            }
            let mut mech = end.mech;
            let mut k2 = Kernel::new(CostModel::circa_2005());
            let r = mech.restart(&mut k2, RestorePid::Fresh).unwrap();
            let step = verify_restored(&k2, r.pid, &app_params()).unwrap();
            assert_eq!(step, r.work_done);
        }
    }

    #[test]
    fn dedup_recording_enumerates_cas_commit_sites() {
        let sites = record_sites(MatrixConfig {
            mechanism: DEDUP_MECH,
            backend: "dedup(local-disk)",
        });
        let names: Vec<&str> = sites.iter().map(|s| s.name.as_str()).collect();
        assert!(
            names.iter().any(|n| n.contains("cas/commit")),
            "manifest-commit site must be recorded: {names:?}"
        );
        // Inner-backend store sites still show through the decorator.
        assert!(
            names.iter().any(|n| n.contains("storage/local-disk/store")),
            "{names:?}"
        );
    }

    #[test]
    fn dedup_torn_cas_commit_never_silently_corrupts() {
        // A torn manifest write must surface as typed detection or a
        // bit-exact restart from an older chain — never a Violation.
        let cfg = MatrixConfig {
            mechanism: DEDUP_MECH,
            backend: "dedup(local-disk)",
        };
        let sites = record_sites(cfg);
        let commits: Vec<_> = sites
            .iter()
            .filter(|s| s.name.contains("cas/commit"))
            .collect();
        assert!(!commits.is_empty());
        let mut saw_restart = false;
        for site in commits {
            let torn = Fault::TornWrite {
                keep_bytes: (site.bytes / 2).max(1),
            };
            let out = run_mech_cell(cfg, &site.name, torn);
            match out {
                CellOutcome::Restarted { .. } => saw_restart = true,
                CellOutcome::Detected { .. } => {}
                other => panic!("{}: silent corruption path: {other:?}", site.name),
            }
        }
        assert!(
            saw_restart,
            "at least one torn commit must fall back to an older chain"
        );
    }

    #[test]
    fn striped_clean_scenario_restarts_bit_exact() {
        for backend in STRIPED_BACKENDS {
            let faults = FaultHandle::disabled();
            let end = run_mech_scenario(STRIPED_MECH, backend, &faults);
            assert!(end.ckpt_error.is_none(), "{backend}: {:?}", end.ckpt_error);
            {
                let mut s = end.storage.lock();
                s.on_node_failure();
                s.on_node_repair();
            }
            let mut mech = end.mech;
            let mut k2 = Kernel::new(CostModel::circa_2005());
            let r = mech.restart(&mut k2, RestorePid::Fresh).unwrap();
            let step = verify_restored(&k2, r.pid, &app_params()).unwrap();
            assert_eq!(step, r.work_done);
        }
    }

    #[test]
    fn striped_recording_enumerates_per_stripe_batch_sites() {
        let sites = record_sites(MatrixConfig {
            mechanism: STRIPED_MECH,
            backend: "striped(2x3,2)",
        });
        let names: Vec<&str> = sites.iter().map(|s| s.name.as_str()).collect();
        // Stores on the striped pool travel the framed batch path, so the
        // shard-commit tier's per-stripe admission sites are all recorded.
        assert!(
            names.iter().any(|n| n.starts_with("stripe") && n.contains("/batch")),
            "per-stripe batch-commit sites must be recorded: {names:?}"
        );
        // Batch sites carry the frame size so torn writes can split them.
        assert!(
            sites.iter().any(|s| s.name.contains("/batch") && s.bytes > 0),
            "batch sites must carry frame byte sizes"
        );
    }

    #[test]
    fn erasure_clean_scenario_restarts_bit_exact() {
        for backend in ERASURE_BACKENDS {
            let faults = FaultHandle::disabled();
            let end = run_mech_scenario(ERASURE_MECH, backend, &faults);
            assert!(end.ckpt_error.is_none(), "{backend}: {:?}", end.ckpt_error);
            {
                let mut s = end.storage.lock();
                s.on_node_failure();
                s.on_node_repair();
            }
            let mut mech = end.mech;
            let mut k2 = Kernel::new(CostModel::circa_2005());
            let r = mech.restart(&mut k2, RestorePid::Fresh).unwrap();
            let step = verify_restored(&k2, r.pid, &app_params()).unwrap();
            assert_eq!(step, r.work_done);
        }
    }

    #[test]
    fn erasure_recording_enumerates_per_shard_batch_sites() {
        let sites = record_sites(MatrixConfig {
            mechanism: ERASURE_MECH,
            backend: "rs(4,2)",
        });
        let names: Vec<&str> = sites.iter().map(|s| s.name.as_str()).collect();
        // Stores on the coded store travel the framed shard batch path,
        // so every shard node's admission site is recorded — all k + m.
        for i in 0..6 {
            assert!(
                names.iter().any(|n| n.starts_with(&format!("ec/s{i}/batch"))),
                "shard {i} batch-commit site must be recorded: {names:?}"
            );
        }
        // Shard sites carry the frame size so torn writes can split them.
        assert!(
            sites.iter().any(|s| s.name.contains("/batch") && s.bytes > 0),
            "shard batch sites must carry frame byte sizes"
        );
    }

    #[test]
    fn lost_shard_mid_commit_still_restarts_by_reconstruction() {
        // Fail-stop one shard node during the second checkpoint's batch
        // commit: the write quorum (k + ceil(m/2) = 5 of 6) still holds,
        // and the restart must reconstruct bit-exact around the lost
        // shard — the cell the whole coding tier exists for.
        let cfg = MatrixConfig {
            mechanism: ERASURE_MECH,
            backend: "rs(4,2)",
        };
        let sites = record_sites(cfg);
        let batch2 = sites
            .iter()
            .find(|s| s.name.starts_with("ec/s0/batch@2"))
            .expect("second-checkpoint shard batch site recorded");
        let out = run_mech_cell(cfg, &batch2.name, Fault::FailStop);
        assert!(
            matches!(out, CellOutcome::Restarted { .. }),
            "expected a reconstructing restart, got {out:?}"
        );
    }

    #[test]
    fn fail_stop_before_any_store_is_detected() {
        let cfg = MatrixConfig {
            mechanism: "syscall",
            backend: "local-disk",
        };
        let out = run_mech_cell(cfg, "mech/epckpt/capture@1", Fault::FailStop);
        assert!(
            matches!(out, CellOutcome::Detected { .. }),
            "no image was ever written, restart must be refused: {out:?}"
        );
    }
}
