//! Kernel-context capture and restore: walking a PCB into a
//! [`CheckpointImage`] and rebuilding a process from one.
//!
//! This is the code path the paper's Section 4.1 calls "enormously
//! simplified" by kernel residency: every piece of state is read directly
//! from the PCB with no protection-domain crossings — contrast with the
//! user-level gather in [`crate::agents`], which must issue a syscall per
//! fact.

use ckpt_image::{
    CheckpointImage, FdRecord, FileContentRecord, ImageHeader, ImageKind, PageRecord,
    PolicyRecord, ProgramRecord, RegsRecord, SigRecord, TimerRecord, VmaRecord,
};
use simos::fs::FsNode;
use simos::mem::{VmaKind, PAGE_SIZE};
use simos::pcb::{FdEntry, Pcb, ProcState, ProgramSpec, Regs};
use simos::trace::TlbFlushSite;
use simos::timer::TimerAction;
use simos::types::{Fd, Pid, SimError, SimResult};
use simos::Kernel;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Which pages to include in the image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageSelection {
    /// Every resident page (a full checkpoint).
    All,
    /// Exactly these page numbers (an incremental checkpoint).
    Set(BTreeSet<u64>),
}

/// Capture configuration. Construct via [`CaptureOptions::full`] or
/// [`CaptureOptions::incremental`] and override fields afterwards — the
/// struct is `#[non_exhaustive]` so new knobs can be added without
/// breaking downstream crates.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CaptureOptions {
    pub mechanism: String,
    pub seq: u64,
    pub parent_seq: u64,
    pub kind: ImageKind,
    pub pages: PageSelection,
    /// Apply zero-elision/RLE to page payloads. PsncR/C famously "does not
    /// perform any data optimization"; set `false` to model that.
    pub compress: bool,
    /// Also snapshot the contents of files the process has open (UCLiK's
    /// file-content restoration).
    pub save_file_contents: bool,
    /// Node id recorded in the header.
    pub node: u32,
    /// Worker pool for page encoding. `None` (or a width-1 pool) takes the
    /// exact serial path; wider pools overlap the page gather with
    /// compression ([`ckpt_image::capture_pages_pipelined`]) — output is
    /// byte-identical at every width.
    pub encode_pool: Option<Arc<ckpt_par::Pool>>,
}

impl CaptureOptions {
    pub fn full(mechanism: &str, seq: u64) -> Self {
        CaptureOptions {
            mechanism: mechanism.to_string(),
            seq,
            parent_seq: 0,
            kind: ImageKind::Full,
            pages: PageSelection::All,
            compress: true,
            save_file_contents: false,
            node: 0,
            encode_pool: None,
        }
    }

    pub fn incremental(mechanism: &str, seq: u64, parent: u64, dirty: BTreeSet<u64>) -> Self {
        CaptureOptions {
            mechanism: mechanism.to_string(),
            seq,
            parent_seq: parent,
            kind: ImageKind::Incremental,
            pages: PageSelection::Set(dirty),
            compress: true,
            save_file_contents: false,
            node: 0,
            encode_pool: None,
        }
    }
}

/// Capture `pid`'s state into an image, charging kernel-side copy costs.
/// The caller is responsible for the process being quiescent (frozen, or
/// running this code in its own context).
pub fn capture_image(k: &mut Kernel, pid: Pid, opts: &CaptureOptions) -> SimResult<CheckpointImage> {
    let taken_at_ns = k.now();
    let (regs, brk, work_done, policy, vmas, page_numbers, fd_list, sig, program) = {
        let p = k.process(pid).ok_or(SimError::NoSuchProcess(pid))?;
        let page_numbers: Vec<u64> = match &opts.pages {
            PageSelection::All => p.mem.resident_pages().collect(),
            PageSelection::Set(s) => s
                .iter()
                .copied()
                .filter(|pn| p.mem.page_data(*pn).is_some())
                .collect(),
        };
        (
            RegsRecord::from(&p.regs),
            p.mem.brk(),
            p.work_done,
            PolicyRecord::capture(p.policy),
            p.mem.vmas().iter().map(VmaRecord::from).collect::<Vec<_>>(),
            page_numbers,
            p.fds.iter().collect::<Vec<(Fd, FdEntry)>>(),
            SigRecord::capture(&p.sig),
            ProgramRecord::capture(&p.program),
        )
    };
    // Pages: copy out of the address space (charged as kernel memcpy).
    // With a pool wider than 1, the gather (caller thread, reading the
    // frozen address space) overlaps with compression (pool workers); the
    // ordered merge makes the record list identical to the serial walk.
    let pages = {
        let p = k.process(pid).expect("checked above");
        let par = opts
            .encode_pool
            .as_deref()
            .filter(|pool| pool.workers() > 1 && opts.compress);
        match par {
            Some(pool) => ckpt_image::capture_pages_pipelined(pool, |push| {
                for pn in &page_numbers {
                    let data = p.mem.page_data(*pn).expect("resident");
                    push((*pn, data.to_vec()));
                }
            }),
            None => {
                let mut pages = Vec::with_capacity(page_numbers.len());
                for pn in &page_numbers {
                    let data = p.mem.page_data(*pn).expect("resident");
                    let rec = if opts.compress {
                        PageRecord::capture(*pn, data)
                    } else {
                        PageRecord {
                            page_no: *pn,
                            enc: ckpt_image::PageEncoding::Raw,
                            payload: data.to_vec(),
                        }
                    };
                    pages.push(rec);
                }
                pages
            }
        }
    };
    let copy_cost = k.cost.memcpy(page_numbers.len() as u64 * PAGE_SIZE);
    k.charge(copy_cost);
    // File descriptors, with dup groups.
    let mut group_of: BTreeMap<u32, u32> = BTreeMap::new();
    let mut next_group = 0u32;
    let mut fds = Vec::new();
    let mut files = Vec::new();
    let mut seen_paths = BTreeSet::new();
    for (fd, entry) in fd_list {
        let Some(ofd) = k.ofd(entry.ofd) else { continue };
        let group = *group_of.entry(entry.ofd.0).or_insert_with(|| {
            let g = next_group;
            next_group += 1;
            g
        });
        fds.push(FdRecord {
            fd: fd.0,
            path: ofd.path.clone(),
            offset: ofd.offset,
            flags: FdRecord::pack_flags(ofd.flags),
            group,
        });
        if opts.save_file_contents && seen_paths.insert(ofd.path.clone()) {
            if let Some(FsNode::File { data }) = k.fs.get(&ofd.path) {
                files.push(FileContentRecord {
                    path: ofd.path.clone(),
                    data: data.clone(),
                });
            }
        }
    }
    // Interval timers (relative to now).
    let timers: Vec<TimerRecord> = k
        .timers
        .owned_by(pid)
        .into_iter()
        .filter_map(|t| match t.action {
            TimerAction::SendSignal { sig, .. } => Some(TimerRecord {
                in_ns: t.at.saturating_sub(taken_at_ns),
                period_ns: t.period.unwrap_or(0),
                sig: sig.0,
            }),
            _ => None,
        })
        .collect();
    let img = CheckpointImage {
        header: ImageHeader {
            pid: pid.0,
            seq: opts.seq,
            parent_seq: opts.parent_seq,
            kind: opts.kind,
            taken_at_ns,
            mechanism: opts.mechanism.clone(),
            node: opts.node,
        },
        regs,
        brk,
        work_done,
        policy,
        vmas,
        pages,
        fds,
        files,
        sig,
        timers,
        program,
    };
    Ok(img)
}

/// How to choose the restored process's pid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestorePid {
    /// Reuse the pid recorded in the image (UCLiK's "restoring the original
    /// process ID"); fails if it is taken on this kernel.
    Original,
    /// Take any free pid.
    Fresh,
    /// A specific pid (used by pod virtualization).
    Specific(Pid),
}

/// Restore configuration. Construct via [`RestoreOptions::default`],
/// [`RestoreOptions::fresh_running`], or [`RestoreOptions::stopped`] and
/// override fields afterwards — `#[non_exhaustive]`, like
/// [`CaptureOptions`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RestoreOptions {
    pub pid: RestorePid,
    /// Enqueue the process immediately (otherwise it is left stopped).
    pub run: bool,
}

impl Default for RestoreOptions {
    fn default() -> Self {
        RestoreOptions {
            pid: RestorePid::Fresh,
            run: true,
        }
    }
}

impl RestoreOptions {
    /// Restore under `pid` and enqueue it immediately.
    pub fn fresh_running(pid: RestorePid) -> Self {
        RestoreOptions { pid, run: true }
    }

    /// Restore under `pid` but leave it stopped (migration installs the
    /// process before releasing it; pods re-map pids first).
    pub fn stopped(pid: RestorePid) -> Self {
        RestoreOptions { pid, run: false }
    }
}

/// Rebuild a process from a (full) image on `k`. Charges kernel-side copy
/// costs; storage-load costs are the caller's.
pub fn restore_image(
    k: &mut Kernel,
    img: &CheckpointImage,
    opts: &RestoreOptions,
) -> SimResult<Pid> {
    if img.header.kind != ImageKind::Full {
        return Err(SimError::Usage(
            "restore requires a full image; reconstruct incremental chains first".into(),
        ));
    }
    let program: ProgramSpec = img
        .program
        .to_spec()
        .ok_or_else(|| SimError::Usage("unknown program kind in image".into()))?;
    // Rebuild the address space: canonical layout sized from the image's
    // text/data VMAs, then explicit regions, then page contents.
    let text_len = img
        .vmas
        .iter()
        .find(|v| v.kind == 0)
        .map(|v| v.end - v.start)
        .unwrap_or(PAGE_SIZE);
    let data_len = img
        .vmas
        .iter()
        .find(|v| v.kind == 1)
        .map(|v| v.end - v.start)
        .unwrap_or(PAGE_SIZE);
    let mut mem = simos::mem::AddressSpace::new(text_len, data_len);
    for v in &img.vmas {
        let vma = v
            .to_vma()
            .ok_or_else(|| SimError::Usage("bad VMA kind in image".into()))?;
        if matches!(vma.kind, VmaKind::Mmap | VmaKind::SharedLib) {
            mem.push_vma_raw(vma);
        }
    }
    mem.restore_brk(img.brk);
    let mut restored_bytes = 0u64;
    for p in &img.pages {
        let data = p
            .expand()
            .map_err(|e| SimError::Usage(format!("corrupt page {}: {e}", p.page_no)))?;
        mem.poke(p.page_no * PAGE_SIZE, &data);
        restored_bytes += PAGE_SIZE;
    }
    let copy_cost = k.cost.memcpy(restored_bytes);
    k.charge(copy_cost);
    // Rebuilding an address space is a translation-invalidation event (the
    // restored process resumes with a cold TLB).
    k.trace.soft_tlb_flush(TlbFlushSite::Restore);
    // File contents (UCLiK-style) before descriptors reference them.
    for f in &img.files {
        let _ = k.fs.create_file(&f.path);
        let _ = k.fs.write_at(&f.path, 0, &f.data);
    }
    // Descriptor table with dup groups sharing one OFD.
    let mut fd_table = simos::pcb::FdTable::new();
    let mut group_ofd: BTreeMap<u32, simos::types::OfdId> = BTreeMap::new();
    for f in &img.fds {
        let ofd = *group_ofd
            .entry(f.group)
            .or_insert_with(|| k.restore_ofd(&f.path, f.offset, f.flags_decoded()));
        fd_table.insert_at(
            Fd(f.fd),
            FdEntry {
                ofd,
                close_on_exec: false,
            },
        );
    }
    let pid = match opts.pid {
        RestorePid::Original => Pid(img.header.pid),
        RestorePid::Fresh => k.fresh_pid(),
        RestorePid::Specific(p) => p,
    };
    let pcb = Pcb {
        pid,
        ppid: Pid(0),
        state: if opts.run {
            ProcState::Ready
        } else {
            ProcState::Stopped
        },
        policy: img.policy.to_policy(),
        regs: Regs {
            pc: img.regs.pc,
            gpr: img.regs.gpr,
        },
        mem,
        fds: fd_table,
        sig: img.sig.restore(),
        program,
        user_rt: simos::userrt::UserRuntime::new(),
        cpu_ns: 0,
        start_ns: k.now(),
        work_done: img.work_done,
        frozen_for_ckpt: false,
        cow_pending: Default::default(),
    };
    let pid = k.adopt_process(pcb)?;
    // Re-arm saved interval timers relative to now.
    let now = k.now();
    for t in &img.timers {
        k.timers.arm(
            now + t.in_ns,
            if t.period_ns > 0 {
                Some(t.period_ns)
            } else {
                None
            },
            TimerAction::SendSignal {
                pid,
                sig: simos::signal::Sig(t.sig),
            },
            Some(pid),
        );
    }
    Ok(pid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::apps::{AppParams, NativeKind};
    use simos::cost::CostModel;
    use simos::fs::OpenFlags;
    use simos::syscall::Syscall;

    fn kernel() -> Kernel {
        Kernel::new(CostModel::circa_2005())
    }

    #[test]
    fn full_capture_restore_preserves_native_execution() {
        // The canonical correctness property: run half, capture, restore on
        // a fresh kernel, run to completion; final state must equal an
        // uninterrupted run.
        for kind in NativeKind::ALL {
            let params = AppParams::small();
            let (ref_step, ref_sum) = simos::apps::reference_run(kind, &params);
            let mut k1 = kernel();
            let pid = k1.spawn_native(kind, params.clone()).unwrap();
            // Run part way, in sub-step-sized chunks so we stop before the
            // app completes.
            while k1.process(pid).unwrap().work_done < params.total_steps / 2 {
                k1.run_for(1_000).unwrap();
            }
            assert!(!k1.process(pid).unwrap().has_exited(), "{kind:?} overshot");
            k1.freeze_process(pid).unwrap();
            let img = capture_image(&mut k1, pid, &CaptureOptions::full("test", 1)).unwrap();
            // Restore on a brand-new kernel.
            let mut k2 = kernel();
            let pid2 = restore_image(&mut k2, &img, &RestoreOptions::default()).unwrap();
            k2.run_until_exit(pid2).unwrap();
            let p = k2.process(pid2).unwrap();
            let mut buf = [0u8; 8];
            p.mem.peek(simos::apps::H_STEP, &mut buf);
            assert_eq!(u64::from_le_bytes(buf), ref_step, "{kind:?}: wrong step");
            p.mem.peek(simos::apps::H_SUM, &mut buf);
            assert_eq!(u64::from_le_bytes(buf), ref_sum, "{kind:?}: wrong checksum");
        }
    }

    #[test]
    fn capture_restore_preserves_vm_execution() {
        let text = simos::asm::programs::summer(100);
        // Reference: run to completion uninterrupted.
        let mut kr = kernel();
        let rp = kr.spawn_vm(text.clone(), "summer").unwrap();
        kr.run_until_exit(rp).unwrap();
        let mut expect = [0u8; 8];
        kr.process(rp).unwrap().mem.peek(simos::mem::DATA_BASE, &mut expect);

        let mut k1 = kernel();
        let pid = k1.spawn_vm(text, "summer").unwrap();
        // Execute some instructions but not all.
        k1.run_for(150).unwrap();
        assert!(!k1.process(pid).unwrap().has_exited());
        k1.freeze_process(pid).unwrap();
        let img = capture_image(&mut k1, pid, &CaptureOptions::full("test", 1)).unwrap();
        let mut k2 = kernel();
        let pid2 = restore_image(&mut k2, &img, &RestoreOptions::default()).unwrap();
        k2.run_until_exit(pid2).unwrap();
        let mut got = [0u8; 8];
        k2.process(pid2).unwrap().mem.peek(simos::mem::DATA_BASE, &mut got);
        assert_eq!(got, expect);
    }

    #[test]
    fn fd_offsets_and_dup_groups_survive_restore() {
        let mut k1 = kernel();
        let pid = k1
            .spawn_native(NativeKind::SparseRandom, AppParams::small())
            .unwrap();
        let fd = Fd(k1
            .do_syscall(
                pid,
                Syscall::Open {
                    path: "/tmp/log".into(),
                    flags: OpenFlags::RDWR_CREATE,
                },
            )
            .unwrap() as u32);
        let fd2 = Fd(k1.do_syscall(pid, Syscall::Dup { fd }).unwrap() as u32);
        k1.mem_write(pid, simos::apps::ARRAY_BASE, b"12345678").unwrap();
        k1.do_syscall(
            pid,
            Syscall::Write {
                fd,
                buf: simos::apps::ARRAY_BASE,
                len: 8,
            },
        )
        .unwrap();
        k1.freeze_process(pid).unwrap();
        let mut opts = CaptureOptions::full("test", 1);
        opts.save_file_contents = true;
        let img = capture_image(&mut k1, pid, &opts).unwrap();
        assert_eq!(img.fds.len(), 2);
        assert_eq!(img.fds[0].group, img.fds[1].group, "dup group preserved");
        assert_eq!(img.files.len(), 1);

        let mut k2 = kernel();
        let pid2 = restore_image(&mut k2, &img, &RestoreOptions::default()).unwrap();
        // Both descriptors exist and share an offset of 8.
        let pos = k2
            .do_syscall(
                pid2,
                Syscall::Lseek {
                    fd: fd2,
                    offset: 0,
                    whence: simos::syscall::Whence::Cur,
                },
            )
            .unwrap();
        assert_eq!(pos, 8);
        // File contents travelled with the image.
        assert_eq!(k2.fs.read_file("/tmp/log").unwrap(), b"12345678");
    }

    #[test]
    fn restore_original_pid_conflicts_detected() {
        let mut k1 = kernel();
        let pid = k1
            .spawn_native(NativeKind::SparseRandom, AppParams::small())
            .unwrap();
        k1.freeze_process(pid).unwrap();
        let img = capture_image(&mut k1, pid, &CaptureOptions::full("t", 1)).unwrap();
        // Restoring onto the same kernel with the original pid conflicts —
        // the resource-conflict problem pods exist to solve.
        let r = restore_image(
            &mut k1,
            &img,
            &RestoreOptions {
                pid: RestorePid::Original,
                run: true,
            },
        );
        assert!(r.is_err());
        // Fresh pid works.
        let pid2 = restore_image(&mut k1, &img, &RestoreOptions::default()).unwrap();
        assert_ne!(pid2, pid);
    }

    #[test]
    fn incremental_selection_only_carries_requested_pages() {
        let mut k = kernel();
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::DenseSweep, params).unwrap();
        k.run_for(5_000_000).unwrap();
        k.freeze_process(pid).unwrap();
        let mut set = BTreeSet::new();
        set.insert(simos::apps::HEADER_BASE / PAGE_SIZE);
        let img = capture_image(
            &mut k,
            pid,
            &CaptureOptions::incremental("t", 2, 1, set),
        )
        .unwrap();
        assert_eq!(img.pages.len(), 1);
        assert_eq!(img.header.kind, ImageKind::Incremental);
    }

    #[test]
    fn pending_signals_and_timers_survive_restore() {
        let mut k1 = kernel();
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let pid = k1.spawn_native(NativeKind::SparseRandom, params).unwrap();
        k1.run_for(1_000_000).unwrap();
        k1.do_syscall(
            pid,
            Syscall::Setitimer {
                interval_ns: 40_000_000,
            },
        )
        .unwrap();
        k1.freeze_process(pid).unwrap();
        k1.post_signal(pid, simos::signal::Sig::SIGUSR1); // stays pending while frozen
        let img = capture_image(&mut k1, pid, &CaptureOptions::full("t", 1)).unwrap();
        assert!(img.sig.pending.contains(&10));
        assert_eq!(img.timers.len(), 1);
        assert_eq!(img.timers[0].period_ns, 40_000_000);

        let mut k2 = kernel();
        let pid2 = restore_image(&mut k2, &img, &RestoreOptions::default()).unwrap();
        // Pending SIGUSR1 (default action: terminate) fires on first run.
        k2.run_for(20_000_000).unwrap();
        assert_eq!(k2.process(pid2).unwrap().exit_code(), Some(128 + 10));
    }

    #[test]
    fn restore_rejects_incremental_images() {
        let mut k = kernel();
        let pid = k
            .spawn_native(NativeKind::SparseRandom, AppParams::small())
            .unwrap();
        k.freeze_process(pid).unwrap();
        let img = capture_image(
            &mut k,
            pid,
            &CaptureOptions::incremental("t", 2, 1, BTreeSet::new()),
        )
        .unwrap();
        assert!(restore_image(&mut k, &img, &RestoreOptions::default()).is_err());
    }

    #[test]
    fn pooled_capture_is_identical_to_serial() {
        let mut k = kernel();
        let mut params = AppParams::small();
        params.mem_bytes = 1024 * 1024;
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::Stencil2D, params).unwrap();
        k.run_for(5_000_000).unwrap();
        k.freeze_process(pid).unwrap();
        let serial = capture_image(&mut k, pid, &CaptureOptions::full("t", 1)).unwrap();
        for w in [2usize, 4, 8] {
            let mut opts = CaptureOptions::full("t", 1);
            opts.encode_pool = Some(Arc::new(ckpt_par::Pool::new(w)));
            // Capturing twice advances virtual time (the memcpy charge), so
            // compare everything except the header timestamp.
            let mut pooled = capture_image(&mut k, pid, &opts).unwrap();
            pooled.header.taken_at_ns = serial.header.taken_at_ns;
            assert_eq!(pooled, serial, "width {w}");
            assert_eq!(
                ckpt_image::encode(&pooled),
                ckpt_image::encode(&serial),
                "width {w} bytes"
            );
        }
    }

    #[test]
    fn uncompressed_capture_is_larger() {
        let mut k = kernel();
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::AppendLog, params).unwrap();
        k.run_for(3_000_000).unwrap();
        k.freeze_process(pid).unwrap();
        let img_c = capture_image(&mut k, pid, &CaptureOptions::full("t", 1)).unwrap();
        let mut opts = CaptureOptions::full("t", 2);
        opts.compress = false;
        let img_u = capture_image(&mut k, pid, &opts).unwrap();
        assert!(img_u.payload_bytes() >= img_c.payload_bytes());
        assert_eq!(img_u.payload_bytes(), img_u.memory_bytes());
    }
}
