//! Checkpoint-initiation policies.
//!
//! Table 1's "initiation" column separates systems whose checkpoints only
//! the application can trigger (`automatic`) from those an external party
//! can drive (`user`). The paper's autonomic-computing argument goes
//! further: initiation should be *self-managing* — "adjustment of the
//! checkpoint interval to the failure rate of the system". This module
//! provides the interval mathematics and an adaptive policy that learns
//! both the checkpoint cost and the failure rate online.

/// Young's first-order optimal checkpoint interval: `sqrt(2 · C · MTBF)`
/// for checkpoint cost `C`. (J. W. Young, CACM 1974 — the standard formula
/// the paper's era used for interval selection.)
pub fn young_interval(ckpt_cost_ns: u64, mtbf_ns: u64) -> u64 {
    if ckpt_cost_ns == 0 || mtbf_ns == 0 {
        return mtbf_ns.max(1);
    }
    let v = (2.0 * ckpt_cost_ns as f64 * mtbf_ns as f64).sqrt();
    v.round() as u64
}

/// Expected fraction of useful work (utilization) for periodic
/// checkpointing with interval `T`, checkpoint cost `C`, restart cost `R`,
/// under exponential failures with the given MTBF. First-order model:
/// overhead = C/T (checkpoint tax) + (T/2 + R)/MTBF (expected rework +
/// restart per failure).
pub fn expected_utilization(t_ns: u64, c_ns: u64, r_ns: u64, mtbf_ns: u64) -> f64 {
    if t_ns == 0 || mtbf_ns == 0 {
        return 0.0;
    }
    let t = t_ns as f64;
    let c = c_ns as f64;
    let r = r_ns as f64;
    let m = mtbf_ns as f64;
    let overhead = c / (t + c) + (t / 2.0 + r) / m;
    (1.0 - overhead).max(0.0)
}

/// How checkpoints are initiated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Only explicit external requests.
    UserInitiated,
    /// Fixed-period timer.
    Periodic { interval_ns: u64 },
    /// Self-tuning: Young's interval from observed cost and failure rate.
    Adaptive,
}

/// An adaptive interval policy: EWMA of observed checkpoint costs plus an
/// online MTBF estimate from observed failures.
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    /// Prior MTBF used until failures are observed.
    pub mtbf_prior_ns: u64,
    /// Clamp bounds for the produced interval.
    pub min_interval_ns: u64,
    pub max_interval_ns: u64,
    cost_ewma_ns: f64,
    failures: Vec<u64>,
    observation_start_ns: u64,
}

impl AdaptivePolicy {
    pub fn new(mtbf_prior_ns: u64) -> Self {
        AdaptivePolicy {
            mtbf_prior_ns,
            min_interval_ns: 1_000_000,              // 1 ms
            max_interval_ns: 3_600_000_000_000,      // 1 h
            cost_ewma_ns: 0.0,
            failures: Vec::new(),
            observation_start_ns: 0,
        }
    }

    /// Record the measured cost of a completed checkpoint.
    pub fn note_checkpoint_cost(&mut self, cost_ns: u64) {
        if self.cost_ewma_ns == 0.0 {
            self.cost_ewma_ns = cost_ns as f64;
        } else {
            self.cost_ewma_ns = 0.7 * self.cost_ewma_ns + 0.3 * cost_ns as f64;
        }
    }

    /// Record an observed failure at virtual time `at_ns`.
    pub fn note_failure(&mut self, at_ns: u64) {
        self.failures.push(at_ns);
    }

    /// Current MTBF estimate: observed failure spacing once ≥2 failures are
    /// seen, blended toward the prior before that.
    pub fn mtbf_estimate(&self, now_ns: u64) -> u64 {
        match self.failures.len() {
            0 => self.mtbf_prior_ns,
            1 => {
                // One failure: crude rate = observation window / 1.
                let window = now_ns.saturating_sub(self.observation_start_ns).max(1);
                (window + self.mtbf_prior_ns) / 2
            }
            n => {
                let first = self.failures[0];
                let last = self.failures[n - 1];
                ((last - first) / (n as u64 - 1)).max(1)
            }
        }
    }

    /// The interval to use right now.
    pub fn current_interval(&self, now_ns: u64) -> u64 {
        let cost = if self.cost_ewma_ns > 0.0 {
            self.cost_ewma_ns as u64
        } else {
            // No cost observed yet: be conservative (1 s).
            1_000_000_000
        };
        young_interval(cost, self.mtbf_estimate(now_ns))
            .clamp(self.min_interval_ns, self.max_interval_ns)
    }

    pub fn failures_seen(&self) -> usize {
        self.failures.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn young_interval_matches_formula() {
        // C = 2 s, MTBF = 1 h → sqrt(2·2·3600) = 120 s.
        let t = young_interval(2 * SEC, 3600 * SEC);
        assert_eq!(t, 120 * SEC);
    }

    #[test]
    fn young_interval_handles_degenerate_inputs() {
        assert_eq!(young_interval(0, 100), 100);
        assert_eq!(young_interval(100, 0), 1);
    }

    #[test]
    fn utilization_is_maximized_near_youngs_interval() {
        let c = 2 * SEC;
        let r = 30 * SEC;
        let mtbf = 3600 * SEC;
        let t_opt = young_interval(c, mtbf);
        let u_opt = expected_utilization(t_opt, c, r, mtbf);
        // Much shorter and much longer intervals must both be worse.
        assert!(u_opt > expected_utilization(t_opt / 20, c, r, mtbf));
        assert!(u_opt > expected_utilization(t_opt * 20, c, r, mtbf));
        assert!(u_opt > 0.9);
    }

    #[test]
    fn utilization_degrades_with_shorter_mtbf() {
        let c = 2 * SEC;
        let r = 30 * SEC;
        let u_long = expected_utilization(120 * SEC, c, r, 3600 * SEC);
        let u_short = expected_utilization(120 * SEC, c, r, 600 * SEC);
        assert!(u_long > u_short);
    }

    #[test]
    fn adaptive_policy_shrinks_interval_when_failures_arrive() {
        let mut p = AdaptivePolicy::new(3600 * SEC);
        p.note_checkpoint_cost(2 * SEC);
        let relaxed = p.current_interval(0);
        // Failures every 10 minutes.
        for i in 1..=5u64 {
            p.note_failure(i * 600 * SEC);
        }
        let tight = p.current_interval(5 * 600 * SEC);
        assert!(
            tight < relaxed,
            "interval should shrink: {relaxed} → {tight}"
        );
        assert_eq!(p.mtbf_estimate(0), 600 * SEC);
    }

    #[test]
    fn adaptive_policy_tracks_cost_changes() {
        let mut p = AdaptivePolicy::new(3600 * SEC);
        p.note_checkpoint_cost(SEC);
        let cheap = p.current_interval(0);
        for _ in 0..20 {
            p.note_checkpoint_cost(100 * SEC);
        }
        let expensive = p.current_interval(0);
        assert!(
            expensive > cheap,
            "costlier checkpoints should be spaced out: {cheap} → {expensive}"
        );
    }

    #[test]
    fn interval_clamped_to_bounds() {
        let mut p = AdaptivePolicy::new(1); // absurdly failing system
        p.note_checkpoint_cost(1);
        assert_eq!(p.current_interval(0), p.min_interval_ns);
        let mut q = AdaptivePolicy::new(u64::MAX / 4);
        q.note_checkpoint_cost(u64::MAX / 4);
        assert_eq!(q.current_interval(0), q.max_interval_ns);
    }
}
