//! # ckpt-core — the checkpoint/restart engine
//!
//! Implements every point of the paper's taxonomy (Figure 1) against the
//! [`simos`] substrate:
//!
//! * **Trackers** ([`tracker`]): full, page-protection incremental at
//!   kernel and user level, probabilistic block-hash, adaptive block,
//!   hardware cache-line.
//! * **Capture/restore** ([`capture`]): kernel-context PCB walking into
//!   [`ckpt_image::CheckpointImage`]s and back.
//! * **User-level agents** ([`agents`]): the modelled checkpoint library
//!   that gathers state through syscalls — the Section 3 schemes.
//! * **Mechanisms** ([`mechanism`]): the seven mechanism families —
//!   user library/signal/preload, new system call, kernel-mode signal
//!   handler, kernel thread, fork-concurrent, hardware-assisted.
//! * **Pod virtualization** ([`pod`]): ZAP-style resource translation for
//!   conflict-free migration.
//! * **Policies** ([`policy`]): user-initiated, periodic, and adaptive
//!   (Young's formula) checkpoint intervals.
//! * **The autonomic daemon** ([`autonomic`]): the paper's "direction
//!   forward" — automatic system-level initiation, kernel-level incremental
//!   tracking, remote storage, self-tuned interval.

pub mod agents;
pub mod autonomic;
pub mod capture;
pub mod crashpoint;
pub mod mechanism;
pub mod pod;
pub mod policy;
pub mod report;
pub mod tracker;

pub use capture::{
    capture_image, restore_image, CaptureOptions, PageSelection, RestoreOptions, RestorePid,
};
pub use report::{CkptOutcome, RestartOutcome};
pub use tracker::{Collected, Tracker, TrackerKind};

use ckpt_storage::StableStorage;
use parking_lot::Mutex;
use std::sync::Arc;

/// Storage handle shareable between mechanisms (outside the kernel) and the
/// kernel modules / agents they install (inside it).
pub type SharedStorage = Arc<Mutex<Box<dyn StableStorage>>>;

/// Wrap a backend for sharing.
pub fn shared_storage(s: impl StableStorage + 'static) -> SharedStorage {
    Arc::new(Mutex::new(Box::new(s)))
}

/// A [`StableStorage`] view of a [`SharedStorage`] handle: each call takes
/// the lock, forwards, and releases. Lets a decorator that owns a
/// `Box<dyn StableStorage>` (such as [`ckpt_cas::DedupStore`]) wrap
/// storage that is already shared — e.g. a builder layering dedup over
/// whatever backend the engine was constructed with.
pub struct SharedBackend(pub SharedStorage);

impl StableStorage for SharedBackend {
    fn class(&self) -> ckpt_storage::StorageClass {
        self.0.lock().class()
    }
    fn label(&self) -> String {
        self.0.lock().label()
    }
    fn store(
        &mut self,
        key: &str,
        data: &[u8],
        cost: &simos::cost::CostModel,
    ) -> Result<ckpt_storage::StoreReceipt, ckpt_storage::StorageError> {
        self.0.lock().store(key, data, cost)
    }
    fn load(
        &self,
        key: &str,
        cost: &simos::cost::CostModel,
    ) -> Result<(Vec<u8>, u64), ckpt_storage::StorageError> {
        self.0.lock().load(key, cost)
    }
    fn delete(&mut self, key: &str) -> Result<(), ckpt_storage::StorageError> {
        self.0.lock().delete(key)
    }
    fn list(&self) -> Vec<String> {
        self.0.lock().list()
    }
    fn available(&self) -> bool {
        self.0.lock().available()
    }
    fn used_bytes(&self) -> u64 {
        self.0.lock().used_bytes()
    }
    fn on_node_failure(&mut self) {
        self.0.lock().on_node_failure()
    }
    fn on_node_repair(&mut self) {
        self.0.lock().on_node_repair()
    }
    fn on_power_down(&mut self) {
        self.0.lock().on_power_down()
    }
    fn replica_manifest(&self, key: &str) -> Option<ckpt_storage::ReplicaManifest> {
        self.0.lock().replica_manifest(key)
    }
}
