//! # ckpt-core — the checkpoint/restart engine
//!
//! Implements every point of the paper's taxonomy (Figure 1) against the
//! [`simos`] substrate:
//!
//! * **Trackers** ([`tracker`]): full, page-protection incremental at
//!   kernel and user level, probabilistic block-hash, adaptive block,
//!   hardware cache-line.
//! * **Capture/restore** ([`capture`]): kernel-context PCB walking into
//!   [`ckpt_image::CheckpointImage`]s and back.
//! * **User-level agents** ([`agents`]): the modelled checkpoint library
//!   that gathers state through syscalls — the Section 3 schemes.
//! * **Mechanisms** ([`mechanism`]): the seven mechanism families —
//!   user library/signal/preload, new system call, kernel-mode signal
//!   handler, kernel thread, fork-concurrent, hardware-assisted.
//! * **Pod virtualization** ([`pod`]): ZAP-style resource translation for
//!   conflict-free migration.
//! * **Policies** ([`policy`]): user-initiated, periodic, and adaptive
//!   (Young's formula) checkpoint intervals.
//! * **The autonomic daemon** ([`autonomic`]): the paper's "direction
//!   forward" — automatic system-level initiation, kernel-level incremental
//!   tracking, remote storage, self-tuned interval.

pub mod agents;
pub mod autonomic;
pub mod capture;
pub mod crashpoint;
pub mod mechanism;
pub mod pod;
pub mod policy;
pub mod report;
pub mod tracker;

pub use capture::{
    capture_image, restore_image, CaptureOptions, PageSelection, RestoreOptions, RestorePid,
};
pub use report::{CkptOutcome, RestartOutcome};
pub use tracker::{Collected, Tracker, TrackerKind};

use ckpt_storage::StableStorage;
use parking_lot::Mutex;
use std::sync::Arc;

/// Storage handle shareable between mechanisms (outside the kernel) and the
/// kernel modules / agents they install (inside it).
pub type SharedStorage = Arc<Mutex<Box<dyn StableStorage>>>;

/// Wrap a backend for sharing.
pub fn shared_storage(s: impl StableStorage + 'static) -> SharedStorage {
    Arc::new(Mutex::new(Box::new(s)))
}
