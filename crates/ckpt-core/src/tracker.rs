//! Dirty-state trackers: every incremental-checkpointing technique the
//! paper discusses, behind one interface.
//!
//! * [`TrackerKind::FullOnly`] — no tracking; every checkpoint is full.
//! * [`TrackerKind::KernelPage`] — page-protection tracking resolved in the
//!   kernel's page-fault handler (Section 4.1: the system-level scheme the
//!   paper advocates, "never before implemented for Linux").
//! * [`TrackerKind::UserPage`] — the same page-protection idea at user
//!   level: `mprotect` + `SIGSEGV` handler + user-space bitmap (Section 3,
//!   libckpt [27]). Identical dirty sets, strictly higher cost.
//! * [`TrackerKind::ProbBlock`] — block-hash comparison at sub-page
//!   granularity (*Probabilistic Checkpointing*, Nam et al. [23]); the
//!   probability of a missed update (hash collision) is exposed
//!   analytically by [`Tracker::omission_probability`].
//! * [`TrackerKind::AdaptiveBlock`] — per-page adaptive block sizing
//!   (Agarwal et al. [1]): pages that change densely use coarse blocks
//!   (cheap hashing), sparsely-changing pages use fine blocks (small
//!   deltas).
//! * [`TrackerKind::HardwareLine`] — cache-line-granularity logging by
//!   hardware (ReVive [29] / SafetyNet [34], Section 4.2): no software cost
//!   per write, finest deltas, but requires custom hardware.

use simos::cost::{CACHE_LINE, PAGE_SIZE};
use simos::mem::TrackMode;
use simos::trace::TlbFlushSite;
use simos::types::{Pid, SimError, SimResult};
use simos::Kernel;
use std::collections::{BTreeMap, BTreeSet};

/// Which tracking technique to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackerKind {
    FullOnly,
    KernelPage,
    UserPage,
    ProbBlock { block: u64 },
    AdaptiveBlock { min_block: u64, max_block: u64 },
    HardwareLine,
}

impl TrackerKind {
    /// Human-readable label for reports.
    pub fn label(self) -> String {
        match self {
            TrackerKind::FullOnly => "full".into(),
            TrackerKind::KernelPage => "incr-kernel-page".into(),
            TrackerKind::UserPage => "incr-user-sigsegv".into(),
            TrackerKind::ProbBlock { block } => format!("prob-block-{block}"),
            TrackerKind::AdaptiveBlock { min_block, max_block } => {
                format!("adaptive-{min_block}-{max_block}")
            }
            TrackerKind::HardwareLine => "hw-cache-line".into(),
        }
    }

    /// Tracking granularity in bytes (0 = whole address space).
    pub fn granularity(self) -> u64 {
        match self {
            TrackerKind::FullOnly => 0,
            TrackerKind::KernelPage | TrackerKind::UserPage => PAGE_SIZE,
            TrackerKind::ProbBlock { block } => block,
            TrackerKind::AdaptiveBlock { min_block, .. } => min_block,
            TrackerKind::HardwareLine => CACHE_LINE,
        }
    }

    /// Whether this tracker can produce incremental checkpoints.
    pub fn supports_incremental(self) -> bool {
        !matches!(self, TrackerKind::FullOnly)
    }
}

/// FNV-1a 64-bit hash (the block comparator).
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// What a collection round found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Collected {
    /// Pages that must go into the image.
    pub pages: BTreeSet<u64>,
    /// Dirty bytes at the tracker's own granularity (what a
    /// granularity-exploiting format would ship).
    pub logical_dirty_bytes: u64,
    /// True when the collection is the entire resident set (full ckpt).
    pub full: bool,
}

/// A dirty-state tracker bound to one process.
#[derive(Debug, Clone)]
pub struct Tracker {
    kind: TrackerKind,
    /// Block hashes per page (ProbBlock/AdaptiveBlock baselines).
    hashes: BTreeMap<u64, Vec<u64>>,
    /// Per-page current block size (AdaptiveBlock).
    page_block: BTreeMap<u64, u64>,
    /// Last collection's per-page (changed blocks, total blocks) — the
    /// signal the adaptive tracker adapts on.
    last_change_density: BTreeMap<u64, (u64, u64)>,
    armed: bool,
}

impl Tracker {
    pub fn new(kind: TrackerKind) -> Self {
        if let TrackerKind::ProbBlock { block } | TrackerKind::AdaptiveBlock { min_block: block, .. } =
            kind
        {
            assert!(
                block.is_power_of_two() && (8..=PAGE_SIZE).contains(&block),
                "block size must be a power of two in [8, PAGE_SIZE]"
            );
        }
        if let TrackerKind::AdaptiveBlock { max_block, .. } = kind {
            assert!(
                max_block.is_power_of_two() && max_block <= PAGE_SIZE,
                "max block must be a power of two ≤ PAGE_SIZE"
            );
        }
        Tracker {
            kind,
            hashes: BTreeMap::new(),
            page_block: BTreeMap::new(),
            last_change_density: BTreeMap::new(),
            armed: false,
        }
    }

    pub fn kind(&self) -> TrackerKind {
        self.kind
    }

    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Analytic probability that at least one changed block goes undetected
    /// among `changed_blocks` comparisons with a `bits`-bit hash — the
    /// "probabilistic" in Probabilistic Checkpointing. With the 64-bit hash
    /// used here this is negligible; the paper-era proposals used 8–32-bit
    /// signatures where it is not.
    pub fn omission_probability(changed_blocks: u64, bits: u32) -> f64 {
        let p_single = 0.5f64.powi(bits as i32);
        1.0 - (1.0 - p_single).powf(changed_blocks as f64)
    }

    /// Begin (or re-begin) a tracking interval. Charges the arming cost.
    pub fn arm(&mut self, k: &mut Kernel, pid: Pid) -> SimResult<()> {
        match self.kind {
            TrackerKind::FullOnly => {}
            TrackerKind::KernelPage => {
                let p = k.process_mut(pid).ok_or(SimError::NoSuchProcess(pid))?;
                let protected = p.mem.arm_tracking(TrackMode::KernelPage);
                let t = protected * k.cost.mprotect_per_page_ns;
                k.charge(t);
                k.trace.soft_tlb_flush(TlbFlushSite::MprotectRearm);
            }
            TrackerKind::UserPage => {
                let p = k.process_mut(pid).ok_or(SimError::NoSuchProcess(pid))?;
                let protected = p.mem.arm_tracking(TrackMode::UserSigsegv);
                p.user_rt.dirty_bitmap.clear();
                // User space pays a full mprotect syscall plus per-page
                // work (one call per contiguous region; we charge one).
                k.stats.syscalls += 1;
                let t = k.cost.syscall_round_trip() + protected * k.cost.mprotect_per_page_ns;
                k.charge(t);
                k.trace.soft_tlb_flush(TlbFlushSite::MprotectRearm);
            }
            TrackerKind::ProbBlock { block } => {
                self.snapshot_hashes(k, pid, |_| block)?;
            }
            TrackerKind::AdaptiveBlock { min_block, .. } => {
                let page_block = self.page_block.clone();
                self.snapshot_hashes(k, pid, |pn| {
                    page_block.get(&pn).copied().unwrap_or(min_block)
                })?;
            }
            TrackerKind::HardwareLine => {
                let p = k.process_mut(pid).ok_or(SimError::NoSuchProcess(pid))?;
                p.mem.arm_tracking(TrackMode::HardwareLine);
                let t = k.cost.hw_log_line_ns;
                k.charge(t);
            }
        }
        self.armed = true;
        Ok(())
    }

    fn snapshot_hashes(
        &mut self,
        k: &mut Kernel,
        pid: Pid,
        block_of: impl Fn(u64) -> u64,
    ) -> SimResult<()> {
        let p = k.process(pid).ok_or(SimError::NoSuchProcess(pid))?;
        let mut scanned = 0u64;
        let mut hashes = BTreeMap::new();
        for pn in p.mem.resident_pages().collect::<Vec<_>>() {
            let data = p.mem.page_data(pn).expect("resident");
            let block = block_of(pn).clamp(8, PAGE_SIZE);
            let hs: Vec<u64> = data.chunks(block as usize).map(fnv1a64).collect();
            scanned += PAGE_SIZE;
            hashes.insert(pn, hs);
        }
        self.hashes = hashes;
        let t = k.cost.hash(scanned);
        k.charge(t);
        Ok(())
    }

    /// End a tracking interval: report what changed (and, for hash
    /// trackers, refresh the baseline). The caller should [`Tracker::arm`]
    /// again after the checkpoint completes.
    pub fn collect(&mut self, k: &mut Kernel, pid: Pid) -> SimResult<Collected> {
        match self.kind {
            TrackerKind::FullOnly => {
                let p = k.process(pid).ok_or(SimError::NoSuchProcess(pid))?;
                let pages: BTreeSet<u64> = p.mem.resident_pages().collect();
                let logical = pages.len() as u64 * PAGE_SIZE;
                Ok(Collected {
                    pages,
                    logical_dirty_bytes: logical,
                    full: true,
                })
            }
            TrackerKind::KernelPage => {
                let p = k.process(pid).ok_or(SimError::NoSuchProcess(pid))?;
                let pages = p.mem.dirty_pages.clone();
                Ok(Collected {
                    logical_dirty_bytes: pages.len() as u64 * PAGE_SIZE,
                    pages,
                    full: false,
                })
            }
            TrackerKind::UserPage => {
                let p = k.process(pid).ok_or(SimError::NoSuchProcess(pid))?;
                let pages = p.user_rt.dirty_bitmap.clone();
                Ok(Collected {
                    logical_dirty_bytes: pages.len() as u64 * PAGE_SIZE,
                    pages,
                    full: false,
                })
            }
            TrackerKind::ProbBlock { block } => self.collect_hashed(k, pid, |_, _| block),
            TrackerKind::AdaptiveBlock {
                min_block,
                max_block,
            } => {
                let page_block = self.page_block.clone();
                let out = self.collect_hashed(k, pid, move |pn, _| {
                    page_block.get(&pn).copied().unwrap_or(min_block)
                })?;
                // Adapt block sizes from this round's change density.
                self.adapt(&out, min_block, max_block);
                Ok(out)
            }
            TrackerKind::HardwareLine => {
                let p = k.process(pid).ok_or(SimError::NoSuchProcess(pid))?;
                let lines = p.mem.dirty_lines.clone();
                let pages: BTreeSet<u64> =
                    lines.iter().map(|l| l * CACHE_LINE / PAGE_SIZE).collect();
                Ok(Collected {
                    pages,
                    logical_dirty_bytes: lines.len() as u64 * CACHE_LINE,
                    full: false,
                })
            }
        }
    }

    fn collect_hashed(
        &mut self,
        k: &mut Kernel,
        pid: Pid,
        block_of: impl Fn(u64, u64) -> u64,
    ) -> SimResult<Collected> {
        let p = k.process(pid).ok_or(SimError::NoSuchProcess(pid))?;
        let mut pages = BTreeSet::new();
        let mut logical = 0u64;
        let mut scanned = 0u64;
        let mut new_hashes = BTreeMap::new();
        let mut changed_per_page: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for pn in p.mem.resident_pages().collect::<Vec<_>>() {
            let data = p.mem.page_data(pn).expect("resident");
            let block = block_of(pn, PAGE_SIZE).clamp(8, PAGE_SIZE);
            let hs: Vec<u64> = data.chunks(block as usize).map(fnv1a64).collect();
            scanned += PAGE_SIZE;
            let old = self.hashes.get(&pn);
            let mut changed = 0u64;
            match old {
                None => {
                    // Newly materialized page: everything is new.
                    changed = hs.len() as u64;
                }
                Some(old) if old.len() != hs.len() => {
                    changed = hs.len() as u64;
                }
                Some(old) => {
                    for (a, b) in old.iter().zip(&hs) {
                        if a != b {
                            changed += 1;
                        }
                    }
                }
            }
            if changed > 0 {
                pages.insert(pn);
                logical += changed * block;
            }
            changed_per_page.insert(pn, (changed, hs.len() as u64));
            new_hashes.insert(pn, hs);
        }
        self.hashes = new_hashes;
        self.last_change_density = changed_per_page;
        let t = k.cost.hash(scanned);
        k.charge(t);
        Ok(Collected {
            pages,
            logical_dirty_bytes: logical,
            full: false,
        })
    }

    fn adapt(&mut self, _out: &Collected, min_block: u64, max_block: u64) {
        for (pn, (changed, total)) in self.last_change_density.clone() {
            if total == 0 {
                continue;
            }
            let cur = self.page_block.get(&pn).copied().unwrap_or(min_block);
            let frac = changed as f64 / total as f64;
            let next = if frac > 0.75 {
                (cur * 2).min(max_block)
            } else if frac < 0.25 && changed > 0 {
                (cur / 2).max(min_block)
            } else {
                cur
            };
            self.page_block.insert(pn, next);
        }
    }
}

// The adaptive tracker needs the last round's per-page change density;
// stored outside the main struct fields above for clarity.
impl Tracker {
    pub fn page_block_sizes(&self) -> &BTreeMap<u64, u64> {
        &self.page_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::apps::{AppParams, NativeKind};
    use simos::cost::CostModel;

    fn kernel_with_app(kind: NativeKind, mem_bytes: u64) -> (Kernel, Pid) {
        let mut k = Kernel::new(CostModel::circa_2005());
        let mut params = AppParams::small();
        params.mem_bytes = mem_bytes;
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(kind, params).unwrap();
        k.run_for(10_000_000).unwrap();
        (k, pid)
    }

    fn run_steps(k: &mut Kernel, pid: Pid, n: u64) {
        let w0 = k.process(pid).unwrap().work_done;
        while k.process(pid).unwrap().work_done < w0 + n {
            k.run_for(1_000).unwrap();
        }
    }

    #[test]
    fn full_tracker_reports_everything() {
        let (mut k, pid) = kernel_with_app(NativeKind::DenseSweep, 64 * 1024);
        let mut t = Tracker::new(TrackerKind::FullOnly);
        t.arm(&mut k, pid).unwrap();
        let c = t.collect(&mut k, pid).unwrap();
        assert!(c.full);
        assert_eq!(
            c.pages.len(),
            k.process(pid).unwrap().mem.resident_count()
        );
    }

    #[test]
    fn kernel_page_tracker_sees_sparse_writes() {
        let (mut k, pid) = kernel_with_app(NativeKind::SparseRandom, 1024 * 1024);
        let mut t = Tracker::new(TrackerKind::KernelPage);
        t.arm(&mut k, pid).unwrap();
        run_steps(&mut k, pid, 3);
        let c = t.collect(&mut k, pid).unwrap();
        assert!(!c.full);
        assert!(!c.pages.is_empty());
        // Far fewer dirty pages than resident ones.
        let resident = k.process(pid).unwrap().mem.resident_count();
        assert!(
            c.pages.len() < resident,
            "sparse writer dirtied {}/{resident} pages",
            c.pages.len()
        );
    }

    #[test]
    fn kernel_and_user_trackers_find_the_same_pages() {
        let dirty_with = |kind: TrackerKind| -> BTreeSet<u64> {
            let mut k = Kernel::new(CostModel::circa_2005());
            let mut params = AppParams::small();
            params.total_steps = u64::MAX;
            let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
            k.run_for(10_000_000).unwrap();
            // Align to a step boundary: freeze at identical work counts.
            let target = k.process(pid).unwrap().work_done + 5;
            let mut t = Tracker::new(kind);
            t.arm(&mut k, pid).unwrap();
            while k.process(pid).unwrap().work_done < target {
                k.run_for(10_000).unwrap();
            }
            // NOTE: both runs stop at the same work_done because the app is
            // deterministic and tracking does not change its behaviour.
            t.collect(&mut k, pid).unwrap().pages
        };
        let a = dirty_with(TrackerKind::KernelPage);
        let b = dirty_with(TrackerKind::UserPage);
        assert_eq!(a, b, "same workload must produce identical dirty sets");
    }

    #[test]
    fn tracker_soundness_captured_pages_cover_all_writes() {
        // Every page written during the interval must appear in the
        // collected set: compare against a ground-truth diff of memory
        // contents.
        let (mut k, pid) = kernel_with_app(NativeKind::SparseRandom, 256 * 1024);
        // Ground truth: snapshot all pages before.
        let before: BTreeMap<u64, Vec<u8>> = {
            let p = k.process(pid).unwrap();
            p.mem
                .resident_pages()
                .map(|pn| (pn, p.mem.page_data(pn).unwrap().to_vec()))
                .collect()
        };
        let mut t = Tracker::new(TrackerKind::KernelPage);
        t.arm(&mut k, pid).unwrap();
        run_steps(&mut k, pid, 5);
        k.freeze_process(pid).unwrap();
        let c = t.collect(&mut k, pid).unwrap();
        let p = k.process(pid).unwrap();
        for pn in p.mem.resident_pages().collect::<Vec<_>>() {
            let now = p.mem.page_data(pn).unwrap();
            let was = before.get(&pn).map(|v| &v[..]);
            let changed = was != Some(now);
            if changed {
                assert!(
                    c.pages.contains(&pn),
                    "page {pn} changed but was not tracked"
                );
            }
        }
    }

    #[test]
    fn prob_block_logical_bytes_below_page_tracker() {
        // A sparse writer touches few bytes per page; block tracking at
        // 64 B must report far fewer logical dirty bytes than the page
        // tracker.
        let (mut k, pid) = kernel_with_app(NativeKind::SparseRandom, 512 * 1024);
        let mut prob = Tracker::new(TrackerKind::ProbBlock { block: 64 });
        prob.arm(&mut k, pid).unwrap();
        run_steps(&mut k, pid, 3);
        let c = prob.collect(&mut k, pid).unwrap();
        assert!(!c.pages.is_empty());
        let page_equiv = c.pages.len() as u64 * PAGE_SIZE;
        assert!(
            c.logical_dirty_bytes < page_equiv / 4,
            "block granularity should shrink the delta: {} vs {}",
            c.logical_dirty_bytes,
            page_equiv
        );
    }

    #[test]
    fn prob_block_detects_single_byte_change() {
        let (mut k, pid) = kernel_with_app(NativeKind::SparseRandom, 64 * 1024);
        k.freeze_process(pid).unwrap();
        let mut t = Tracker::new(TrackerKind::ProbBlock { block: 256 });
        t.arm(&mut k, pid).unwrap();
        // Mutate exactly one byte behind the tracker's back.
        let addr = simos::apps::ARRAY_BASE + 1000;
        let p = k.process_mut(pid).unwrap();
        let mut b = [0u8; 1];
        p.mem.peek(addr, &mut b);
        p.mem.poke(addr, &[b[0] ^ 0xFF]);
        let c = t.collect(&mut k, pid).unwrap();
        assert_eq!(c.pages.len(), 1);
        assert_eq!(c.logical_dirty_bytes, 256);
    }

    #[test]
    fn prob_block_no_false_positives_when_idle() {
        let (mut k, pid) = kernel_with_app(NativeKind::SparseRandom, 64 * 1024);
        k.freeze_process(pid).unwrap();
        let mut t = Tracker::new(TrackerKind::ProbBlock { block: 128 });
        t.arm(&mut k, pid).unwrap();
        let c = t.collect(&mut k, pid).unwrap();
        assert!(c.pages.is_empty());
        assert_eq!(c.logical_dirty_bytes, 0);
    }

    #[test]
    fn hardware_line_tracker_finest_granularity() {
        let (mut k, pid) = kernel_with_app(NativeKind::SparseRandom, 512 * 1024);
        let mut t = Tracker::new(TrackerKind::HardwareLine);
        t.arm(&mut k, pid).unwrap();
        run_steps(&mut k, pid, 3);
        let c = t.collect(&mut k, pid).unwrap();
        assert!(!c.pages.is_empty());
        assert!(c.logical_dirty_bytes.is_multiple_of(CACHE_LINE));
        assert!(c.logical_dirty_bytes <= c.pages.len() as u64 * PAGE_SIZE);
    }

    #[test]
    fn hardware_tracking_adds_no_fault_overhead() {
        let (mut k, pid) = kernel_with_app(NativeKind::DenseSweep, 128 * 1024);
        let mut t = Tracker::new(TrackerKind::HardwareLine);
        t.arm(&mut k, pid).unwrap();
        let faults0 = k.stats.page_faults;
        run_steps(&mut k, pid, 3);
        assert_eq!(
            k.stats.page_faults, faults0,
            "hardware tracking must not take page faults"
        );
    }

    #[test]
    fn adaptive_blocks_grow_on_dense_pages() {
        let (mut k, pid) = kernel_with_app(NativeKind::DenseSweep, 64 * 1024);
        let mut t = Tracker::new(TrackerKind::AdaptiveBlock {
            min_block: 64,
            max_block: 4096,
        });
        t.arm(&mut k, pid).unwrap();
        for _ in 0..4 {
            run_steps(&mut k, pid, 2);
            t.collect(&mut k, pid).unwrap();
            t.arm(&mut k, pid).unwrap();
        }
        // Dense sweeps rewrite whole pages: block sizes should have grown.
        let grown = t
            .page_block_sizes()
            .values()
            .filter(|b| **b > 64)
            .count();
        assert!(grown > 0, "no page grew its block size under dense writes");
    }

    #[test]
    fn omission_probability_formula() {
        // One block, 1-bit hash: 50%.
        assert!((Tracker::omission_probability(1, 1) - 0.5).abs() < 1e-12);
        // More blocks → higher omission chance.
        assert!(
            Tracker::omission_probability(100, 8) > Tracker::omission_probability(1, 8)
        );
        // 64-bit hash: negligible.
        assert!(Tracker::omission_probability(1_000_000, 64) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "block size must be a power of two")]
    fn bad_block_size_rejected() {
        let _ = Tracker::new(TrackerKind::ProbBlock { block: 100 });
    }

    #[test]
    fn fnv_distinguishes_blocks() {
        assert_ne!(fnv1a64(b"aaaa"), fnv1a64(b"aaab"));
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    }
}
