//! The autonomic checkpoint daemon — the paper's "direction forward"
//! realized: **automatic initiation at system level**, kernel-page
//! incremental tracking, remote stable storage, and a self-managing
//! checkpoint interval adjusted to the observed failure rate and
//! checkpoint cost (Young's formula via [`crate::policy::AdaptivePolicy`]).
//!
//! The daemon is a kernel module owning a `SCHED_FIFO` kernel thread and a
//! kernel timer: no application modification, no user-space manager, no
//! batch system — addressing both of the paper's complaints about
//! LSF-style user-level management (restricted applicability, centralized
//! scalability bottleneck). It also supports the two administrator flows
//! the paper calls out: *safe preemption* (checkpoint, then yield the node
//! to a higher-priority job) and *planned outage* (checkpoint and stop
//! everything before maintenance).

use crate::mechanism::KernelCkptEngine;
use crate::policy::AdaptivePolicy;
use crate::report::CkptOutcome;
use crate::tracker::TrackerKind;
use crate::SharedStorage;
use simos::module::{KernelModule, KthreadStatus};
use simos::sched::SchedPolicy;
use simos::timer::{TimerAction, TimerId};
use simos::types::{Errno, KtId, Pid, SimError, SimResult, SysResult};
use simos::Kernel;
use std::any::Any;
use std::collections::BTreeMap;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct AutonomicConfig {
    pub module_name: String,
    pub job: String,
    pub tracker: TrackerKind,
    /// Force a full image every N checkpoints.
    pub full_every: u64,
    /// Use the adaptive policy; otherwise keep `initial_interval_ns`.
    pub adaptive: bool,
    pub initial_interval_ns: u64,
    pub mtbf_prior_ns: u64,
    pub rt_prio: u8,
}

impl Default for AutonomicConfig {
    fn default() -> Self {
        AutonomicConfig {
            module_name: "autonomicd".into(),
            job: "autonomic".into(),
            tracker: TrackerKind::KernelPage,
            full_every: 8,
            adaptive: true,
            initial_interval_ns: 100_000_000, // 100 ms
            mtbf_prior_ns: 10_000_000_000,    // 10 s prior (sim scale)
            rt_prio: 90,
        }
    }
}

/// The daemon kernel module.
pub struct AutonomicDaemon {
    cfg: AutonomicConfig,
    storage: SharedStorage,
    engines: BTreeMap<u32, KernelCkptEngine>,
    policy: AdaptivePolicy,
    kt: Option<KtId>,
    timer: Option<TimerId>,
    pub outcomes: Vec<(Pid, CkptOutcome)>,
    /// Interval chosen after each round (for experiments).
    pub intervals_used: Vec<u64>,
    pub rounds: u64,
    pub failures_noted: u64,
}

impl AutonomicDaemon {
    pub fn new(cfg: AutonomicConfig, storage: SharedStorage) -> Self {
        let policy = AdaptivePolicy::new(cfg.mtbf_prior_ns);
        AutonomicDaemon {
            cfg,
            storage,
            engines: BTreeMap::new(),
            policy,
            kt: None,
            timer: None,
            outcomes: Vec::new(),
            intervals_used: Vec::new(),
            rounds: 0,
            failures_noted: 0,
        }
    }

    /// Register a process for autonomous checkpointing.
    pub fn register(&mut self, pid: Pid) {
        self.engines.entry(pid.0).or_insert_with(|| {
            let mut e = KernelCkptEngine::new(
                &self.cfg.module_name,
                &self.cfg.job,
                self.storage.clone(),
                self.cfg.tracker,
            );
            e.full_every = self.cfg.full_every;
            e.set_target(pid);
            e
        });
    }

    pub fn registered(&self) -> Vec<u32> {
        self.engines.keys().copied().collect()
    }

    /// Feed an observed failure into the policy (called by the cluster
    /// layer's failure detector).
    pub fn note_failure(&mut self, at_ns: u64) {
        self.policy.note_failure(at_ns);
        self.failures_noted += 1;
    }

    fn current_interval(&self, now: u64) -> u64 {
        if self.cfg.adaptive {
            self.policy
                .current_interval(now)
                .clamp(1_000_000, self.cfg.initial_interval_ns.max(1_000_000) * 100)
        } else {
            self.cfg.initial_interval_ns
        }
    }

    fn arm_timer(&mut self, k: &mut Kernel) {
        if let Some(t) = self.timer.take() {
            k.timers.cancel(t);
        }
        let interval = if self.rounds == 0 {
            self.cfg.initial_interval_ns
        } else {
            self.current_interval(k.now())
        };
        self.intervals_used.push(interval);
        self.timer = Some(k.timers.arm(
            k.now() + interval,
            None,
            TimerAction::ModuleEvent {
                module: self.cfg.module_name.clone(),
                tag: 0,
            },
            None,
        ));
    }

    /// Checkpoint one registered process right now (kernel context).
    /// Public entry point for external initiators (batch managers, safe
    /// preemption).
    pub fn checkpoint_now(&mut self, k: &mut Kernel, pid: Pid) -> SimResult<CkptOutcome> {
        self.checkpoint_one(k, pid)
    }

    fn checkpoint_one(&mut self, k: &mut Kernel, pid: Pid) -> SimResult<CkptOutcome> {
        let engine = self
            .engines
            .get_mut(&pid.0)
            .ok_or_else(|| SimError::Usage(format!("{pid} not registered")))?;
        // Respect an existing freeze (safe preemption / planned outage):
        // checkpoint in place and leave the process frozen afterwards.
        let was_frozen = k
            .process(pid)
            .map(|p| p.frozen_for_ckpt)
            .unwrap_or(false);
        if !was_frozen {
            k.freeze_process(pid)?;
        }
        let res = engine.checkpoint_in_kernel(k, pid);
        if !was_frozen {
            let _ = k.thaw_process(pid);
        }
        let outcome = res?;
        self.policy.note_checkpoint_cost(outcome.total_ns);
        self.outcomes.push((pid, outcome.clone()));
        Ok(outcome)
    }
}

impl KernelModule for AutonomicDaemon {
    fn name(&self) -> &str {
        &self.cfg.module_name
    }

    fn on_load(&mut self, k: &mut Kernel) {
        let name = self.cfg.module_name.clone();
        self.kt = Some(k.spawn_kthread(
            &format!("{name}/kthread"),
            &name,
            SchedPolicy::Fifo {
                rt_prio: self.cfg.rt_prio,
            },
        ));
        let _ = k.fs.register_proc(&format!("/proc/{name}"), &name, "ctl");
        self.arm_timer(k);
    }

    fn on_unload(&mut self, k: &mut Kernel) {
        if let Some(t) = self.timer.take() {
            k.timers.cancel(t);
        }
        let _ = k.fs.unlink(&format!("/proc/{}", self.cfg.module_name));
    }

    fn timer_event(&mut self, k: &mut Kernel, _tag: u64) {
        if let Some(kt) = self.kt {
            let _ = k.wake_kthread(kt);
        }
    }

    fn proc_write(&mut self, _k: &mut Kernel, _pid: Pid, _tag: &str, data: &[u8]) -> SysResult {
        let text = String::from_utf8_lossy(data);
        let pid: u32 = text.trim().parse().map_err(|_| Errno::EINVAL)?;
        self.register(Pid(pid));
        Ok(data.len() as u64)
    }

    fn proc_read(&mut self, k: &mut Kernel, _pid: Pid, _tag: &str) -> Result<Vec<u8>, Errno> {
        let mut out = format!(
            "rounds={} checkpoints={} failures={} interval_ns={}\n",
            self.rounds,
            self.outcomes.len(),
            self.failures_noted,
            self.current_interval(k.now())
        );
        for pid in self.engines.keys() {
            out.push_str(&format!("registered {pid}\n"));
        }
        Ok(out.into_bytes())
    }

    fn kthread_run(&mut self, k: &mut Kernel, _kt: KtId) -> KthreadStatus {
        // One checkpoint round over all live registered processes.
        let pids: Vec<u32> = self.engines.keys().copied().collect();
        for pid_raw in pids {
            let pid = Pid(pid_raw);
            match k.process(pid) {
                Some(p) if !p.has_exited() => {
                    let _ = self.checkpoint_one(k, pid);
                }
                _ => {
                    self.engines.remove(&pid_raw);
                }
            }
        }
        self.rounds += 1;
        self.arm_timer(k);
        KthreadStatus::Sleep
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Install the daemon on a kernel.
pub fn install(
    k: &mut Kernel,
    cfg: AutonomicConfig,
    storage: SharedStorage,
) -> SimResult<String> {
    let name = cfg.module_name.clone();
    k.register_module(Box::new(AutonomicDaemon::new(cfg, storage)))?;
    Ok(name)
}

/// Register a process with a running daemon (kernel-side registration —
/// the system self-manages; no tool process involved).
pub fn register(k: &mut Kernel, daemon: &str, pid: Pid) -> SimResult<()> {
    k.with_module_mut::<AutonomicDaemon, _>(daemon, |d, _| d.register(pid))
        .ok_or_else(|| SimError::Usage(format!("daemon {daemon} not loaded")))
}

/// *Safe preemption*: checkpoint `pid` immediately and leave it frozen so
/// a higher-priority job can take the node. Undo with [`resume_preempted`].
pub fn safe_preempt(k: &mut Kernel, daemon: &str, pid: Pid) -> SimResult<CkptOutcome> {
    let out = k
        .with_module_mut::<AutonomicDaemon, _>(daemon, |d, k| d.checkpoint_one(k, pid))
        .ok_or_else(|| SimError::Usage(format!("daemon {daemon} not loaded")))??;
    k.freeze_process(pid)?;
    Ok(out)
}

/// Resume a safely-preempted process.
pub fn resume_preempted(k: &mut Kernel, pid: Pid) -> SimResult<()> {
    k.thaw_process(pid)
}

/// *Planned outage*: checkpoint every registered process and leave them
/// all frozen for maintenance.
pub fn planned_outage(k: &mut Kernel, daemon: &str) -> SimResult<Vec<CkptOutcome>> {
    let pids = k
        .with_module_mut::<AutonomicDaemon, _>(daemon, |d, _| d.registered())
        .ok_or_else(|| SimError::Usage(format!("daemon {daemon} not loaded")))?;
    let mut outs = Vec::new();
    for pid_raw in pids {
        outs.push(safe_preempt(k, daemon, Pid(pid_raw))?);
    }
    Ok(outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared_storage;
    use ckpt_storage::{RemoteServer, RemoteStore};
    use simos::apps::{AppParams, NativeKind};
    use simos::cost::CostModel;

    fn setup() -> (Kernel, Pid, String) {
        let mut k = Kernel::new(CostModel::circa_2005());
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
        let storage = shared_storage(RemoteStore::new(RemoteServer::new(1 << 32)));
        let cfg = AutonomicConfig {
            initial_interval_ns: 20_000_000,
            ..Default::default()
        };
        let name = install(&mut k, cfg, storage).unwrap();
        register(&mut k, &name, pid).unwrap();
        (k, pid, name)
    }

    #[test]
    fn daemon_checkpoints_periodically_without_any_tool() {
        let (mut k, _pid, name) = setup();
        k.run_for(500_000_000).unwrap();
        let n = k
            .with_module_mut::<AutonomicDaemon, _>(&name, |d, _| d.outcomes.len())
            .unwrap();
        assert!(n >= 3, "expected ≥3 autonomous checkpoints, got {n}");
        // Fully transparent: the app never made a checkpoint-related
        // syscall; incremental after the first.
        let incr = k
            .with_module_mut::<AutonomicDaemon, _>(&name, |d, _| {
                d.outcomes.iter().skip(1).all(|(_, o)| o.incremental)
            })
            .unwrap();
        assert!(incr);
    }

    #[test]
    fn interval_adapts_to_failures() {
        let (mut k, _pid, name) = setup();
        k.run_for(200_000_000).unwrap();
        let relaxed = k
            .with_module_mut::<AutonomicDaemon, _>(&name, |d, k| d.current_interval(k.now()))
            .unwrap();
        // Report a burst of failures 50 ms apart.
        let now = k.now();
        k.with_module_mut::<AutonomicDaemon, _>(&name, |d, _| {
            for i in 1..=5u64 {
                d.note_failure(now + i * 50_000_000);
            }
        });
        let tight = k
            .with_module_mut::<AutonomicDaemon, _>(&name, |d, k| d.current_interval(k.now()))
            .unwrap();
        assert!(
            tight < relaxed,
            "interval should tighten under failures: {relaxed} → {tight}"
        );
    }

    #[test]
    fn proc_interface_registers_and_reports() {
        let (mut k, pid, name) = setup();
        k.run_for(100_000_000).unwrap();
        let status = k
            .dispatch_module(&name, |m, k| m.proc_read(k, pid, "ctl"))
            .unwrap()
            .unwrap();
        let text = String::from_utf8(status).unwrap();
        assert!(text.contains("rounds="));
        assert!(text.contains(&format!("registered {}", pid.0)));
    }

    #[test]
    fn safe_preemption_checkpoints_then_freezes() {
        let (mut k, pid, name) = setup();
        k.run_for(50_000_000).unwrap();
        let out = safe_preempt(&mut k, &name, pid).unwrap();
        assert!(out.pages_saved > 0);
        let w = k.process(pid).unwrap().work_done;
        k.run_for(50_000_000).unwrap();
        assert_eq!(k.process(pid).unwrap().work_done, w, "frozen after preempt");
        resume_preempted(&mut k, pid).unwrap();
        k.run_for(50_000_000).unwrap();
        assert!(k.process(pid).unwrap().work_done > w);
    }

    #[test]
    fn planned_outage_freezes_everything_registered() {
        let (mut k, pid, name) = setup();
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let pid2 = k.spawn_native(NativeKind::DenseSweep, params).unwrap();
        register(&mut k, &name, pid2).unwrap();
        k.run_for(50_000_000).unwrap();
        let outs = planned_outage(&mut k, &name).unwrap();
        assert_eq!(outs.len(), 2);
        for p in [pid, pid2] {
            let w = k.process(p).unwrap().work_done;
            k.run_for(30_000_000).unwrap();
            assert_eq!(k.process(p).unwrap().work_done, w);
        }
    }

    #[test]
    fn dead_processes_are_dropped_from_rounds() {
        let (mut k, pid, name) = setup();
        k.run_for(60_000_000).unwrap();
        k.post_signal(pid, simos::signal::Sig::SIGKILL);
        k.run_for(200_000_000).unwrap();
        let regs = k
            .with_module_mut::<AutonomicDaemon, _>(&name, |d, _| d.registered())
            .unwrap();
        assert!(regs.is_empty(), "dead pid should be dropped");
    }
}
