//! The checkpoint/restart mechanism families of the paper's taxonomy.
//!
//! Figure 1 classifies implementations by *context* (user vs system level),
//! *agent* (who performs the work), and *implementation specifics*. Each
//! submodule here is one leaf of that tree, implemented for real against
//! the simulated kernel:
//!
//! | Module | Taxonomy leaf | Surveyed systems |
//! |--------|---------------|------------------|
//! | [`user_level`] | user-level library call / signal handler / LD_PRELOAD | libckpt, libckp, Esky, Condor, CLIP, … |
//! | [`syscall`] | system-level, new system call | VMADump, BPROC, EPCKPT, Checkpoint |
//! | [`ksignal`] | system-level, kernel-mode signal handler | CHPOX, Software Suspend |
//! | [`kthread`] | system-level, kernel thread | CRAK, ZAP, UCLiK, BLCR, LAM/MPI, PsncR/C |
//! | [`fork_concurrent`] | system-level, concurrent (forked) checkpointing | Checkpoint (Carothers & Szymanski) |
//! | [`hardware`] | hardware-assisted | ReVive, SafetyNet |

pub mod fork_concurrent;
pub mod hardware;
pub mod hibernate;
pub mod ksignal;
pub mod kthread;
pub mod syscall;
pub mod user_level;

use crate::capture::{capture_image, restore_image, CaptureOptions, RestoreOptions, RestorePid};
use crate::report::{CkptOutcome, RestartOutcome};
use crate::tracker::{Tracker, TrackerKind};
use crate::SharedStorage;
use ckpt_image::{ChainError, ImageKind};
use ckpt_storage::{load_latest_valid_chain, prune_before, store_image_bytes};
use simos::trace::{Phase, StorageOp};
use simos::types::{Pid, SimError, SimResult};
use simos::Kernel;

/// Where the mechanism's checkpoint code executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Context {
    UserLevel,
    SystemOs,
    Hardware,
}

/// The agent performing the checkpoint (Figure 1's middle dimension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentKind {
    LibraryCall,
    UserSignalHandler,
    Preload,
    SystemCall,
    KernelSignal,
    KernelThread,
    ConcurrentFork,
    DirectoryController,
    CacheBased,
}

/// Who can initiate a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Initiation {
    /// Only the application itself triggers checkpoints (inserted calls or
    /// timers compiled in) — the "automatic" column of Table 1.
    Automatic,
    /// An external party (user, administrator, resource manager) can
    /// trigger a checkpoint at any time.
    UserInitiated,
}

/// Static description of a mechanism (feeds Table 1). `#[non_exhaustive]`:
/// obtained from [`Mechanism::info`], never constructed downstream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct MechanismInfo {
    pub family: &'static str,
    pub context: Context,
    pub agent: AgentKind,
    /// Implemented as a loadable kernel module (vs static kernel or pure
    /// user space).
    pub is_kernel_module: bool,
    /// No application source modification / recompile / relink required.
    pub transparent: bool,
    pub supports_incremental: bool,
    pub initiation: Initiation,
}

/// A checkpoint/restart mechanism bound to (at most) one target process.
pub trait Mechanism {
    fn info(&self) -> MechanismInfo;

    /// Install whatever the mechanism needs (kernel modules, agents,
    /// signal handlers, tracing) for `pid`. Must be called before the
    /// process runs if the mechanism interposes from the start.
    fn prepare(&mut self, k: &mut Kernel, pid: Pid) -> SimResult<()>;

    /// Initiate a checkpoint *now* and drive the kernel until the image is
    /// durable. Mechanisms with `Initiation::Automatic` return an error —
    /// the inflexibility the paper criticizes.
    fn checkpoint(&mut self, k: &mut Kernel, pid: Pid) -> SimResult<CkptOutcome>;

    /// Restore the latest checkpoint of the prepared process from this
    /// mechanism's storage onto `k` (possibly a different kernel/node).
    fn restart(&mut self, k: &mut Kernel, pid: RestorePid) -> SimResult<RestartOutcome>;

    /// Outcomes of all checkpoints taken so far (including automatic
    /// ones). Ordered. Read-only: inspecting results must not perturb
    /// the kernel (modules are reached via [`Kernel::with_module`]).
    fn outcomes(&self, k: &Kernel) -> Vec<CkptOutcome>;
}

/// The shared kernel-context checkpoint engine used by every system-level
/// mechanism: decides full vs incremental, walks the PCB, compresses,
/// stores, prunes, re-arms tracking. Callers handle freezing and stall
/// accounting.
pub struct KernelCkptEngine {
    pub(crate) mechanism_name: String,
    pub(crate) job: String,
    pub(crate) storage: SharedStorage,
    pub(crate) tracker: Tracker,
    /// Force a full image every N checkpoints (0 = only the first is
    /// full). Ignored for non-incremental trackers.
    pub(crate) full_every: u64,
    pub(crate) compress: bool,
    pub(crate) save_file_contents: bool,
    /// Delete images older than the latest full after taking a full.
    pub(crate) prune: bool,
    pub(crate) node: u32,
    /// Pool for parallel page encoding during capture (default: the
    /// process-wide [`ckpt_par::global`] pool; width 1 = exact serial path).
    pub(crate) encode_pool: std::sync::Arc<ckpt_par::Pool>,
    /// Replica manifests recorded for the current chain, one per stored
    /// segment, in store order. Empty unless the backend replicates.
    chain_manifests: Vec<ckpt_storage::ReplicaManifest>,
    /// Counter handle of the dedup layer, when built with
    /// [`KernelCkptEngineBuilder::dedup`].
    cas_stats: Option<ckpt_cas::CasStatsHandle>,
    seq: u64,
    last_full_seq: u64,
    target_pid: Option<Pid>,
}

/// Builder for [`KernelCkptEngine`]. The four constructor arguments are
/// the mandatory identity of an engine; everything else defaults to the
/// common configuration (compressing, pruning, full-first-then-incremental)
/// and is overridden fluently:
///
/// ```
/// # use ckpt_core::mechanism::KernelCkptEngine;
/// # use ckpt_core::tracker::TrackerKind;
/// # use ckpt_core::shared_storage;
/// # use ckpt_storage::LocalDisk;
/// let engine = KernelCkptEngine::builder(
///         "epckpt", "job7", shared_storage(LocalDisk::new(1 << 30)),
///         TrackerKind::KernelPage)
///     .full_every(8)
///     .compress(false)
///     .build();
/// ```
#[must_use = "the builder does nothing until .build() is called"]
pub struct KernelCkptEngineBuilder {
    engine: KernelCkptEngine,
    dedup: Option<ckpt_cas::ChunkParams>,
}

impl KernelCkptEngineBuilder {
    /// Force a full image every `n` checkpoints (0 = only the first is
    /// full). Ignored for non-incremental trackers.
    pub fn full_every(mut self, n: u64) -> Self {
        self.engine.full_every = n;
        self
    }

    /// Compress pages in the image (default `true`).
    pub fn compress(mut self, on: bool) -> Self {
        self.engine.compress = on;
        self
    }

    /// Snapshot regular-file contents into the image (default `false`;
    /// needed for migration across nodes without a shared filesystem).
    pub fn save_file_contents(mut self, on: bool) -> Self {
        self.engine.save_file_contents = on;
        self
    }

    /// Delete images superseded by a new full checkpoint (default `true`).
    pub fn prune(mut self, on: bool) -> Self {
        self.engine.prune = on;
        self
    }

    /// The node id stamped into image headers (default 0).
    pub fn node(mut self, node: u32) -> Self {
        self.engine.node = node;
        self
    }

    /// Width of the page-encode worker pool (default: the host's available
    /// parallelism via [`ckpt_par::global`]). `1` forces the exact serial
    /// capture path; any width produces byte-identical images.
    pub fn encode_workers(mut self, n: usize) -> Self {
        self.engine.encode_pool = std::sync::Arc::new(ckpt_par::Pool::new(n));
        self
    }

    /// Share an existing encode pool (e.g. one pool across all nodes of a
    /// cluster so its trace counters aggregate).
    pub fn encode_pool(mut self, pool: std::sync::Arc<ckpt_par::Pool>) -> Self {
        self.engine.encode_pool = pool;
        self
    }

    /// Replace the engine's storage with an N-way quorum-replicated store
    /// (write quorum `w > n/2`) over a fresh simulated replica set, fanned
    /// out on the engine's encode pool. Each committed segment's
    /// [`ReplicaManifest`](ckpt_storage::ReplicaManifest) is recorded in
    /// the chain metadata ([`KernelCkptEngine::chain_manifests`]).
    pub fn replicated(mut self, n: usize, w: usize) -> Self {
        let store = ckpt_replica::ReplicatedStore::new(
            ckpt_replica::ReplicaSet::new(n),
            ckpt_replica::ReplicaConfig::new(n, w),
        )
        .with_pool(self.engine.encode_pool.clone());
        self.engine.storage = crate::shared_storage(store);
        self
    }

    /// Like [`Self::replicated`], but over a caller-supplied store (e.g.
    /// a shared [`ckpt_replica::ReplicaSet`] spanning a cluster, or one
    /// wired to a fault handle).
    pub fn replicated_store(mut self, store: ckpt_replica::ReplicatedStore) -> Self {
        self.engine.storage = crate::shared_storage(store);
        self
    }

    /// Replace the engine's storage with an RS(k, m) erasure-coded store
    /// over a fresh simulated replica set of `k + m` nodes, encoding on
    /// the engine's pool. Any `m` node losses are survivable while each
    /// commit moves only `(k + m) / k ×` the segment bytes instead of
    /// `N ×` — the coded half of the replication-vs-coding trade the
    /// bandwidth sweeps measure. Chain metadata records each segment's
    /// [`ReplicaManifest`](ckpt_storage::ReplicaManifest) with its
    /// [`CodingGeometry`](ckpt_storage::CodingGeometry).
    pub fn erasure(mut self, k: usize, m: usize) -> Self {
        let store = ckpt_ec::ErasureStore::fresh(k, m)
            .with_pool(self.engine.encode_pool.clone());
        self.engine.storage = crate::shared_storage(store);
        self
    }

    /// Like [`Self::erasure`], but over a caller-supplied store (e.g. a
    /// shard group shared across a cluster, or one wired to a fault
    /// handle).
    pub fn erasure_store(mut self, store: ckpt_ec::ErasureStore) -> Self {
        self.engine.storage = crate::shared_storage(store);
        self
    }

    /// Layer content-addressed dedup + delta
    /// ([`ckpt_cas::DedupStore`]) over the engine's storage, with default
    /// chunking parameters. Applied at [`Self::build`] time, over
    /// whatever backend is then configured — so it composes with
    /// [`Self::replicated`] in either call order, and on a replicated
    /// backend each commit ships only the chunks the quorum has not
    /// already acknowledged.
    pub fn dedup(self) -> Self {
        self.dedup_params(ckpt_cas::ChunkParams::DEFAULT)
    }

    /// Like [`Self::dedup`], with explicit [`ckpt_cas::ChunkParams`].
    pub fn dedup_params(mut self, params: ckpt_cas::ChunkParams) -> Self {
        self.dedup = Some(params);
        self
    }

    pub fn build(mut self) -> KernelCkptEngine {
        if let Some(params) = self.dedup {
            let inner = crate::SharedBackend(self.engine.storage.clone());
            let store = ckpt_cas::DedupStore::new(Box::new(inner))
                .with_params(params)
                .with_pool(self.engine.encode_pool.clone());
            self.engine.cas_stats = Some(store.stats_handle());
            self.engine.storage = crate::shared_storage(store);
        }
        self.engine
    }
}

impl KernelCkptEngine {
    /// Start building an engine; see [`KernelCkptEngineBuilder`].
    pub fn builder(
        mechanism_name: &str,
        job: &str,
        storage: SharedStorage,
        tracker: TrackerKind,
    ) -> KernelCkptEngineBuilder {
        KernelCkptEngineBuilder {
            engine: KernelCkptEngine {
                mechanism_name: mechanism_name.to_string(),
                job: job.to_string(),
                storage,
                tracker: Tracker::new(tracker),
                full_every: 0,
                compress: true,
                save_file_contents: false,
                prune: true,
                node: 0,
                encode_pool: ckpt_par::global().clone(),
                chain_manifests: Vec::new(),
                cas_stats: None,
                seq: 0,
                last_full_seq: 0,
                target_pid: None,
            },
            dedup: None,
        }
    }

    /// An engine with the default configuration — shorthand for
    /// [`KernelCkptEngine::builder`]`(..).build()`.
    pub fn new(
        mechanism_name: &str,
        job: &str,
        storage: SharedStorage,
        tracker: TrackerKind,
    ) -> Self {
        Self::builder(mechanism_name, job, storage, tracker).build()
    }

    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Dedup-layer counters, when this engine was built with
    /// [`KernelCkptEngineBuilder::dedup`]; `None` otherwise.
    pub fn cas_stats(&self) -> Option<ckpt_cas::CasStats> {
        self.cas_stats.as_ref().map(|h| h.snapshot())
    }

    pub fn mechanism_name(&self) -> &str {
        &self.mechanism_name
    }

    pub fn storage(&self) -> &SharedStorage {
        &self.storage
    }

    pub fn tracker(&self) -> &Tracker {
        &self.tracker
    }

    pub fn target(&self) -> Option<Pid> {
        self.target_pid
    }

    /// Replica manifests for the committed chain segments, in store order.
    /// Empty unless the storage backend replicates.
    pub fn chain_manifests(&self) -> &[ckpt_storage::ReplicaManifest] {
        &self.chain_manifests
    }

    pub fn set_target(&mut self, pid: Pid) {
        self.target_pid = Some(pid);
    }

    /// Perform one checkpoint of a quiescent `pid` in kernel context.
    pub fn checkpoint_in_kernel(&mut self, k: &mut Kernel, pid: Pid) -> SimResult<CkptOutcome> {
        self.target_pid = Some(pid);
        let t0 = k.now();
        let stats0 = k.stats.clone();
        let next_seq = self.seq + 1;
        // Decide image kind.
        let incremental_ok = self.tracker.kind().supports_incremental()
            && self.seq > 0
            && self.tracker.is_armed()
            && !(self.full_every > 0 && next_seq - self.last_full_seq >= self.full_every);
        let pool_stats0 = self.encode_pool.stats();
        let (opts, logical_dirty) = if incremental_ok {
            k.faultpoint(&self.mechanism_name, "walk")?;
            let walk0 = k.now();
            let collected = self.tracker.collect(k, pid)?;
            k.trace.phase(
                &self.mechanism_name,
                Phase::Walk,
                pid.0,
                next_seq,
                k.now(),
                k.now() - walk0,
            );
            let mut o = CaptureOptions::incremental(
                &self.mechanism_name,
                next_seq,
                self.seq,
                collected.pages.clone(),
            );
            o.compress = self.compress;
            o.save_file_contents = self.save_file_contents;
            o.node = self.node;
            o.encode_pool = Some(self.encode_pool.clone());
            (o, collected.logical_dirty_bytes)
        } else {
            let mut o = CaptureOptions::full(&self.mechanism_name, next_seq);
            o.compress = self.compress;
            o.save_file_contents = self.save_file_contents;
            o.node = self.node;
            o.encode_pool = Some(self.encode_pool.clone());
            (o, 0)
        };
        let kind = opts.kind;
        k.faultpoint(&self.mechanism_name, "capture")?;
        let cap0 = k.now();
        let img = capture_image(k, pid, &opts)?;
        k.trace.phase(
            &self.mechanism_name,
            Phase::Capture,
            pid.0,
            next_seq,
            k.now(),
            k.now() - cap0,
        );
        let pages_saved = img.page_count() as u64;
        let memory_bytes = img.memory_bytes();
        let logical = if kind == ImageKind::Full {
            memory_bytes
        } else {
            logical_dirty
        };
        // Serialize (charged as a kernel copy) and store.
        k.faultpoint(&self.mechanism_name, "compress")?;
        k.faultpoint(&self.mechanism_name, "store")?;
        let encoded_len;
        let storage_ns;
        {
            // Encode outside the storage lock; the pool parallelizes the
            // trailer CRC while the serial layout keeps bytes identical.
            let bytes = ckpt_image::encode_with_pool(&img, &self.encode_pool);
            let mut storage = self.storage.lock();
            let receipt = store_image_bytes(
                storage.as_mut(),
                &self.job,
                img.header.pid,
                img.header.seq,
                &bytes,
                &k.cost,
            )
            .map_err(|e| SimError::Usage(format!("store failed: {e}")))?;
            encoded_len = receipt.bytes;
            storage_ns = receipt.time_ns;
            let label = storage.label();
            // Chain metadata: where (and how widely) this segment landed.
            if let Some(m) = storage.replica_manifest(
                &ckpt_storage::ImageKey::new(&self.job, img.header.pid, img.header.seq).to_string(),
            ) {
                self.chain_manifests.push(m);
            }
            drop(storage);
            k.trace
                .storage(StorageOp::Store, &label, encoded_len, storage_ns);
        }
        let pool_delta = self.encode_pool.stats().since(pool_stats0);
        k.trace
            .par_encode(pool_delta.tasks, pool_delta.steals, pool_delta.merge_stalls);
        let compress_ns = k.cost.memcpy(encoded_len);
        k.charge(compress_ns + storage_ns);
        k.trace.phase(
            &self.mechanism_name,
            Phase::Compress,
            pid.0,
            next_seq,
            k.now() - storage_ns,
            compress_ns,
        );
        k.trace.phase(
            &self.mechanism_name,
            Phase::Store,
            pid.0,
            next_seq,
            k.now(),
            storage_ns,
        );
        self.seq = next_seq;
        if kind == ImageKind::Full {
            self.last_full_seq = next_seq;
            if self.prune {
                k.faultpoint(&self.mechanism_name, "prune")?;
                let prune0 = k.now();
                let mut storage = self.storage.lock();
                let label = storage.label();
                let _ = prune_before(storage.as_mut(), &self.job, pid.0, next_seq, &k.cost);
                drop(storage);
                // Keys sort by zero-padded seq, so this drops exactly the
                // manifests of the pruned segments.
                let cut = ckpt_storage::ImageKey::new(&self.job, pid.0, next_seq).to_string();
                self.chain_manifests.retain(|m| m.key >= cut);
                k.trace.storage(StorageOp::Delete, &label, 0, 0);
                k.trace.phase(
                    &self.mechanism_name,
                    Phase::Prune,
                    pid.0,
                    next_seq,
                    k.now(),
                    k.now() - prune0,
                );
            }
        }
        // Begin the next tracking interval.
        if self.tracker.kind().supports_incremental() {
            k.faultpoint(&self.mechanism_name, "rearm")?;
            let arm0 = k.now();
            self.tracker.arm(k, pid)?;
            k.trace.phase(
                &self.mechanism_name,
                Phase::Rearm,
                pid.0,
                next_seq,
                k.now(),
                k.now() - arm0,
            );
        }
        let total_ns = k.now() - t0;
        Ok(CkptOutcome {
            seq: next_seq,
            incremental: kind == ImageKind::Incremental,
            pages_saved,
            memory_bytes,
            logical_dirty_bytes: logical,
            encoded_bytes: encoded_len,
            total_ns,
            app_stall_ns: total_ns, // callers running concurrently overwrite
            storage_ns,
            events: k.stats.delta_since(&stats0),
        })
    }

    /// Restore the newest checkpoint of the engine's target from storage.
    pub fn restart_from_storage(
        &mut self,
        k: &mut Kernel,
        pid_sel: RestorePid,
    ) -> SimResult<RestartOutcome> {
        let target = self
            .target_pid
            .ok_or_else(|| SimError::Usage("engine has no target; checkpoint first".into()))?;
        restart_from_shared(&self.storage, &self.job, target, k, pid_sel)
    }
}

/// Restore the newest checkpoint of `target` (keyed under `job`) from a
/// shared storage handle onto `k`. This is deliberately independent of any
/// kernel modules or agents: a restart typically happens on a *different*
/// node whose kernel never saw the original mechanism.
pub fn restart_from_shared(
    storage: &SharedStorage,
    job: &str,
    target: Pid,
    k: &mut Kernel,
    pid_sel: RestorePid,
) -> SimResult<RestartOutcome> {
    let t0 = k.now();
    let (full, load_ns, images_loaded, storage_label) = {
        let storage = storage.lock();
        let keys = storage
            .list()
            .iter()
            .filter(|key| key.starts_with(&format!("{}/pid{}/", job, target.0)))
            .count() as u64;
        // Resilient load: torn/corrupt debris from a mid-checkpoint crash
        // is rejected by CRC/format validation and the loader falls back
        // to the newest intact chain. Chain-segment boundaries are
        // themselves injection sites (`chain/seg<seq>`).
        let faults = k.faults.clone();
        let load = load_latest_valid_chain(&**storage, job, target.0, &k.cost, |seq| {
            if faults.is_off() {
                return Ok(());
            }
            match faults.check(&format!("chain/seg{seq}"), 0) {
                None => Ok(()),
                Some(_) => Err(ChainError::Interrupted { at_seq: seq }),
            }
        })
        .map_err(|e| SimError::Usage(format!("restart load failed: {e}")))?;
        (load.image, load.load_ns, keys, storage.label())
    };
    k.charge(load_ns);
    k.faultpoint("restart", "restore")?;
    // Stored encodings are not retained after chain reconstruction; report
    // the decoded image size.
    k.trace
        .storage(StorageOp::Load, &storage_label, full.memory_bytes(), load_ns);
    let pages = full.page_count() as u64;
    let work = full.work_done;
    let seq = full.header.seq;
    let mechanism = full.header.mechanism.clone();
    let pid = restore_image(k, &full, &RestoreOptions::fresh_running(pid_sel))?;
    k.trace
        .phase(&mechanism, Phase::Restore, pid.0, seq, k.now(), k.now() - t0);
    Ok(RestartOutcome {
        pid,
        pages_restored: pages,
        total_ns: k.now() - t0,
        images_loaded,
        work_done: work,
    })
}

/// Attribute the *unattributed remainder* of one checkpoint span to
/// [`Phase::Other`], so a mechanism's per-phase trace totals reconcile
/// exactly with its end-to-end [`CkptOutcome`] numbers. `before` is
/// `k.trace.mechanism_total(name)` sampled when the span began.
pub(crate) fn emit_phase_residual(
    k: &mut Kernel,
    name: &str,
    pid: Pid,
    seq: u64,
    span_ns: u64,
    before: u64,
) {
    if !k.trace.is_enabled() {
        return;
    }
    let attributed = k.trace.mechanism_total(name).saturating_sub(before);
    if span_ns > attributed {
        k.trace
            .phase(name, Phase::Other, pid.0, seq, k.now(), span_ns - attributed);
    }
}

/// Charge one user→kernel→user crossing that is *initiated from user space
/// by a tool* (kill(1), ioctl on a device, writing /proc): the cost every
/// user-initiated mechanism pays to ask the kernel for a checkpoint.
pub fn charge_tool_syscall(k: &mut Kernel) {
    k.stats.syscalls += 1;
    let t = k.cost.syscall_round_trip();
    k.charge(t);
}

/// Drive the kernel until `done(k)` or `limit_ns` of virtual time passes.
pub fn run_until(
    k: &mut Kernel,
    limit_ns: u64,
    what: &str,
    mut done: impl FnMut(&mut Kernel) -> bool,
) -> SimResult<()> {
    let deadline = k.now().saturating_add(limit_ns);
    // A fault already consumed before this wait (e.g. during an earlier
    // checkpoint) must not poison it — bail only on *newly* fired faults.
    let fired_at_entry = k.faults.fired().is_some();
    while !done(k) {
        if !fired_at_entry {
            if let Some(site) = k.faults.fired() {
                return Err(SimError::InjectedFault { site });
            }
        }
        if k.now() >= deadline {
            return Err(SimError::Timeout(what.to_string()));
        }
        let step = k.cost.tick_interval_ns.min(deadline - k.now()).max(1);
        k.run_for(step)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared_storage;
    use ckpt_storage::LocalDisk;
    use simos::apps::{AppParams, NativeKind};
    use simos::cost::CostModel;

    fn setup() -> (Kernel, Pid, KernelCkptEngine) {
        let mut k = Kernel::new(CostModel::circa_2005());
        let mut params = AppParams::small();
        params.mem_bytes = 1024 * 1024;
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
        k.run_for(10_000_000).unwrap();
        let engine = KernelCkptEngine::new(
            "test",
            "job",
            shared_storage(LocalDisk::new(1 << 30)),
            TrackerKind::KernelPage,
        );
        (k, pid, engine)
    }

    /// Run a handful of app steps (fine-grained chunks so the dirtied set
    /// stays small relative to the working set).
    fn run_steps(k: &mut Kernel, pid: Pid, n: u64) {
        let target = k.process(pid).unwrap().work_done + n;
        while k.process(pid).unwrap().work_done < target {
            k.run_for(1_000).unwrap();
        }
    }

    #[test]
    fn first_checkpoint_is_full_then_incremental() {
        let (mut k, pid, mut e) = setup();
        k.freeze_process(pid).unwrap();
        let o1 = e.checkpoint_in_kernel(&mut k, pid).unwrap();
        assert!(!o1.incremental);
        assert_eq!(o1.seq, 1);
        k.thaw_process(pid).unwrap();
        run_steps(&mut k, pid, 5);
        k.freeze_process(pid).unwrap();
        let o2 = e.checkpoint_in_kernel(&mut k, pid).unwrap();
        assert!(o2.incremental);
        assert!(o2.pages_saved < o1.pages_saved);
        assert!(o2.encoded_bytes < o1.encoded_bytes);
    }

    #[test]
    fn full_every_forces_periodic_fulls() {
        let (mut k, pid, mut e) = setup();
        e.full_every = 2;
        let mut kinds = Vec::new();
        for _ in 0..5 {
            k.freeze_process(pid).unwrap();
            let o = e.checkpoint_in_kernel(&mut k, pid).unwrap();
            kinds.push(o.incremental);
            k.thaw_process(pid).unwrap();
            k.run_for(10_000_000).unwrap();
        }
        assert_eq!(kinds, vec![false, true, false, true, false]);
    }

    #[test]
    fn restart_resumes_from_incremental_chain() {
        let (mut k, pid, mut e) = setup();
        for _ in 0..3 {
            k.freeze_process(pid).unwrap();
            e.checkpoint_in_kernel(&mut k, pid).unwrap();
            k.thaw_process(pid).unwrap();
            k.run_for(20_000_000).unwrap();
        }
        let work_at_last_ckpt = {
            // Take one more checkpoint so we know the exact saved state.
            k.freeze_process(pid).unwrap();
            e.checkpoint_in_kernel(&mut k, pid).unwrap();
            let w = k.process(pid).unwrap().work_done;
            k.thaw_process(pid).unwrap();
            w
        };
        // Simulate a crash: kill the process, restart on a fresh kernel.
        let mut k2 = Kernel::new(CostModel::circa_2005());
        let r = e.restart_from_storage(&mut k2, RestorePid::Fresh).unwrap();
        assert_eq!(r.work_done, work_at_last_ckpt);
        assert!(r.images_loaded >= 1);
        // The restored process keeps making progress.
        k2.run_for(20_000_000).unwrap();
        assert!(k2.process(r.pid).unwrap().work_done > work_at_last_ckpt);
    }

    #[test]
    fn prune_keeps_storage_bounded() {
        let (mut k, pid, mut e) = setup();
        e.full_every = 1; // every checkpoint full → prior ones pruned
        for _ in 0..4 {
            k.freeze_process(pid).unwrap();
            e.checkpoint_in_kernel(&mut k, pid).unwrap();
            k.thaw_process(pid).unwrap();
            k.run_for(5_000_000).unwrap();
        }
        assert_eq!(e.storage.lock().list().len(), 1);
    }

    #[test]
    fn restart_without_checkpoint_errors() {
        let (mut k2, _, e) = setup();
        let mut fresh = KernelCkptEngine::new(
            "t",
            "job",
            e.storage.clone(),
            TrackerKind::FullOnly,
        );
        assert!(fresh
            .restart_from_storage(&mut k2, RestorePid::Fresh)
            .is_err());
        drop(e);
    }

    #[test]
    fn replicated_engine_records_manifests_and_survives_replica_loss() {
        let mut k = Kernel::new(CostModel::circa_2005());
        let mut params = AppParams::small();
        params.mem_bytes = 1024 * 1024;
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
        k.run_for(10_000_000).unwrap();
        let store = ckpt_replica::ReplicatedStore::fresh(3, 2);
        let set = store.replica_set();
        let mut e = KernelCkptEngine::builder(
            "test",
            "job",
            shared_storage(LocalDisk::new(1)), // replaced below
            TrackerKind::KernelPage,
        )
        .replicated_store(store)
        .build();
        let mut work_at_last = 0;
        for _ in 0..3 {
            k.freeze_process(pid).unwrap();
            e.checkpoint_in_kernel(&mut k, pid).unwrap();
            work_at_last = k.process(pid).unwrap().work_done;
            k.thaw_process(pid).unwrap();
            run_steps(&mut k, pid, 5);
        }
        // One manifest per committed segment, in store order, all at the
        // configured quorum and fully acked.
        let ms = e.chain_manifests();
        assert_eq!(ms.len(), 3);
        assert!(ms.windows(2).all(|w| w[0].key < w[1].key));
        for m in ms {
            assert_eq!((m.n, m.w), (3, 2));
            assert_eq!(m.acked, vec![0, 1, 2]);
            assert!(m.bytes > 0 && m.digest != 0);
        }
        // A replica dies; the committed chain must still restart bit-exact
        // from the surviving quorum.
        set.node(2).fail();
        let mut k2 = Kernel::new(CostModel::circa_2005());
        let r = e.restart_from_storage(&mut k2, RestorePid::Fresh).unwrap();
        assert_eq!(r.work_done, work_at_last);

        // A forced full prunes the old chain and drops its manifests too.
        e.full_every = 1;
        k.freeze_process(pid).unwrap();
        e.checkpoint_in_kernel(&mut k, pid).unwrap();
        k.thaw_process(pid).unwrap();
        assert_eq!(e.chain_manifests().len(), 1);
        assert_eq!(e.chain_manifests()[0].acked, vec![0, 1]);
    }

    #[test]
    fn erasure_engine_records_coded_manifests_and_survives_shard_loss() {
        let mut k = Kernel::new(CostModel::circa_2005());
        let mut params = AppParams::small();
        params.mem_bytes = 1024 * 1024;
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
        k.run_for(10_000_000).unwrap();
        let store = ckpt_ec::ErasureStore::fresh(4, 2);
        let set = store.replica_set();
        let mut e = KernelCkptEngine::builder(
            "test",
            "job",
            shared_storage(LocalDisk::new(1)), // replaced below
            TrackerKind::KernelPage,
        )
        .erasure_store(store)
        .build();
        let mut work_at_last = 0;
        for _ in 0..3 {
            k.freeze_process(pid).unwrap();
            e.checkpoint_in_kernel(&mut k, pid).unwrap();
            work_at_last = k.process(pid).unwrap().work_done;
            k.thaw_process(pid).unwrap();
            run_steps(&mut k, pid, 5);
        }
        // One manifest per committed segment, carrying the coding
        // geometry: n = k + m shard nodes, shard write quorum w.
        let ms = e.chain_manifests();
        assert_eq!(ms.len(), 3);
        for m in ms {
            assert_eq!((m.n, m.w), (6, 5));
            assert_eq!(
                m.coding,
                Some(ckpt_storage::CodingGeometry { k: 4, m: 2 })
            );
            assert_eq!(m.acked, vec![0, 1, 2, 3, 4, 5]);
            assert!(m.bytes > 0 && m.digest != 0);
        }
        // m = 2 shard nodes die; the committed chain must still restart
        // bit-exact by Reed-Solomon reconstruction from the k survivors.
        set.node(1).fail();
        set.node(4).fail();
        let mut k2 = Kernel::new(CostModel::circa_2005());
        let r = e.restart_from_storage(&mut k2, RestorePid::Fresh).unwrap();
        assert_eq!(r.work_done, work_at_last);
        // A third loss crosses the m-loss boundary: typed refusal, never
        // silent corruption.
        set.node(0).fail();
        let mut k3 = Kernel::new(CostModel::circa_2005());
        assert!(e.restart_from_storage(&mut k3, RestorePid::Fresh).is_err());
    }

    #[test]
    fn run_until_times_out() {
        let mut k = Kernel::new(CostModel::circa_2005());
        let r = run_until(&mut k, 1_000_000, "never", |_| false);
        assert!(matches!(r, Err(SimError::Timeout(_))));
    }
}
