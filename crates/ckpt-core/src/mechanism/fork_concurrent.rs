//! Fork-based concurrent checkpointing (Section 4, "Checkpoint" [5],
//! Carothers & Szymanski).
//!
//! Instead of stopping the application for the whole save, the kernel
//! **forks** it: the frozen child is a consistent copy whose pages a kernel
//! thread saves while the parent keeps computing. The application stalls
//! only for the fork itself (page-table copy + COW arming); it then pays
//! COW faults on pages it writes while the save is in flight — both charged
//! by the substrate ([`simos::Kernel::fork_process`]).

use super::{
    charge_tool_syscall, run_until, AgentKind, Context, Initiation, Mechanism, MechanismInfo,
};
use crate::capture::{capture_image, CaptureOptions};
use crate::report::{CkptOutcome, RestartOutcome};
use crate::{RestorePid, SharedStorage};
use ckpt_storage::store_image;
use simos::module::{KernelModule, KthreadStatus};
use simos::sched::SchedPolicy;
use simos::trace::Phase;
use simos::types::{Errno, KtId, Pid, SimError, SimResult, SysResult};
use simos::Kernel;
use std::any::Any;
use std::collections::{BTreeMap, VecDeque};

/// One queued save request.
#[derive(Debug, Clone)]
struct SaveReq {
    child: Pid,
    parent: Pid,
    initiated_at: u64,
    fork_stall_ns: u64,
    /// Kernel counters at initiation (so the outcome's event delta covers
    /// the whole request, including the parent's COW faults during the
    /// concurrent save).
    stats0: simos::stats::KernelStats,
    /// Trace cost already attributed to this mechanism at initiation, so
    /// the completion-time residual covers exactly this request's span.
    trace0: u64,
}

/// Pages the background saver copies per scheduling burst. Small enough
/// that the parent gets the CPU between bursts (the concurrency the scheme
/// exists for), large enough to amortize the switch.
const SAVE_CHUNK_PAGES: usize = 16;

/// An in-flight background save.
struct ActiveSave {
    req: SaveReq,
    pages_left: Vec<u64>,
    collected: Vec<ckpt_image::PageRecord>,
    /// Accumulated page-copy cost across bursts (the Capture phase).
    capture_ns: u64,
}

/// The static-kernel extension implementing fork-concurrent checkpoints.
pub struct ForkCkptModule {
    name: String,
    job: String,
    storage: SharedStorage,
    seqs: BTreeMap<u32, u64>,
    queue: VecDeque<SaveReq>,
    active: Option<ActiveSave>,
    kt: Option<KtId>,
    slot: Option<u32>,
    pub outcomes: Vec<(Pid, CkptOutcome)>,
    pub failures: u64,
}

impl ForkCkptModule {
    pub fn new(name: &str, job: &str, storage: SharedStorage) -> Self {
        ForkCkptModule {
            name: name.to_string(),
            job: job.to_string(),
            storage,
            seqs: BTreeMap::new(),
            queue: VecDeque::new(),
            active: None,
            kt: None,
            slot: None,
            outcomes: Vec::new(),
            failures: 0,
        }
    }

    pub fn slot(&self) -> Option<u32> {
        self.slot
    }
}

impl KernelModule for ForkCkptModule {
    fn name(&self) -> &str {
        &self.name
    }

    /// Implemented via new syscalls in the static kernel (per the paper).
    fn is_loadable(&self) -> bool {
        false
    }

    fn on_load(&mut self, k: &mut Kernel) {
        let name = self.name.clone();
        self.slot = Some(k.register_ext_syscall(&name));
        // Deliberately *not* SCHED_FIFO: the saver shares the CPU with
        // the application so the save overlaps execution (on a
        // multiprocessor it would run truly in parallel; under the
        // uniprocessor scheduler it interleaves).
        self.kt = Some(k.spawn_kthread(
            &format!("{name}d"),
            &name,
            SchedPolicy::Other { nice: 0 },
        ));
    }

    fn ext_syscall(&mut self, k: &mut Kernel, pid: Pid, slot: u32, args: [u64; 5]) -> SysResult {
        if Some(slot) != self.slot {
            return Err(Errno::ENOSYS);
        }
        let target = if args[0] == 0 { pid } else { Pid(args[0] as u32) };
        let initiated_at = k.now();
        let trace0 = k.trace.mechanism_total(&self.name);
        let t0 = k.now();
        // The fork is this scheme's freeze point: the only moment the
        // application is stalled.
        k.faultpoint(&self.name, "fork").map_err(|_| Errno::EINTR)?;
        let child = k.fork_process(target).map_err(|_| Errno::EAGAIN)?;
        // The child is born Stopped (consistent copy); the parent's stall
        // is exactly the fork duration.
        let fork_stall_ns = k.now() - t0;
        self.queue.push_back(SaveReq {
            child,
            parent: target,
            initiated_at,
            fork_stall_ns,
            stats0: k.stats.clone(),
            trace0,
        });
        if let Some(kt) = self.kt {
            let _ = k.wake_kthread(kt);
        }
        Ok(child.0 as u64)
    }

    fn kthread_run(&mut self, k: &mut Kernel, _kt: KtId) -> KthreadStatus {
        // Pick up (or continue) a save.
        if self.active.is_none() {
            let Some(req) = self.queue.pop_front() else {
                return KthreadStatus::Sleep;
            };
            if k.faultpoint(&self.name, "capture").is_err() {
                self.failures += 1;
                self.cleanup_child(k, &req);
                return self.next_status();
            }
            let pages_left: Vec<u64> = match k.process(req.child) {
                Some(c) => c.mem.resident_pages().collect(),
                None => {
                    self.failures += 1;
                    return self.next_status();
                }
            };
            self.active = Some(ActiveSave {
                req,
                pages_left,
                collected: Vec::new(),
                capture_ns: 0,
            });
        }
        let mut save = self.active.take().expect("just ensured");
        // The kernel thread needs the child's page tables.
        let _ = k.kthread_attach_mm(save.req.child);
        // Copy a bounded burst of pages, then yield the CPU back to the
        // application — this interleaving is the scheme's concurrency.
        let burst: Vec<u64> = {
            let n = save.pages_left.len().min(SAVE_CHUNK_PAGES);
            save.pages_left.drain(..n).collect()
        };
        {
            let Some(child) = k.process(save.req.child) else {
                self.failures += 1;
                return self.next_status();
            };
            for pn in &burst {
                if let Some(data) = child.mem.page_data(*pn) {
                    save.collected.push(ckpt_image::PageRecord::capture(*pn, data));
                }
            }
        }
        let t = k.cost.memcpy(burst.len() as u64 * simos::cost::PAGE_SIZE);
        k.charge(t);
        save.capture_ns += t;
        if !save.pages_left.is_empty() {
            self.active = Some(save);
            return KthreadStatus::Yield;
        }
        // All pages copied: assemble the image (non-page state from the
        // frozen child), store, finish.
        let capture_ns = save.capture_ns;
        let req = save.req;
        let stats0 = req.stats0.clone();
        let seq = self.seqs.entry(req.parent.0).or_insert(0);
        *seq += 1;
        let seq = *seq;
        let mut opts = CaptureOptions::full(&self.name, seq);
        opts.pages = crate::capture::PageSelection::Set(Default::default());
        let result = capture_image(k, req.child, &opts);
        match result {
            Ok(mut img) => {
                img.pages = save.collected;
                img.pages.sort_by_key(|p| p.page_no);
                // The image must restore as the *parent*.
                img.header.pid = req.parent.0;
                if k.faultpoint(&self.name, "store").is_err() {
                    self.failures += 1;
                    self.cleanup_child(k, &req);
                    return self.next_status();
                }
                let (stored, store_label) = {
                    let mut storage = self.storage.lock();
                    let r = store_image(storage.as_mut(), &self.job, &img, &k.cost);
                    (r, storage.label())
                };
                let (bytes, storage_ns) = match stored {
                    Ok(r) => (r.bytes, r.time_ns),
                    Err(_) => {
                        self.failures += 1;
                        self.cleanup_child(k, &req);
                        return self.next_status();
                    }
                };
                k.trace
                    .storage(simos::trace::StorageOp::Store, &store_label, bytes, storage_ns);
                let t = k.cost.memcpy(bytes) + storage_ns;
                k.charge(t);
                let total_ns = k.now() - req.initiated_at;
                // Phases are emitted at completion: Freeze is the parent's
                // fork stall, Capture the accumulated burst copies, and the
                // parent logically resumed right after the fork.
                k.trace.phase(
                    &self.name,
                    Phase::Freeze,
                    req.parent.0,
                    seq,
                    req.initiated_at + req.fork_stall_ns,
                    req.fork_stall_ns,
                );
                k.trace
                    .phase(&self.name, Phase::Capture, req.parent.0, seq, k.now(), capture_ns);
                k.trace.phase(
                    &self.name,
                    Phase::Compress,
                    req.parent.0,
                    seq,
                    k.now(),
                    k.cost.memcpy(bytes),
                );
                k.trace
                    .phase(&self.name, Phase::Store, req.parent.0, seq, k.now(), storage_ns);
                if k.faultpoint(&self.name, "resume").is_err() {
                    // The image is already durable; only the request's
                    // completion is lost.
                    self.failures += 1;
                    self.cleanup_child(k, &req);
                    return self.next_status();
                }
                k.trace
                    .phase(&self.name, Phase::Resume, req.parent.0, seq, k.now(), 0);
                super::emit_phase_residual(k, &self.name, req.parent, seq, total_ns, req.trace0);
                let outcome = CkptOutcome {
                    seq,
                    incremental: false,
                    pages_saved: img.page_count() as u64,
                    memory_bytes: img.memory_bytes(),
                    logical_dirty_bytes: img.memory_bytes(),
                    encoded_bytes: bytes,
                    total_ns,
                    app_stall_ns: req.fork_stall_ns,
                    storage_ns,
                    events: k.stats.delta_since(&stats0),
                };
                self.outcomes.push((req.parent, outcome));
            }
            Err(_) => {
                self.failures += 1;
            }
        }
        self.cleanup_child(k, &req);
        self.next_status()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl ForkCkptModule {
    fn cleanup_child(&mut self, k: &mut Kernel, req: &SaveReq) {
        // Discard the copy and stop COW accounting on the parent.
        if let Some(c) = k.process_mut(req.child) {
            c.state = simos::pcb::ProcState::Zombie { code: 0 };
        }
        let _ = k.reap(req.child);
        k.end_cow(req.parent);
    }

    fn next_status(&self) -> KthreadStatus {
        if self.queue.is_empty() {
            KthreadStatus::Sleep
        } else {
            KthreadStatus::Yield
        }
    }
}

/// The mechanism wrapper.
pub struct ForkConcurrentMechanism {
    pub module_name: String,
    /// The surveyed *Checkpoint* system has the application itself invoke
    /// the syscalls (automatic initiation, no transparency); when false,
    /// an external tool drives the syscall instead.
    pub invoked_by_app: bool,
    /// If app-invoked: call the checkpoint syscall every N app steps.
    pub self_every: u64,
    storage: SharedStorage,
    job: String,
    target: Option<Pid>,
}

impl ForkConcurrentMechanism {
    pub fn new(module_name: &str, job: &str, storage: SharedStorage) -> Self {
        ForkConcurrentMechanism {
            module_name: module_name.to_string(),
            invoked_by_app: false,
            self_every: 0,
            storage,
            job: job.to_string(),
            target: None,
        }
    }
}

impl Mechanism for ForkConcurrentMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            family: "fork-concurrent",
            context: Context::SystemOs,
            agent: AgentKind::ConcurrentFork,
            is_kernel_module: false, // static kernel syscalls
            transparent: false,      // requires direct syscall invocation
            supports_incremental: false,
            initiation: if self.invoked_by_app {
                Initiation::Automatic
            } else {
                Initiation::UserInitiated
            },
        }
    }

    fn prepare(&mut self, k: &mut Kernel, pid: Pid) -> SimResult<()> {
        self.target = Some(pid);
        if !k.module_loaded(&self.module_name) {
            k.register_module(Box::new(ForkCkptModule::new(
                &self.module_name,
                &self.job,
                self.storage.clone(),
            )))?;
        }
        if self.invoked_by_app && self.self_every > 0 {
            let slot = k
                .with_module_mut::<ForkCkptModule, _>(&self.module_name, |m, _| m.slot())
                .flatten()
                .ok_or_else(|| SimError::Usage("fork module missing slot".into()))?;
            let p = k.process_mut(pid).ok_or(SimError::NoSuchProcess(pid))?;
            p.user_rt.self_ckpt_ext = Some(slot);
            p.user_rt.self_ckpt_every = Some(self.self_every);
        }
        Ok(())
    }

    fn checkpoint(&mut self, k: &mut Kernel, pid: Pid) -> SimResult<CkptOutcome> {
        if self.invoked_by_app {
            return Err(SimError::Usage(
                "the Checkpoint system is invoked by the application itself".into(),
            ));
        }
        let name = self.module_name.clone();
        let before = self.outcomes(k).len();
        charge_tool_syscall(k);
        let slot = k
            .with_module_mut::<ForkCkptModule, _>(&name, |m, _| m.slot())
            .flatten()
            .ok_or_else(|| SimError::Usage("module not prepared".into()))?;
        k.dispatch_module(&name, |m, k| {
            m.ext_syscall(k, pid, slot, [pid.0 as u64, 0, 0, 0, 0])
        })
        .ok_or_else(|| SimError::Usage("module missing".into()))?
        .map_err(|e| SimError::Usage(format!("fork checkpoint failed: {e:?}")))?;
        run_until(k, 60_000_000_000, "fork-concurrent save", |k| {
            k.with_module_mut::<ForkCkptModule, _>(&name, |m, _| m.outcomes.len())
                .unwrap_or(0)
                > before
        })?;
        let all = self.outcomes(k);
        all.get(before)
            .cloned()
            .ok_or_else(|| SimError::Usage("no outcome recorded".into()))
    }

    fn restart(&mut self, k: &mut Kernel, pid: RestorePid) -> SimResult<RestartOutcome> {
        let target = self
            .target
            .ok_or_else(|| SimError::Usage("not prepared".into()))?;
        super::restart_from_shared(&self.storage, &self.job, target, k, pid)
    }

    fn outcomes(&self, k: &Kernel) -> Vec<CkptOutcome> {
        k.with_module::<ForkCkptModule, _>(&self.module_name, |m| {
            m.outcomes.iter().map(|(_, o)| o.clone()).collect()
        })
        .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::kthread::{KernelThreadMechanism, KthreadIface, KthreadVariant};
    use crate::shared_storage;
    use crate::tracker::TrackerKind;
    use ckpt_storage::LocalDisk;
    use simos::apps::{AppParams, NativeKind};
    use simos::cost::CostModel;

    fn setup(mem_bytes: u64) -> (Kernel, Pid, ForkConcurrentMechanism) {
        let mut k = Kernel::new(CostModel::circa_2005());
        let mut params = AppParams::small();
        params.mem_bytes = mem_bytes;
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::DenseSweep, params).unwrap();
        k.run_for(20_000_000).unwrap();
        let mut mech = ForkConcurrentMechanism::new(
            "forkckpt",
            "job",
            shared_storage(LocalDisk::new(1 << 30)),
        );
        mech.prepare(&mut k, pid).unwrap();
        (k, pid, mech)
    }

    #[test]
    fn stall_is_fork_only_and_much_less_than_total() {
        let (mut k, pid, mut mech) = setup(2 * 1024 * 1024);
        let o = mech.checkpoint(&mut k, pid).unwrap();
        assert!(o.app_stall_ns > 0);
        assert!(
            o.app_stall_ns * 4 < o.total_ns,
            "stall {} should be a small fraction of total {}",
            o.app_stall_ns,
            o.total_ns
        );
    }

    #[test]
    fn stall_beats_stop_the_world_kthread() {
        // The scheme's whole point: application stall is far below the
        // stop-the-world mechanisms' for the same image size.
        let (mut k1, p1, mut fork_mech) = setup(2 * 1024 * 1024);
        let fork_stall = fork_mech.checkpoint(&mut k1, p1).unwrap().app_stall_ns;

        let mut k2 = Kernel::new(CostModel::circa_2005());
        let mut params = AppParams::small();
        params.mem_bytes = 2 * 1024 * 1024;
        params.total_steps = u64::MAX;
        let p2 = k2.spawn_native(NativeKind::DenseSweep, params).unwrap();
        k2.run_for(20_000_000).unwrap();
        let mut stw = KernelThreadMechanism::new(
            "crak",
            "job",
            shared_storage(LocalDisk::new(1 << 30)),
            TrackerKind::FullOnly,
            KthreadIface::Ioctl,
            KthreadVariant::default(),
        );
        stw.prepare(&mut k2, p2).unwrap();
        let stw_stall = stw.checkpoint(&mut k2, p2).unwrap().app_stall_ns;
        assert!(
            fork_stall * 5 < stw_stall,
            "fork stall {fork_stall} vs stop-the-world stall {stw_stall}"
        );
    }

    #[test]
    fn parent_pays_cow_faults_while_save_in_flight() {
        let (mut k, pid, mut mech) = setup(1024 * 1024);
        let cow0 = k.stats.cow_faults;
        mech.checkpoint(&mut k, pid).unwrap();
        assert!(
            k.stats.cow_faults > cow0,
            "dense writer must hit COW faults during the concurrent save"
        );
        // COW accounting ends after the save.
        assert!(k.process(pid).unwrap().cow_pending.is_empty());
    }

    #[test]
    fn child_copy_is_reaped() {
        let (mut k, pid, mut mech) = setup(256 * 1024);
        let procs_before = k.pids().len();
        mech.checkpoint(&mut k, pid).unwrap();
        assert_eq!(k.pids().len(), procs_before, "forked copy must be reaped");
    }

    #[test]
    fn image_restores_as_the_parent() {
        let (mut k, pid, mut mech) = setup(256 * 1024);
        let o = mech.checkpoint(&mut k, pid).unwrap();
        assert_eq!(o.seq, 1);
        let mut k2 = Kernel::new(CostModel::circa_2005());
        let r = mech.restart(&mut k2, RestorePid::Fresh).unwrap();
        // Progress resumes from at/after the fork instant.
        assert!(r.work_done > 0);
        k2.run_for(20_000_000).unwrap();
        assert!(k2.process(r.pid).unwrap().work_done > r.work_done);
        let _ = pid;
    }

    #[test]
    fn consistency_snapshot_is_fork_instant() {
        // The saved image reflects the state at fork time even though the
        // parent kept mutating during the save.
        let (mut k, pid, mut mech) = setup(256 * 1024);
        let work_at_fork = k.process(pid).unwrap().work_done;
        let o = mech.checkpoint(&mut k, pid).unwrap();
        let work_after = k.process(pid).unwrap().work_done;
        assert!(work_after > work_at_fork, "parent ran during the save");
        // Restore and check the image's work counter is from fork time
        // (within one step, since the fork lands mid-slice).
        let mut k2 = Kernel::new(CostModel::circa_2005());
        let r = mech.restart(&mut k2, RestorePid::Fresh).unwrap();
        assert!(r.work_done >= work_at_fork);
        assert!(r.work_done <= work_at_fork + 2);
        let _ = o;
    }
}
