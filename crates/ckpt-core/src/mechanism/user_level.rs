//! The user-level mechanism family (Section 3): checkpoint libraries,
//! signal-handler triggers, and `LD_PRELOAD` interposition.
//!
//! One implementation covers the three user-level agents of Figure 1 via
//! [`Trigger`]:
//!
//! * [`Trigger::SelfCall`] — libckpt/libckp/Condor-style: the application
//!   is modified (or pre-compiled) to call the checkpoint library
//!   periodically. Automatic initiation only — no external party can
//!   trigger a checkpoint (the paper's flexibility complaint).
//! * [`Trigger::Signal`] — a general-purpose signal (`SIGUSR1`/`SIGUSR2`,
//!   Condor) invokes the library's handler. The handler calls
//!   non-reentrant library functions, so signals landing inside `malloc`
//!   are recorded as hazards by the substrate.
//! * [`Trigger::Timer`] — `SIGALRM` via `setitimer` (libckpt, Esky).
//!
//! Setting [`UserLevelMechanism::preload`] models the `LD_PRELOAD` scheme:
//! no relink (transparent), mirrored fd/mmap tables instead of `/proc`
//! parsing at checkpoint time — paid for with a per-syscall interposition
//! tax for the whole run.

use super::{
    charge_tool_syscall, run_until, AgentKind, Context, Initiation, Mechanism, MechanismInfo,
};
use crate::agents::{UserAgentConfig, UserCkptAgent};
use crate::report::{CkptOutcome, RestartOutcome};
use crate::tracker::TrackerKind;
use crate::{RestorePid, SharedStorage};
use simos::mem::VmaKind;
use simos::signal::{Sig, SigAction, UserHandlerKind};
use simos::syscall::Syscall;
use simos::types::{Pid, SimError, SimResult};
use simos::Kernel;

/// What causes the library to take a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Inserted call sites every `every` application steps.
    SelfCall { every: u64 },
    /// A general-purpose signal caught by the library's handler.
    Signal { sig: Sig },
    /// A periodic `SIGALRM` armed with `setitimer`.
    Timer { interval_ns: u64 },
}

/// The user-level mechanism.
pub struct UserLevelMechanism {
    pub agent_name: String,
    pub trigger: Trigger,
    /// LD_PRELOAD interposition instead of relinking.
    pub preload: bool,
    pub tracker: TrackerKind,
    storage: SharedStorage,
    job: String,
    target: Option<Pid>,
}

impl UserLevelMechanism {
    pub fn new(
        agent_name: &str,
        job: &str,
        storage: SharedStorage,
        tracker: TrackerKind,
        trigger: Trigger,
    ) -> Self {
        UserLevelMechanism {
            agent_name: agent_name.to_string(),
            trigger,
            preload: false,
            tracker,
            storage,
            job: job.to_string(),
            target: None,
        }
    }

    fn trigger_signal(&self) -> Option<Sig> {
        match self.trigger {
            Trigger::SelfCall { .. } => None,
            Trigger::Signal { sig } => Some(sig),
            Trigger::Timer { .. } => Some(Sig::SIGALRM),
        }
    }
}

impl Mechanism for UserLevelMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            family: "user-level",
            context: Context::UserLevel,
            agent: if self.preload {
                AgentKind::Preload
            } else {
                match self.trigger {
                    Trigger::SelfCall { .. } => AgentKind::LibraryCall,
                    _ => AgentKind::UserSignalHandler,
                }
            },
            is_kernel_module: false,
            // Relinking against the library breaks transparency unless the
            // whole thing is injected with LD_PRELOAD.
            transparent: self.preload,
            supports_incremental: self.tracker.supports_incremental(),
            initiation: match self.trigger {
                Trigger::SelfCall { .. } => Initiation::Automatic,
                // Timer-armed libraries still accept `kill -ALRM` from
                // outside, and Signal ones are driven by kill.
                _ => Initiation::UserInitiated,
            },
        }
    }

    fn prepare(&mut self, k: &mut Kernel, pid: Pid) -> SimResult<()> {
        self.target = Some(pid);
        let mut cfg = UserAgentConfig::new(&self.agent_name, &self.job);
        cfg.tracker = self.tracker;
        cfg.use_mirrors = self.preload;
        let agent = UserCkptAgent::new(cfg, self.storage.clone());
        k.register_agent(Box::new(agent))?;
        {
            let p = k
                .process_mut(pid)
                .ok_or(SimError::NoSuchProcess(pid))?;
            p.user_rt.agent = Some(self.agent_name.clone());
            if self.preload {
                p.user_rt.interpose_active = true;
            }
        }
        match self.trigger {
            Trigger::SelfCall { every } => {
                let p = k.process_mut(pid).expect("checked above");
                p.user_rt.self_ckpt_every = Some(every);
            }
            Trigger::Signal { sig } => {
                // The library installs its handler at init. The handler
                // calls malloc/stdio — non-reentrant (the paper's hazard).
                k.do_syscall(
                    pid,
                    Syscall::Sigaction {
                        sig,
                        action: SigAction::Handler {
                            kind: UserHandlerKind::CkptLibCheckpoint,
                            uses_non_reentrant: true,
                        },
                    },
                )
                .map_err(|e| SimError::Usage(format!("sigaction failed: {e:?}")))?;
            }
            Trigger::Timer { interval_ns } => {
                k.do_syscall(
                    pid,
                    Syscall::Sigaction {
                        sig: Sig::SIGALRM,
                        action: SigAction::Handler {
                            kind: UserHandlerKind::CkptLibCheckpoint,
                            uses_non_reentrant: true,
                        },
                    },
                )
                .map_err(|e| SimError::Usage(format!("sigaction failed: {e:?}")))?;
                k.do_syscall(pid, Syscall::Setitimer { interval_ns })
                    .map_err(|e| SimError::Usage(format!("setitimer failed: {e:?}")))?;
            }
        }
        Ok(())
    }

    fn checkpoint(&mut self, k: &mut Kernel, pid: Pid) -> SimResult<CkptOutcome> {
        let Some(sig) = self.trigger_signal() else {
            return Err(SimError::Usage(
                "library-call checkpointing is automatic-initiated only \
                 (the inflexibility the paper criticizes)"
                    .into(),
            ));
        };
        let name = self.agent_name.clone();
        let before = self.outcomes(k).len();
        // kill(1) from outside.
        charge_tool_syscall(k);
        k.post_signal(pid, sig);
        run_until(k, 60_000_000_000, "user-level checkpoint", |k| {
            k.with_agent_mut::<UserCkptAgent, _>(&name, |a, _| a.outcomes.len())
                .unwrap_or(0)
                > before
        })?;
        let all = self.outcomes(k);
        all.get(before)
            .cloned()
            .ok_or_else(|| SimError::Usage("no outcome recorded".into()))
    }

    fn restart(&mut self, k: &mut Kernel, pid: RestorePid) -> SimResult<RestartOutcome> {
        let target = self
            .target
            .ok_or_else(|| SimError::Usage("not prepared".into()))?;
        let out = super::restart_from_shared(&self.storage, &self.job, target, k, pid)?;
        // The user-level restorer rebuilds kernel state with syscalls:
        // open+lseek per descriptor, mmap per dynamic region, plus the
        // initial brk/sigaction calls — crossings a kernel-level restore
        // does not pay.
        let (nfds, nmmaps) = {
            let p = k
                .process(out.pid)
                .ok_or(SimError::NoSuchProcess(out.pid))?;
            (
                p.fds.len() as u64,
                p.mem
                    .vmas()
                    .iter()
                    .filter(|v| v.kind == VmaKind::Mmap)
                    .count() as u64,
            )
        };
        let calls = 2 * nfds + nmmaps + 2;
        k.stats.syscalls += calls;
        let t = calls * k.cost.syscall_round_trip();
        k.charge(t);
        Ok(out)
    }

    fn outcomes(&self, k: &Kernel) -> Vec<CkptOutcome> {
        k.with_agent::<UserCkptAgent, _>(&self.agent_name, |a| a.outcomes.clone())
            .unwrap_or_default()
    }
}

/// Wait until at least `n` automatic checkpoints have completed.
pub fn wait_for_auto_checkpoints(
    mech: &UserLevelMechanism,
    k: &mut Kernel,
    n: usize,
    limit_ns: u64,
) -> SimResult<Vec<CkptOutcome>> {
    let name = mech.agent_name.clone();
    run_until(k, limit_ns, "automatic user-level checkpoints", |k| {
        k.with_agent_mut::<UserCkptAgent, _>(&name, |a, _| a.outcomes.len())
            .unwrap_or(0)
            >= n
    })?;
    Ok(k
        .with_agent_mut::<UserCkptAgent, _>(&name, |a, _| a.outcomes.clone())
        .unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared_storage;
    use ckpt_storage::LocalDisk;
    use simos::apps::{AppParams, NativeKind};
    use simos::cost::CostModel;

    fn setup(trigger: Trigger, tracker: TrackerKind) -> (Kernel, Pid, UserLevelMechanism) {
        let mut k = Kernel::new(CostModel::circa_2005());
        let mut params = AppParams::small();
        params.mem_bytes = 1024 * 1024;
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
        let mut mech = UserLevelMechanism::new(
            "libckpt",
            "job",
            shared_storage(LocalDisk::new(1 << 30)),
            tracker,
            trigger,
        );
        mech.prepare(&mut k, pid).unwrap();
        (k, pid, mech)
    }

    #[test]
    fn self_call_variant_checkpoints_automatically_only() {
        let (mut k, pid, mut mech) = setup(
            Trigger::SelfCall { every: 20 },
            TrackerKind::FullOnly,
        );
        assert_eq!(mech.info().initiation, Initiation::Automatic);
        assert!(mech.checkpoint(&mut k, pid).is_err());
        let outcomes = wait_for_auto_checkpoints(&mech, &mut k, 2, 5_000_000_000).unwrap();
        assert!(outcomes.len() >= 2);
    }

    #[test]
    fn signal_variant_is_kill_driven() {
        let (mut k, pid, mut mech) = setup(
            Trigger::Signal { sig: Sig::SIGUSR1 },
            TrackerKind::UserPage,
        );
        k.run_for(20_000_000).unwrap();
        let o1 = mech.checkpoint(&mut k, pid).unwrap();
        assert!(!o1.incremental);
        // A few sparse steps only, so the delta stays small.
        let target = k.process(pid).unwrap().work_done + 5;
        while k.process(pid).unwrap().work_done < target {
            k.run_for(1_000).unwrap();
        }
        let o2 = mech.checkpoint(&mut k, pid).unwrap();
        assert!(o2.incremental, "user-page tracking enables incrementals");
        assert!(o2.encoded_bytes < o1.encoded_bytes);
    }

    #[test]
    fn timer_variant_checkpoints_periodically() {
        let (mut k, _pid, mech) = setup(
            Trigger::Timer {
                interval_ns: 30_000_000,
            },
            TrackerKind::FullOnly,
        );
        let outcomes = wait_for_auto_checkpoints(&mech, &mut k, 3, 5_000_000_000).unwrap();
        assert!(outcomes.len() >= 3);
    }

    #[test]
    fn user_level_pays_more_crossings_than_kernel_level() {
        use crate::mechanism::syscall::{SyscallMechanism, SyscallVariant};
        // Same workload, one checkpoint each; count syscalls in the
        // checkpoint window.
        let (mut ku, pu, mut user) = setup(
            Trigger::Signal { sig: Sig::SIGUSR1 },
            TrackerKind::FullOnly,
        );
        ku.run_for(20_000_000).unwrap();
        let u = user.checkpoint(&mut ku, pu).unwrap();

        let mut ks = Kernel::new(CostModel::circa_2005());
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let ps = ks.spawn_native(NativeKind::SparseRandom, params).unwrap();
        let mut sysm = SyscallMechanism::new(
            "epckpt",
            SyscallVariant::ByPid,
            "job",
            shared_storage(LocalDisk::new(1 << 30)),
            TrackerKind::FullOnly,
        );
        sysm.prepare(&mut ks, ps).unwrap();
        ks.run_for(20_000_000).unwrap();
        let s = sysm.checkpoint(&mut ks, ps).unwrap();

        assert!(
            u.events.syscalls > 2 * s.events.syscalls,
            "user-level checkpoint used {} syscalls vs kernel-level {}",
            u.events.syscalls,
            s.events.syscalls
        );
    }

    #[test]
    fn preload_is_transparent_but_taxes_every_interposable_call() {
        let (k, pid, mech) = setup(
            Trigger::Signal { sig: Sig::SIGUSR2 },
            TrackerKind::FullOnly,
        );
        // Re-prepare a fresh setup with preload on.
        let mut k2 = Kernel::new(CostModel::circa_2005());
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let p2 = k2.spawn_native(NativeKind::SparseRandom, params).unwrap();
        let mut pre = UserLevelMechanism::new(
            "zapish",
            "job",
            shared_storage(LocalDisk::new(1 << 30)),
            TrackerKind::FullOnly,
            Trigger::Signal { sig: Sig::SIGUSR2 },
        );
        pre.preload = true;
        pre.prepare(&mut k2, p2).unwrap();
        assert!(pre.info().transparent);
        assert!(!mech.info().transparent);
        // Interposable syscalls get taxed and mirrored.
        k2.do_syscall(
            p2,
            Syscall::Open {
                path: "/tmp/x".into(),
                flags: simos::fs::OpenFlags::WRONLY_CREATE,
            },
        )
        .unwrap();
        assert_eq!(k2.stats.interposed_syscalls, 1);
        assert_eq!(k2.process(p2).unwrap().user_rt.fd_mirror.len(), 1);
        let _ = (k, pid);
    }

    #[test]
    fn signal_inside_malloc_records_hazard() {
        // A VM guest that lives inside malloc, with the checkpoint-signal
        // handler installed: hazards must be recorded.
        let mut k = Kernel::new(CostModel::circa_2005());
        let pid = k
            .spawn_vm(simos::asm::programs::malloc_heavy(), "malloc-heavy")
            .unwrap();
        let mut mech = UserLevelMechanism::new(
            "libckpt",
            "job",
            shared_storage(LocalDisk::new(1 << 30)),
            TrackerKind::FullOnly,
            Trigger::Signal { sig: Sig::SIGUSR1 },
        );
        mech.prepare(&mut k, pid).unwrap();
        k.run_for(2_000_000).unwrap();
        let mut hazards = 0;
        for _ in 0..50 {
            let _ = mech.checkpoint(&mut k, pid);
            hazards = k.process(pid).unwrap().sig.hazards.len();
            if hazards > 0 {
                break;
            }
            k.run_for(1_000_000).unwrap();
        }
        assert!(hazards > 0, "no reentrancy hazard recorded");
    }

    #[test]
    fn restart_pays_user_side_reconstruction_syscalls() {
        let (mut k, pid, mut mech) = setup(
            Trigger::Signal { sig: Sig::SIGUSR1 },
            TrackerKind::FullOnly,
        );
        // Give the process some fds and an mmap to rebuild.
        for i in 0..3 {
            k.do_syscall(
                pid,
                Syscall::Open {
                    path: format!("/tmp/f{i}"),
                    flags: simos::fs::OpenFlags::RDWR_CREATE,
                },
            )
            .unwrap();
        }
        k.do_syscall(
            pid,
            Syscall::Mmap {
                len: 8192,
                prot: simos::mem::Prot::RW,
            },
        )
        .unwrap();
        k.run_for(20_000_000).unwrap();
        mech.checkpoint(&mut k, pid).unwrap();
        let mut k2 = Kernel::new(CostModel::circa_2005());
        let s0 = k2.stats.syscalls;
        let r = mech.restart(&mut k2, RestorePid::Fresh).unwrap();
        // 2×3 fds + 1 mmap + 2 fixed = 9 extra crossings.
        assert!(k2.stats.syscalls - s0 >= 9);
        assert_eq!(k2.process(r.pid).unwrap().fds.len(), 3);
    }
}
