//! The kernel-thread mechanism (Section 4.1): CRAK, ZAP, UCLiK, BLCR,
//! LAM/MPI, PsncR/C.
//!
//! A dedicated kernel thread performs the checkpoint. The paper's analysis,
//! all reproduced here:
//!
//! * the thread is reached through a device file (`/dev/<name>` + `ioctl`,
//!   CRAK/BLCR) or a `/proc` entry (PsncR/C) — see [`KthreadIface`];
//! * it runs `SCHED_FIFO`, so it "will be executed as soon as it wakes up
//!   and will run until it has completed its work" — competing `SCHED_OTHER`
//!   load cannot delay it (contrast with the kernel-signal deferral);
//! * it "uses the page tables of the task it interrupted" — if that is not
//!   the checkpoint target, an **address-space switch (and TLB
//!   invalidation)** is charged via [`Kernel::kthread_attach_mm`];
//! * it runs concurrently with the application, so the target must be
//!   **stopped** ("removing the application from its runqueue list") for
//!   data consistency — the app stall window.
//!
//! Variant flags model the surveyed systems' distinguishing features:
//! BLCR's registration phase (not fully transparent), UCLiK's original-pid
//! and file-content restoration, PsncR/C's lack of data optimization.

use super::{
    charge_tool_syscall, run_until, AgentKind, Context, Initiation, KernelCkptEngine, Mechanism,
    MechanismInfo,
};
use crate::report::{CkptOutcome, RestartOutcome};
use crate::tracker::TrackerKind;
use crate::{RestorePid, SharedStorage};
use simos::module::{KernelModule, KthreadStatus};
use simos::sched::SchedPolicy;
use simos::signal::{Sig, SigAction, UserHandlerKind};
use simos::syscall::Syscall;
use simos::trace::Phase;
use simos::types::{Errno, KtId, Pid, SimError, SimResult, SysResult};
use simos::Kernel;
use std::any::Any;
use std::collections::{BTreeMap, VecDeque};

/// How user space reaches the kernel thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KthreadIface {
    /// A character device in `/dev`, driven with `ioctl` (CRAK, BLCR).
    Ioctl,
    /// A `/proc` entry driven with `write` (PsncR/C, MOSIX-style).
    ProcWrite,
}

/// ioctl request codes for the checkpoint device.
pub const IOCTL_CHECKPOINT: u64 = 1;

/// Variant knobs distinguishing the surveyed kernel-thread systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KthreadVariant {
    /// BLCR: the process must register (signal handler + shared library
    /// load) before it can be checkpointed → not fully transparent.
    pub needs_registration: bool,
    /// UCLiK: restore under the original pid.
    pub restore_original_pid: bool,
    /// UCLiK: snapshot open files' contents into the image.
    pub save_file_contents: bool,
    /// PsncR/C is `false`: "does not perform any data optimization".
    pub compress: bool,
}

impl Default for KthreadVariant {
    fn default() -> Self {
        KthreadVariant {
            needs_registration: false,
            restore_original_pid: false,
            save_file_contents: false,
            compress: true,
        }
    }
}

/// The loadable kernel module owning the checkpoint kernel thread.
pub struct CkptKthreadModule {
    name: String,
    job: String,
    storage: SharedStorage,
    tracker: TrackerKind,
    iface: KthreadIface,
    rt_prio: u8,
    variant: KthreadVariant,
    engines: BTreeMap<u32, KernelCkptEngine>,
    queue: VecDeque<(u32, u64)>, // (pid, initiated_at)
    kt: Option<KtId>,
    pub outcomes: Vec<(Pid, CkptOutcome)>,
    pub requests_failed: u64,
}

impl CkptKthreadModule {
    pub fn new(
        name: &str,
        job: &str,
        storage: SharedStorage,
        tracker: TrackerKind,
        iface: KthreadIface,
        rt_prio: u8,
        variant: KthreadVariant,
    ) -> Self {
        CkptKthreadModule {
            name: name.to_string(),
            job: job.to_string(),
            storage,
            tracker,
            iface,
            rt_prio,
            variant,
            engines: BTreeMap::new(),
            queue: VecDeque::new(),
            kt: None,
            outcomes: Vec::new(),
            requests_failed: 0,
        }
    }

    pub fn kthread_id(&self) -> Option<KtId> {
        self.kt
    }

    pub fn device_path(&self) -> String {
        match self.iface {
            KthreadIface::Ioctl => format!("/dev/{}", self.name),
            KthreadIface::ProcWrite => format!("/proc/{}", self.name),
        }
    }

    fn enqueue(&mut self, k: &mut Kernel, target: Pid) -> SysResult {
        if k.process(target).is_none() {
            return Err(Errno::ESRCH);
        }
        self.engines.entry(target.0).or_insert_with(|| {
            let mut e = KernelCkptEngine::new(
                &self.name,
                &self.job,
                self.storage.clone(),
                self.tracker,
            );
            e.compress = self.variant.compress;
            e.save_file_contents = self.variant.save_file_contents;
            e.set_target(target);
            e
        });
        self.queue.push_back((target.0, k.now()));
        if let Some(kt) = self.kt {
            let _ = k.wake_kthread(kt);
        }
        Ok(0)
    }
}

impl KernelModule for CkptKthreadModule {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_load(&mut self, k: &mut Kernel) {
        let name = self.name.clone();
        self.kt = Some(k.spawn_kthread(
            &format!("{name}d"),
            &name,
            SchedPolicy::Fifo {
                rt_prio: self.rt_prio,
            },
        ));
        match self.iface {
            KthreadIface::Ioctl => {
                let _ = k.fs.register_device(&format!("/dev/{name}"), &name, 0);
            }
            KthreadIface::ProcWrite => {
                let _ = k.fs.register_proc(&format!("/proc/{name}"), &name, "ckpt");
            }
        }
    }

    fn on_unload(&mut self, k: &mut Kernel) {
        let _ = k.fs.unlink(&self.device_path());
    }

    fn ioctl(&mut self, k: &mut Kernel, _pid: Pid, _minor: u32, req: u64, arg: u64) -> SysResult {
        match req {
            IOCTL_CHECKPOINT => self.enqueue(k, Pid(arg as u32)),
            _ => Err(Errno::ENOTTY),
        }
    }

    fn proc_write(&mut self, k: &mut Kernel, _pid: Pid, _tag: &str, data: &[u8]) -> SysResult {
        let text = String::from_utf8_lossy(data);
        let pid: u32 = text.trim().parse().map_err(|_| Errno::EINVAL)?;
        self.enqueue(k, Pid(pid))?;
        Ok(data.len() as u64)
    }

    fn kthread_run(&mut self, k: &mut Kernel, _kt: KtId) -> KthreadStatus {
        let Some((pid_raw, initiated_at)) = self.queue.pop_front() else {
            return KthreadStatus::Sleep;
        };
        let target = Pid(pid_raw);
        let trace_before = k.trace.mechanism_total(&self.name);
        let seq = self
            .engines
            .get(&pid_raw)
            .map(|e| e.seq() + 1)
            .unwrap_or(1);
        // Queue wait + wakeup latency between the tool's request and this
        // kernel thread actually running.
        k.trace.phase(
            &self.name,
            Phase::Pending,
            pid_raw,
            seq,
            k.now(),
            k.now() - initiated_at,
        );
        // Consistency: stop the application ("removing it from its
        // runqueue list").
        let f0 = k.now();
        if k.faultpoint(&self.name, "freeze").is_err() {
            self.requests_failed += 1;
            return if self.queue.is_empty() {
                KthreadStatus::Sleep
            } else {
                KthreadStatus::Yield
            };
        }
        if k.freeze_process(target).is_err() {
            self.requests_failed += 1;
            return if self.queue.is_empty() {
                KthreadStatus::Sleep
            } else {
                KthreadStatus::Yield
            };
        }
        let stall_start = k.now();
        // The kernel thread borrowed the interrupted task's page tables;
        // switching to the target's address space costs an mm switch + TLB
        // flush exactly when they differ (the paper's point). Attributed to
        // the freeze window: it is quiescence overhead, not capture work.
        let _ = k.kthread_attach_mm(target);
        k.trace
            .phase(&self.name, Phase::Freeze, pid_raw, seq, k.now(), k.now() - f0);
        let engine = self.engines.get_mut(&pid_raw).expect("enqueued ⇒ engine");
        match engine.checkpoint_in_kernel(k, target) {
            Ok(mut outcome) => {
                let _ = k.thaw_process(target);
                if k.faultpoint(&self.name, "resume").is_err() {
                    // Image is durable but the request never completed from
                    // the tool's point of view: no outcome is recorded.
                    self.requests_failed += 1;
                    return if self.queue.is_empty() {
                        KthreadStatus::Sleep
                    } else {
                        KthreadStatus::Yield
                    };
                }
                k.trace
                    .phase(&self.name, Phase::Resume, pid_raw, seq, k.now(), 0);
                outcome.app_stall_ns = k.now() - stall_start;
                outcome.total_ns = k.now() - initiated_at;
                super::emit_phase_residual(
                    k,
                    &self.name,
                    target,
                    seq,
                    outcome.total_ns,
                    trace_before,
                );
                self.outcomes.push((target, outcome));
            }
            Err(_) => {
                let _ = k.thaw_process(target);
                self.requests_failed += 1;
            }
        }
        if self.queue.is_empty() {
            KthreadStatus::Sleep
        } else {
            KthreadStatus::Yield
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The mechanism wrapper.
pub struct KernelThreadMechanism {
    pub module_name: String,
    pub iface: KthreadIface,
    pub rt_prio: u8,
    pub variant: KthreadVariant,
    storage: SharedStorage,
    job: String,
    tracker: TrackerKind,
    target: Option<Pid>,
}

impl KernelThreadMechanism {
    pub fn new(
        module_name: &str,
        job: &str,
        storage: SharedStorage,
        tracker: TrackerKind,
        iface: KthreadIface,
        variant: KthreadVariant,
    ) -> Self {
        KernelThreadMechanism {
            module_name: module_name.to_string(),
            iface,
            rt_prio: 50,
            variant,
            storage,
            job: job.to_string(),
            tracker,
            target: None,
        }
    }
}

impl Mechanism for KernelThreadMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            family: "kernel-thread",
            context: Context::SystemOs,
            agent: AgentKind::KernelThread,
            is_kernel_module: true,
            transparent: !self.variant.needs_registration,
            supports_incremental: self.tracker.supports_incremental(),
            initiation: Initiation::UserInitiated,
        }
    }

    fn prepare(&mut self, k: &mut Kernel, pid: Pid) -> SimResult<()> {
        self.target = Some(pid);
        if !k.module_loaded(&self.module_name) {
            k.register_module(Box::new(CkptKthreadModule::new(
                &self.module_name,
                &self.job,
                self.storage.clone(),
                self.tracker,
                self.iface,
                self.rt_prio,
                self.variant,
            )))?;
        }
        if self.variant.needs_registration {
            // BLCR's initialization: load the shared library into the
            // process and register a signal handler — the reason Table 1
            // marks BLCR non-transparent.
            let lib_bytes = 512 * 1024;
            let t = k.cost.memcpy(lib_bytes);
            k.charge_user(t);
            k.do_syscall(
                pid,
                Syscall::Sigaction {
                    sig: Sig::SIGUSR2,
                    action: SigAction::Handler {
                        kind: UserHandlerKind::CountOnly,
                        uses_non_reentrant: false,
                    },
                },
            )
            .map_err(|e| SimError::Usage(format!("BLCR registration failed: {e:?}")))?;
        }
        Ok(())
    }

    fn checkpoint(&mut self, k: &mut Kernel, pid: Pid) -> SimResult<CkptOutcome> {
        let name = self.module_name.clone();
        let before = self.outcomes(k).len();
        // The tool: open the device//proc entry, issue the request, close.
        for _ in 0..3 {
            charge_tool_syscall(k);
        }
        match self.iface {
            KthreadIface::Ioctl => {
                k.stats.ioctls += 1;
                k.dispatch_module(&name, |m, k| {
                    m.ioctl(k, pid, 0, IOCTL_CHECKPOINT, pid.0 as u64)
                })
                .ok_or_else(|| SimError::Usage("module missing".into()))?
                .map_err(|e| SimError::Usage(format!("ioctl failed: {e:?}")))?;
            }
            KthreadIface::ProcWrite => {
                let data = pid.0.to_string().into_bytes();
                k.dispatch_module(&name, |m, k| m.proc_write(k, pid, "ckpt", &data))
                    .ok_or_else(|| SimError::Usage("module missing".into()))?
                    .map_err(|e| SimError::Usage(format!("proc write failed: {e:?}")))?;
            }
        }
        run_until(k, 60_000_000_000, "kthread checkpoint", |k| {
            k.with_module_mut::<CkptKthreadModule, _>(&name, |m, _| m.outcomes.len())
                .unwrap_or(0)
                > before
        })?;
        let all = self.outcomes(k);
        all.get(before)
            .cloned()
            .ok_or_else(|| SimError::Usage("no outcome recorded".into()))
    }

    fn restart(&mut self, k: &mut Kernel, pid: RestorePid) -> SimResult<RestartOutcome> {
        let target = self
            .target
            .ok_or_else(|| SimError::Usage("not prepared".into()))?;
        let sel = if self.variant.restore_original_pid {
            RestorePid::Original
        } else {
            pid
        };
        super::restart_from_shared(&self.storage, &self.job, target, k, sel)
    }

    fn outcomes(&self, k: &Kernel) -> Vec<CkptOutcome> {
        k.with_module::<CkptKthreadModule, _>(&self.module_name, |m| {
            m.outcomes.iter().map(|(_, o)| o.clone()).collect()
        })
        .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared_storage;
    use ckpt_storage::LocalDisk;
    use simos::apps::{AppParams, NativeKind};
    use simos::cost::CostModel;

    fn setup(iface: KthreadIface, variant: KthreadVariant) -> (Kernel, Pid, KernelThreadMechanism) {
        let mut k = Kernel::new(CostModel::circa_2005());
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
        let mut mech = KernelThreadMechanism::new(
            "crak",
            "job",
            shared_storage(LocalDisk::new(1 << 30)),
            TrackerKind::KernelPage,
            iface,
            variant,
        );
        mech.prepare(&mut k, pid).unwrap();
        (k, pid, mech)
    }

    #[test]
    fn device_file_created_and_checkpoint_via_ioctl_works() {
        let (mut k, pid, mut mech) = setup(KthreadIface::Ioctl, KthreadVariant::default());
        assert!(k.fs.exists("/dev/crak"));
        k.run_for(20_000_000).unwrap();
        let o = mech.checkpoint(&mut k, pid).unwrap();
        assert!(o.pages_saved > 0);
        assert!(k.stats.ioctls >= 1);
        // The target was frozen only for the stall window and continues.
        let w = k.process(pid).unwrap().work_done;
        k.run_for(20_000_000).unwrap();
        assert!(k.process(pid).unwrap().work_done > w);
    }

    #[test]
    fn proc_interface_works_too() {
        let (mut k, pid, mut mech) = setup(KthreadIface::ProcWrite, KthreadVariant::default());
        assert!(k.fs.exists("/proc/crak"));
        k.run_for(10_000_000).unwrap();
        let o = mech.checkpoint(&mut k, pid).unwrap();
        assert_eq!(o.seq, 1);
    }

    #[test]
    fn kthread_pays_the_address_space_switch() {
        let (mut k, pid, mut mech) = setup(KthreadIface::Ioctl, KthreadVariant::default());
        // Ensure a *different* task's address space is active when the
        // kernel thread runs: freeze the target, let another process run,
        // then request the checkpoint.
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let other = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
        k.freeze_process(pid).unwrap();
        k.run_for(20_000_000).unwrap();
        assert_eq!(k.active_mm(), Some(other));
        k.thaw_process(pid).unwrap();
        let mm0 = k.stats.mm_switches;
        // Stop the other process from running again before the kthread
        // (freeze it), so the active mm is still `other`'s at attach time.
        k.freeze_process(other).unwrap();
        mech.checkpoint(&mut k, pid).unwrap();
        // The checkpoint itself required attaching to the target's space:
        // at least one extra mm switch beyond ordinary scheduling.
        assert!(
            k.stats.mm_switches > mm0,
            "expected an mm switch charged to the kernel thread"
        );
    }

    #[test]
    fn kthread_is_module_and_unloadable() {
        let (mut k, _pid, mech) = setup(KthreadIface::Ioctl, KthreadVariant::default());
        assert!(mech.info().is_kernel_module);
        k.unload_module("crak").unwrap();
        assert!(!k.fs.exists("/dev/crak"));
    }

    #[test]
    fn blcr_registration_costs_transparency() {
        let variant = KthreadVariant {
            needs_registration: true,
            ..Default::default()
        };
        let (k, pid, mech) = setup(KthreadIface::Ioctl, variant);
        assert!(!mech.info().transparent);
        // The registration actually installed a handler.
        let p = k.process(pid).unwrap();
        assert!(matches!(
            p.sig.action(Sig::SIGUSR2),
            SigAction::Handler { .. }
        ));
        drop(k);
    }

    #[test]
    fn uclik_restores_original_pid_and_file_contents() {
        let variant = KthreadVariant {
            restore_original_pid: true,
            save_file_contents: true,
            ..Default::default()
        };
        let (mut k, pid, mut mech) = setup(KthreadIface::Ioctl, variant);
        k.do_syscall(
            pid,
            Syscall::Open {
                path: "/tmp/data".into(),
                flags: simos::fs::OpenFlags::RDWR_CREATE,
            },
        )
        .unwrap();
        k.fs.write_at("/tmp/data", 0, b"precious").unwrap();
        k.run_for(20_000_000).unwrap();
        mech.checkpoint(&mut k, pid).unwrap();
        // Restart on a fresh kernel without the file: both pid and content
        // come back.
        let mut k2 = Kernel::new(CostModel::circa_2005());
        let r = mech.restart(&mut k2, RestorePid::Fresh).unwrap();
        assert_eq!(r.pid, pid, "UCLiK restores the original pid");
        assert_eq!(k2.fs.read_file("/tmp/data").unwrap(), b"precious");
    }

    #[test]
    fn psnc_variant_ships_uncompressed_images() {
        let plain = KthreadVariant {
            compress: false,
            ..Default::default()
        };
        let (mut k, pid, mut mech) = setup(KthreadIface::ProcWrite, plain);
        k.run_for(10_000_000).unwrap();
        let o = mech.checkpoint(&mut k, pid).unwrap();
        // Without zero-elision/RLE the encoded size is at least the raw
        // memory represented.
        assert!(o.encoded_bytes >= o.memory_bytes);
    }

    #[test]
    fn checkpoint_of_dead_process_fails_cleanly() {
        let (mut k, pid, mut mech) = setup(KthreadIface::Ioctl, KthreadVariant::default());
        k.post_signal(pid, Sig::SIGKILL);
        k.run_for(50_000_000).unwrap();
        k.reap(pid).unwrap();
        assert!(mech.checkpoint(&mut k, pid).is_err());
    }
}
