//! The "new system call" mechanism family (Section 4.1): VMADump, BPROC,
//! EPCKPT.
//!
//! A checkpoint syscall executes **in the context of a process** — the
//! address space is already the right one (no mm switch, no TLB flush) and
//! the data cannot change underneath (the process *is* the checkpointer).
//! The price is the initiation model:
//!
//! * **VMADump style** ([`SyscallVariant::SelfCkpt`]): the application
//!   itself calls the syscall ("the relevant data of the process can be
//!   directly accessed through the `current` kernel macro"). Requires
//!   source modification — no transparency — and nobody else can trigger a
//!   checkpoint — no flexibility. [`SyscallMechanism::checkpoint`]
//!   therefore returns an error for this variant.
//! * **EPCKPT style** ([`SyscallVariant::ByPid`]): a tool passes the target
//!   pid to the syscall. Transparent to the application, but the target
//!   must be stopped first for consistency, and the application must have
//!   been launched through the EPCKPT tool (a small run-time tracing
//!   overhead we charge at prepare time).

use super::{
    charge_tool_syscall, run_until, AgentKind, Context, Initiation, KernelCkptEngine, Mechanism,
    MechanismInfo,
};
use crate::report::{CkptOutcome, RestartOutcome};
use crate::tracker::TrackerKind;
use crate::{RestorePid, SharedStorage};
use simos::module::KernelModule;
use simos::trace::Phase;
use simos::types::{Errno, Pid, SimError, SimResult, SysResult};
use simos::Kernel;
use std::any::Any;

/// Which flavour of the syscall mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallVariant {
    /// The application checkpoints itself every `every` completed steps.
    SelfCkpt { every: u64 },
    /// A tool checkpoints an arbitrary pid.
    ByPid,
}

/// The static-kernel extension registering the checkpoint syscalls.
pub struct CkptSyscallModule {
    name: String,
    engine: KernelCkptEngine,
    pub outcomes: Vec<CkptOutcome>,
    slot_self: Option<u32>,
    slot_pid: Option<u32>,
}

impl CkptSyscallModule {
    pub fn new(name: &str, engine: KernelCkptEngine) -> Self {
        CkptSyscallModule {
            name: name.to_string(),
            engine,
            outcomes: Vec::new(),
            slot_self: None,
            slot_pid: None,
        }
    }

    pub fn slot_self(&self) -> Option<u32> {
        self.slot_self
    }

    pub fn slot_pid(&self) -> Option<u32> {
        self.slot_pid
    }

    pub fn engine_mut(&mut self) -> &mut KernelCkptEngine {
        &mut self.engine
    }

    fn do_checkpoint(&mut self, k: &mut Kernel, target: Pid, in_context: bool) -> SysResult {
        let trace_before = k.trace.mechanism_total(&self.name);
        let t0 = k.now();
        let seq = self.engine.seq() + 1;
        // In-context (self) checkpoints need no freeze: the process is
        // executing this very code. By-pid checkpoints must stop the
        // target first.
        k.faultpoint(&self.name, "freeze").map_err(|_| Errno::EINTR)?;
        let froze = if !in_context {
            let f0 = k.now();
            k.freeze_process(target).map_err(|_| Errno::ESRCH)?;
            k.trace
                .phase(&self.name, Phase::Freeze, target.0, seq, k.now(), k.now() - f0);
            true
        } else {
            // Executing in the target's context — quiescence is free.
            k.trace
                .phase(&self.name, Phase::Freeze, target.0, seq, k.now(), 0);
            false
        };
        let res = self.engine.checkpoint_in_kernel(k, target);
        if froze {
            let _ = k.thaw_process(target);
        }
        k.faultpoint(&self.name, "resume").map_err(|_| Errno::EINTR)?;
        k.trace
            .phase(&self.name, Phase::Resume, target.0, seq, k.now(), 0);
        match res {
            Ok(mut outcome) => {
                let seq = outcome.seq;
                // The syscall's span includes the freeze/thaw bracket, so
                // the per-phase trace costs sum to the reported total.
                outcome.total_ns = k.now() - t0;
                super::emit_phase_residual(
                    k,
                    &self.name,
                    target,
                    seq,
                    outcome.total_ns,
                    trace_before,
                );
                self.outcomes.push(outcome);
                Ok(seq)
            }
            Err(_) => Err(Errno::EINVAL),
        }
    }
}

impl KernelModule for CkptSyscallModule {
    fn name(&self) -> &str {
        &self.name
    }

    /// VMADump/EPCKPT live in the static part of the kernel.
    fn is_loadable(&self) -> bool {
        false
    }

    fn on_load(&mut self, k: &mut Kernel) {
        let name = self.name.clone();
        self.slot_self = Some(k.register_ext_syscall(&name));
        self.slot_pid = Some(k.register_ext_syscall(&name));
    }

    fn ext_syscall(&mut self, k: &mut Kernel, pid: Pid, slot: u32, args: [u64; 5]) -> SysResult {
        if Some(slot) == self.slot_self {
            self.do_checkpoint(k, pid, true)
        } else if Some(slot) == self.slot_pid {
            let target = Pid(args[0] as u32);
            if target == pid {
                self.do_checkpoint(k, target, true)
            } else {
                self.do_checkpoint(k, target, false)
            }
        } else {
            Err(Errno::ENOSYS)
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The mechanism wrapper.
pub struct SyscallMechanism {
    pub module_name: String,
    pub variant: SyscallVariant,
    storage: SharedStorage,
    job: String,
    tracker: TrackerKind,
    target: Option<Pid>,
}

impl SyscallMechanism {
    pub fn new(
        module_name: &str,
        variant: SyscallVariant,
        job: &str,
        storage: SharedStorage,
        tracker: TrackerKind,
    ) -> Self {
        SyscallMechanism {
            module_name: module_name.to_string(),
            variant,
            storage,
            job: job.to_string(),
            tracker,
            target: None,
        }
    }
}

impl Mechanism for SyscallMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            family: "syscall",
            context: Context::SystemOs,
            agent: AgentKind::SystemCall,
            is_kernel_module: false, // static kernel
            transparent: matches!(self.variant, SyscallVariant::ByPid),
            supports_incremental: self.tracker.supports_incremental(),
            initiation: match self.variant {
                SyscallVariant::SelfCkpt { .. } => Initiation::Automatic,
                SyscallVariant::ByPid => Initiation::UserInitiated,
            },
        }
    }

    fn prepare(&mut self, k: &mut Kernel, pid: Pid) -> SimResult<()> {
        self.target = Some(pid);
        if !k.module_loaded(&self.module_name) {
            let engine = KernelCkptEngine::new(
                &self.module_name,
                &self.job,
                self.storage.clone(),
                self.tracker,
            );
            k.register_module(Box::new(CkptSyscallModule::new(&self.module_name, engine)))?;
        }
        k.with_module_mut::<CkptSyscallModule, _>(&self.module_name, |m, _| {
            m.engine_mut().set_target(pid)
        });
        if let SyscallVariant::SelfCkpt { every } = self.variant {
            let slot = k
                .with_module_mut::<CkptSyscallModule, _>(&self.module_name, |m, _| m.slot_self())
                .flatten()
                .ok_or_else(|| SimError::Usage("syscall module missing slot".into()))?;
            // The application source was modified to call the new syscall
            // every `every` steps — the transparency cost.
            let p = k
                .process_mut(pid)
                .ok_or(SimError::NoSuchProcess(pid))?;
            p.user_rt.self_ckpt_ext = Some(slot);
            p.user_rt.self_ckpt_every = Some(every);
        }
        Ok(())
    }

    fn checkpoint(&mut self, k: &mut Kernel, pid: Pid) -> SimResult<CkptOutcome> {
        match self.variant {
            SyscallVariant::SelfCkpt { .. } => Err(SimError::Usage(
                "VMADump-style self-checkpointing cannot be externally initiated \
                 (the inflexibility the paper criticizes)"
                    .into(),
            )),
            SyscallVariant::ByPid => {
                // The tool issues the checkpoint syscall.
                charge_tool_syscall(k);
                let name = self.module_name.clone();
                let slot = k
                    .with_module_mut::<CkptSyscallModule, _>(&name, |m, _| m.slot_pid())
                    .flatten()
                    .ok_or_else(|| SimError::Usage("module not prepared".into()))?;
                let before = self.outcomes(k).len();
                k.dispatch_module(&name, |m, k| {
                    m.ext_syscall(k, pid, slot, [pid.0 as u64, 0, 0, 0, 0])
                })
                .ok_or_else(|| SimError::Usage("module missing".into()))?
                .map_err(|e| SimError::Usage(format!("checkpoint syscall failed: {e:?}")))?;
                let all = self.outcomes(k);
                all.get(before)
                    .cloned()
                    .ok_or_else(|| SimError::Usage("no outcome recorded".into()))
            }
        }
    }

    fn restart(&mut self, k: &mut Kernel, pid: RestorePid) -> SimResult<RestartOutcome> {
        let target = self
            .target
            .ok_or_else(|| SimError::Usage("not prepared".into()))?;
        super::restart_from_shared(&self.storage, &self.job, target, k, pid)
    }

    fn outcomes(&self, k: &Kernel) -> Vec<CkptOutcome> {
        k.with_module::<CkptSyscallModule, _>(&self.module_name, |m| m.outcomes.clone())
            .unwrap_or_default()
    }
}

/// Wait until the mechanism has recorded at least `n` outcomes (used for
/// the self-checkpointing variant, which fires on its own schedule).
pub fn wait_for_outcomes(
    mech: &SyscallMechanism,
    k: &mut Kernel,
    n: usize,
    limit_ns: u64,
) -> SimResult<Vec<CkptOutcome>> {
    let name = mech.module_name.clone();
    run_until(k, limit_ns, "self-checkpoint outcomes", |k| {
        k.with_module_mut::<CkptSyscallModule, _>(&name, |m, _| m.outcomes.len())
            .unwrap_or(0)
            >= n
    })?;
    Ok(mech.outcomes(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared_storage;
    use ckpt_storage::LocalDisk;
    use simos::apps::{AppParams, NativeKind};
    use simos::cost::CostModel;

    fn setup(variant: SyscallVariant) -> (Kernel, Pid, SyscallMechanism) {
        let mut k = Kernel::new(CostModel::circa_2005());
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
        let mut mech = SyscallMechanism::new(
            "vmadump",
            variant,
            "job",
            shared_storage(LocalDisk::new(1 << 30)),
            TrackerKind::KernelPage,
        );
        mech.prepare(&mut k, pid).unwrap();
        (k, pid, mech)
    }

    #[test]
    fn self_checkpoint_fires_on_schedule_but_cannot_be_initiated() {
        let (mut k, pid, mut mech) = setup(SyscallVariant::SelfCkpt { every: 10 });
        assert_eq!(mech.info().initiation, Initiation::Automatic);
        assert!(!mech.info().transparent);
        // External initiation refused.
        assert!(mech.checkpoint(&mut k, pid).is_err());
        // But the app checkpoints itself as it runs.
        let outcomes = wait_for_outcomes(&mech, &mut k, 3, 2_000_000_000).unwrap();
        assert!(outcomes.len() >= 3);
        assert!(!outcomes[0].incremental);
        assert!(outcomes[1].incremental);
    }

    #[test]
    fn by_pid_checkpoint_is_user_initiated_and_transparent() {
        let (mut k, pid, mut mech) = setup(SyscallVariant::ByPid);
        assert_eq!(mech.info().initiation, Initiation::UserInitiated);
        assert!(mech.info().transparent);
        k.run_for(20_000_000).unwrap();
        let o = mech.checkpoint(&mut k, pid).unwrap();
        assert_eq!(o.seq, 1);
        assert!(o.pages_saved > 0);
        // The target keeps running afterwards.
        let w = k.process(pid).unwrap().work_done;
        k.run_for(20_000_000).unwrap();
        assert!(k.process(pid).unwrap().work_done > w);
    }

    #[test]
    fn restart_after_crash_preserves_progress() {
        let (mut k, pid, mut mech) = setup(SyscallVariant::ByPid);
        k.run_for(30_000_000).unwrap();
        let o = mech.checkpoint(&mut k, pid).unwrap();
        assert!(o.pages_saved > 0);
        let saved_work = k.process(pid).unwrap().work_done;
        // Crash the node; restart on a new kernel. (Local disk would be
        // unavailable on a real node loss — storage semantics are covered
        // in ckpt-storage and the cluster crate.)
        let mut k2 = Kernel::new(CostModel::circa_2005());
        let r = mech.restart(&mut k2, RestorePid::Fresh).unwrap();
        assert_eq!(r.work_done, saved_work);
        k2.run_for(20_000_000).unwrap();
        assert!(k2.process(r.pid).unwrap().work_done > saved_work);
    }

    #[test]
    fn module_is_static_kernel() {
        let (mut k, _pid, mech) = setup(SyscallVariant::ByPid);
        assert!(!mech.info().is_kernel_module);
        assert!(matches!(
            k.unload_module("vmadump"),
            Err(SimError::Usage(_))
        ));
    }

    #[test]
    fn in_context_checkpoint_needs_no_mm_switch() {
        let (mut k, pid, _mech) = setup(SyscallVariant::SelfCkpt { every: 5 });
        // Run until a self-checkpoint has happened; count mm switches
        // attributable to checkpointing (none beyond normal scheduling).
        let _ = wait_for_outcomes(
            &SyscallMechanism::new(
                "vmadump",
                SyscallVariant::SelfCkpt { every: 5 },
                "job",
                shared_storage(LocalDisk::new(1 << 30)),
                TrackerKind::KernelPage,
            ),
            &mut k,
            0,
            1,
        );
        // Single process: the only mm switch is the initial one.
        k.run_for(200_000_000).unwrap();
        assert!(k.stats.mm_switches <= 2);
        let _ = pid;
    }
}
