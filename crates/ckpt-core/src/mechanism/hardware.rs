//! Hardware-assisted checkpointing (Section 4.2): ReVive and SafetyNet.
//!
//! Purpose-built hardware logs modifications at **cache-line granularity**
//! with no software cost per write — the finest tracking in the taxonomy —
//! and is fully transparent. Its weakness is categorical, not quantitative:
//! "it relies on custom hardware, counter to the trend of building clusters
//! from commodity components".
//!
//! The two proposals differ in where the logging lives:
//!
//! * **ReVive** modifies the directory controller; establishing a
//!   checkpoint stalls the processors while logs are flushed to memory.
//! * **SafetyNet** adds checkpoint log buffers to the caches; logs drain
//!   **asynchronously**, so the application stalls only for a brief
//!   register/cache synchronization.

use super::{AgentKind, Context, Initiation, KernelCkptEngine, Mechanism, MechanismInfo};
use crate::report::{CkptOutcome, RestartOutcome};
use crate::tracker::TrackerKind;
use crate::{RestorePid, SharedStorage};
use simos::trace::Phase;
use simos::types::{Pid, SimError, SimResult};
use simos::Kernel;

/// Which hardware proposal to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwFlavor {
    Revive,
    Safetynet,
}

/// Fixed quiesce time for SafetyNet's synchronous part (register + cache
/// synchronization before the asynchronous drain takes over).
pub const SAFETYNET_QUIESCE_NS: u64 = 10_000;

/// The hardware-assisted mechanism. There is no kernel module — the
/// "agent" is the memory system itself; the OS only coordinates.
pub struct HardwareMechanism {
    pub flavor: HwFlavor,
    engine: KernelCkptEngine,
}

impl HardwareMechanism {
    pub fn new(flavor: HwFlavor, job: &str, storage: SharedStorage) -> Self {
        let name = match flavor {
            HwFlavor::Revive => "revive",
            HwFlavor::Safetynet => "safetynet",
        };
        HardwareMechanism {
            flavor,
            engine: KernelCkptEngine::new(name, job, storage, TrackerKind::HardwareLine),
        }
    }
}

impl Mechanism for HardwareMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            family: "hardware",
            context: Context::Hardware,
            agent: match self.flavor {
                HwFlavor::Revive => AgentKind::DirectoryController,
                HwFlavor::Safetynet => AgentKind::CacheBased,
            },
            is_kernel_module: false,
            transparent: true,
            supports_incremental: true,
            initiation: Initiation::UserInitiated,
        }
    }

    fn prepare(&mut self, k: &mut Kernel, pid: Pid) -> SimResult<()> {
        self.engine.set_target(pid);
        // The hardware logs from the moment the machine is configured.
        self.engine.tracker.arm(k, pid)?;
        Ok(())
    }

    fn checkpoint(&mut self, k: &mut Kernel, pid: Pid) -> SimResult<CkptOutcome> {
        let trace_before = k.trace.mechanism_total(self.engine.mechanism_name());
        let t0 = k.now();
        let seq = self.engine.seq() + 1;
        k.freeze_process(pid)?;
        if let Err(e) = k.faultpoint(self.engine.mechanism_name(), "freeze") {
            let _ = k.thaw_process(pid);
            return Err(e);
        }
        {
            let name = self.engine.mechanism_name();
            k.trace.phase(name, Phase::Freeze, pid.0, seq, k.now(), k.now() - t0);
        }
        let stall_start = k.now();
        let mut outcome = self.engine.checkpoint_in_kernel(k, pid)?;
        k.thaw_process(pid)?;
        k.faultpoint(self.engine.mechanism_name(), "resume")?;
        {
            let name = self.engine.mechanism_name();
            k.trace.phase(name, Phase::Resume, pid.0, seq, k.now(), 0);
        }
        // The mechanism's total spans the quiesce as well as the engine's
        // capture/store work, so the trace's per-phase costs sum to it.
        outcome.total_ns = k.now() - t0;
        super::emit_phase_residual(
            k,
            self.engine.mechanism_name(),
            pid,
            seq,
            outcome.total_ns,
            trace_before,
        );
        match self.flavor {
            HwFlavor::Revive => {
                // Directory-based flush stalls the processor for the whole
                // log write-back.
                outcome.app_stall_ns = k.now() - stall_start;
            }
            HwFlavor::Safetynet => {
                // Async drain: the application resumes after the brief
                // quiesce; the drain overlaps execution.
                outcome.app_stall_ns = SAFETYNET_QUIESCE_NS.min(k.now() - stall_start);
            }
        }
        Ok(outcome)
    }

    fn restart(&mut self, k: &mut Kernel, pid: RestorePid) -> SimResult<RestartOutcome> {
        if self.engine.target().is_none() {
            return Err(SimError::Usage("not prepared".into()));
        }
        self.engine.restart_from_storage(k, pid)
    }

    fn outcomes(&self, _k: &Kernel) -> Vec<CkptOutcome> {
        Vec::new() // all checkpoints are returned synchronously
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared_storage;
    use ckpt_storage::LocalDisk;
    use simos::apps::{AppParams, NativeKind};
    use simos::cost::CostModel;

    fn setup(flavor: HwFlavor) -> (Kernel, Pid, HardwareMechanism) {
        let mut k = Kernel::new(CostModel::circa_2005());
        let mut params = AppParams::small();
        params.mem_bytes = 512 * 1024;
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
        let mut mech = HardwareMechanism::new(flavor, "job", shared_storage(LocalDisk::new(1 << 30)));
        mech.prepare(&mut k, pid).unwrap();
        (k, pid, mech)
    }

    #[test]
    fn line_granularity_shrinks_second_checkpoint() {
        let (mut k, pid, mut mech) = setup(HwFlavor::Revive);
        k.run_for(20_000_000).unwrap();
        let o1 = mech.checkpoint(&mut k, pid).unwrap();
        assert!(!o1.incremental);
        // A handful of sparse writes between checkpoints.
        let target = k.process(pid).unwrap().work_done + 5;
        while k.process(pid).unwrap().work_done < target {
            k.run_for(1_000).unwrap();
        }
        let o2 = mech.checkpoint(&mut k, pid).unwrap();
        assert!(o2.incremental);
        // Cache-line logical bytes are far below page-granularity bytes.
        assert!(o2.logical_dirty_bytes < o2.pages_saved * simos::cost::PAGE_SIZE / 4);
    }

    #[test]
    fn hardware_tracking_is_free_at_run_time() {
        let (mut k, pid, mut mech) = setup(HwFlavor::Revive);
        k.run_for(10_000_000).unwrap();
        mech.checkpoint(&mut k, pid).unwrap();
        let faults0 = k.stats.page_faults;
        k.run_for(20_000_000).unwrap();
        assert_eq!(k.stats.page_faults, faults0, "no faults from hw tracking");
    }

    #[test]
    fn safetynet_stalls_less_than_revive() {
        let stall = |flavor| {
            let (mut k, pid, mut mech) = setup(flavor);
            k.run_for(20_000_000).unwrap();
            mech.checkpoint(&mut k, pid).unwrap();
            k.run_for(20_000_000).unwrap();
            mech.checkpoint(&mut k, pid).unwrap().app_stall_ns
        };
        let revive = stall(HwFlavor::Revive);
        let safetynet = stall(HwFlavor::Safetynet);
        assert!(
            safetynet < revive,
            "SafetyNet's async drain ({safetynet}) should stall less than ReVive ({revive})"
        );
    }

    #[test]
    fn fully_transparent_and_restartable() {
        let (mut k, pid, mut mech) = setup(HwFlavor::Safetynet);
        assert!(mech.info().transparent);
        k.run_for(20_000_000).unwrap();
        mech.checkpoint(&mut k, pid).unwrap();
        let mut k2 = Kernel::new(CostModel::circa_2005());
        let r = mech.restart(&mut k2, RestorePid::Fresh).unwrap();
        k2.run_for(20_000_000).unwrap();
        assert!(k2.process(r.pid).unwrap().work_done > r.work_done);
    }
}
