//! The kernel-mode signal handler mechanism (Section 4.1): CHPOX.
//!
//! A new signal ([`simos::signal::Sig::SIGCKPT`]) is added to the kernel
//! whose *default action* is "checkpoint the application". Initiation is
//! flexible — anyone can `kill -CKPT <pid>` — and the checkpoint executes
//! in the target's own kernel context (no address-space switch). The
//! weakness the paper highlights is **deferral**: "the execution of the
//! signal handler is deferred until the next time the kernel will go from
//! kernel mode to user mode in the process context … there is no way to
//! know when the signal handler will be executed". The mechanism's
//! [`CkptOutcome::total_ns`] measures initiation→durable and therefore
//! includes that deferral, which grows with system load (experiment C4).

use super::{
    charge_tool_syscall, run_until, AgentKind, Context, Initiation, KernelCkptEngine, Mechanism,
    MechanismInfo,
};
use crate::report::{CkptOutcome, RestartOutcome};
use crate::tracker::TrackerKind;
use crate::{RestorePid, SharedStorage};
use simos::module::KernelModule;
use simos::signal::Sig;
use simos::trace::Phase;
use simos::types::{Errno, Pid, SimError, SimResult, SysResult};
use simos::Kernel;
use std::any::Any;
use std::collections::BTreeMap;

/// The CHPOX-style kernel module: a `/proc` registration entry plus a
/// claimed kernel signal.
pub struct ChpoxModule {
    name: String,
    job: String,
    storage: SharedStorage,
    tracker: TrackerKind,
    engines: BTreeMap<u32, KernelCkptEngine>,
    pub outcomes: Vec<(Pid, CkptOutcome)>,
    /// Virtual time each pending request was posted (to measure deferral).
    pub initiated_at: BTreeMap<u32, u64>,
}

impl ChpoxModule {
    pub fn new(name: &str, job: &str, storage: SharedStorage, tracker: TrackerKind) -> Self {
        ChpoxModule {
            name: name.to_string(),
            job: job.to_string(),
            storage,
            tracker,
            engines: BTreeMap::new(),
            outcomes: Vec::new(),
            initiated_at: BTreeMap::new(),
        }
    }

    pub fn registered(&self, pid: Pid) -> bool {
        self.engines.contains_key(&pid.0)
    }

    fn register_pid(&mut self, pid: Pid) {
        self.engines.entry(pid.0).or_insert_with(|| {
            let mut e = KernelCkptEngine::new(
                &self.name,
                &self.job,
                self.storage.clone(),
                self.tracker,
            );
            e.set_target(pid);
            e
        });
    }
}

impl KernelModule for ChpoxModule {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_load(&mut self, k: &mut Kernel) {
        let name = self.name.clone();
        let _ = k.fs.register_proc(&format!("/proc/{name}"), &name, "register");
        k.claim_signal_default(Sig::SIGCKPT, &name);
    }

    fn on_unload(&mut self, k: &mut Kernel) {
        let _ = k.fs.unlink(&format!("/proc/{}", self.name));
    }

    /// Processes are registered by writing their pid to `/proc/<name>`.
    fn proc_write(&mut self, _k: &mut Kernel, _pid: Pid, _tag: &str, data: &[u8]) -> SysResult {
        let text = String::from_utf8_lossy(data);
        let pid: u32 = text.trim().parse().map_err(|_| Errno::EINVAL)?;
        self.register_pid(Pid(pid));
        Ok(data.len() as u64)
    }

    /// Reading the `/proc` entry lists registered pids.
    fn proc_read(&mut self, _k: &mut Kernel, _pid: Pid, _tag: &str) -> Result<Vec<u8>, Errno> {
        let mut out = String::new();
        for pid in self.engines.keys() {
            out.push_str(&format!("{pid}\n"));
        }
        Ok(out.into_bytes())
    }

    /// The claimed default action of SIGCKPT: checkpoint in the process's
    /// own kernel context at the (deferred) delivery point.
    fn kernel_signal(&mut self, k: &mut Kernel, pid: Pid, sig: Sig) -> bool {
        if sig != Sig::SIGCKPT {
            return false;
        }
        if !self.engines.contains_key(&pid.0) {
            // Unregistered process: swallow the signal (a real CHPOX would
            // fall back to the built-in default).
            return true;
        }
        let trace_before = k.trace.mechanism_total(&self.name);
        let seq = self.engines[&pid.0].seq() + 1;
        // The deferral between kill(2) and this delivery point is the
        // mechanism's Pending phase — the paper's headline weakness.
        if let Some(t0) = self.initiated_at.get(&pid.0) {
            k.trace
                .phase(&self.name, Phase::Pending, pid.0, seq, k.now(), k.now() - t0);
        }
        // Running in the target's own kernel context: the target is
        // quiescent by construction, so the freeze is free.
        if k.faultpoint(&self.name, "freeze").is_err() {
            self.initiated_at.remove(&pid.0);
            return true;
        }
        k.trace.phase(&self.name, Phase::Freeze, pid.0, seq, k.now(), 0);
        let engine = self.engines.get_mut(&pid.0).expect("checked above");
        match engine.checkpoint_in_kernel(k, pid) {
            Ok(mut outcome) => {
                // Fold in the deferral between initiation and delivery.
                if let Some(t0) = self.initiated_at.remove(&pid.0) {
                    outcome.total_ns = k.now() - t0;
                }
                if k.faultpoint(&self.name, "resume").is_err() {
                    // The image is durable; only the resume notification
                    // was lost with the fault.
                    return true;
                }
                k.trace
                    .phase(&self.name, Phase::Resume, pid.0, seq, k.now(), 0);
                super::emit_phase_residual(
                    k,
                    &self.name,
                    pid,
                    seq,
                    outcome.total_ns,
                    trace_before,
                );
                self.outcomes.push((pid, outcome));
            }
            Err(_) => {
                self.initiated_at.remove(&pid.0);
            }
        }
        true
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The mechanism wrapper.
pub struct KernelSignalMechanism {
    pub module_name: String,
    storage: SharedStorage,
    job: String,
    tracker: TrackerKind,
    target: Option<Pid>,
}

impl KernelSignalMechanism {
    pub fn new(module_name: &str, job: &str, storage: SharedStorage, tracker: TrackerKind) -> Self {
        KernelSignalMechanism {
            module_name: module_name.to_string(),
            storage,
            job: job.to_string(),
            tracker,
            target: None,
        }
    }
}

impl Mechanism for KernelSignalMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            family: "kernel-signal",
            context: Context::SystemOs,
            agent: AgentKind::KernelSignal,
            is_kernel_module: true,
            transparent: true,
            supports_incremental: self.tracker.supports_incremental(),
            initiation: Initiation::UserInitiated,
        }
    }

    fn prepare(&mut self, k: &mut Kernel, pid: Pid) -> SimResult<()> {
        self.target = Some(pid);
        if !k.module_loaded(&self.module_name) {
            k.register_module(Box::new(ChpoxModule::new(
                &self.module_name,
                &self.job,
                self.storage.clone(),
                self.tracker,
            )))?;
        }
        // Registration: a tool writes the pid to /proc/<name> (open +
        // write + close).
        for _ in 0..3 {
            charge_tool_syscall(k);
        }
        let name = self.module_name.clone();
        let data = pid.0.to_string().into_bytes();
        k.dispatch_module(&name, |m, k| m.proc_write(k, pid, "register", &data))
            .ok_or_else(|| SimError::Usage("module missing".into()))?
            .map_err(|e| SimError::Usage(format!("registration failed: {e:?}")))?;
        Ok(())
    }

    fn checkpoint(&mut self, k: &mut Kernel, pid: Pid) -> SimResult<CkptOutcome> {
        let name = self.module_name.clone();
        let before = self.outcomes(k).len();
        // kill -CKPT <pid> from a tool, then wait for the deferred
        // delivery to run the kernel checkpoint.
        charge_tool_syscall(k);
        let now = k.now();
        k.with_module_mut::<ChpoxModule, _>(&name, |m, _| {
            m.initiated_at.insert(pid.0, now);
        });
        k.post_signal(pid, Sig::SIGCKPT);
        run_until(k, 60_000_000_000, "SIGCKPT delivery", |k| {
            k.with_module_mut::<ChpoxModule, _>(&name, |m, _| m.outcomes.len())
                .unwrap_or(0)
                > before
        })?;
        let all = self.outcomes(k);
        all.get(before)
            .cloned()
            .ok_or_else(|| SimError::Usage("no outcome recorded".into()))
    }

    fn restart(&mut self, k: &mut Kernel, pid: RestorePid) -> SimResult<RestartOutcome> {
        let target = self
            .target
            .ok_or_else(|| SimError::Usage("not prepared".into()))?;
        super::restart_from_shared(&self.storage, &self.job, target, k, pid)
    }

    fn outcomes(&self, k: &Kernel) -> Vec<CkptOutcome> {
        k.with_module::<ChpoxModule, _>(&self.module_name, |m| {
            m.outcomes.iter().map(|(_, o)| o.clone()).collect()
        })
        .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared_storage;
    use ckpt_storage::LocalDisk;
    use simos::apps::{AppParams, NativeKind};
    use simos::cost::CostModel;
    
    fn setup() -> (Kernel, Pid, KernelSignalMechanism) {
        let mut k = Kernel::new(CostModel::circa_2005());
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
        let mut mech = KernelSignalMechanism::new(
            "chpox",
            "job",
            shared_storage(LocalDisk::new(1 << 30)),
            TrackerKind::KernelPage,
        );
        mech.prepare(&mut k, pid).unwrap();
        (k, pid, mech)
    }

    #[test]
    fn proc_entry_created_and_lists_registered_pids() {
        let (mut k, pid, _mech) = setup();
        assert!(k.fs.exists("/proc/chpox"));
        let listing = k
            .dispatch_module("chpox", |m, k| m.proc_read(k, pid, "register"))
            .unwrap()
            .unwrap();
        assert_eq!(String::from_utf8(listing).unwrap().trim(), pid.0.to_string());
    }

    #[test]
    fn kill_sigckpt_checkpoints_transparently() {
        let (mut k, pid, mut mech) = setup();
        k.run_for(20_000_000).unwrap();
        let o = mech.checkpoint(&mut k, pid).unwrap();
        assert!(o.pages_saved > 0);
        assert!(mech.info().transparent);
        // Process unharmed.
        let w = k.process(pid).unwrap().work_done;
        k.run_for(20_000_000).unwrap();
        assert!(k.process(pid).unwrap().work_done > w);
    }

    #[test]
    fn unregistered_process_is_not_checkpointed_but_survives() {
        let (mut k, _pid, _mech) = setup();
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let other = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
        k.post_signal(other, Sig::SIGCKPT);
        k.run_for(50_000_000).unwrap();
        // Swallowed by the module: no checkpoint, no termination.
        assert!(!k.process(other).unwrap().has_exited());
        let n = k
            .with_module_mut::<ChpoxModule, _>("chpox", |m, _| m.outcomes.len())
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn deferral_grows_under_competing_load() {
        // The paper: delivery waits for the next kernel→user transition in
        // the target's context — so with N CPU-bound competitors the
        // initiation→completion latency grows.
        let latency_with_competitors = |n: usize| -> u64 {
            let mut k = Kernel::new(CostModel::circa_2005());
            let mut params = AppParams::small();
            params.total_steps = u64::MAX;
            let target = k.spawn_native(NativeKind::SparseRandom, params.clone()).unwrap();
            for _ in 0..n {
                // Equal-priority CPU-bound competitors: the target only
                // reaches user mode when its turn comes around.
                let _ = k.spawn_native(NativeKind::SparseRandom, params.clone()).unwrap();
            }
            let mut mech = KernelSignalMechanism::new(
                "chpox",
                "job",
                shared_storage(LocalDisk::new(1 << 30)),
                TrackerKind::FullOnly,
            );
            mech.prepare(&mut k, target).unwrap();
            k.run_for(30_000_000).unwrap();
            mech.checkpoint(&mut k, target).unwrap().total_ns
        };
        let alone = latency_with_competitors(0);
        let crowded = latency_with_competitors(6);
        assert!(
            crowded > alone,
            "deferral under load ({crowded}) should exceed idle latency ({alone})"
        );
    }

    #[test]
    fn restart_from_kernel_signal_checkpoint() {
        let (mut k, pid, mut mech) = setup();
        k.run_for(30_000_000).unwrap();
        mech.checkpoint(&mut k, pid).unwrap();
        let w = {
            // Work at checkpoint is recorded in the image.
            let all = mech.outcomes(&k);
            assert_eq!(all.len(), 1);
            k.process(pid).unwrap().work_done
        };
        let mut k2 = Kernel::new(CostModel::circa_2005());
        let r = mech.restart(&mut k2, RestorePid::Fresh).unwrap();
        assert!(r.work_done <= w);
        k2.run_for(10_000_000).unwrap();
        assert!(k2.process(r.pid).unwrap().work_done >= r.work_done);
    }
}
