//! Software Suspend (swsusp): whole-machine hibernation via the kernel's
//! own freeze-everything signal.
//!
//! Section 4.1: "A new default kernel signal is implemented to initiate the
//! hibernation which is delivered to every process in the system to freeze
//! their execution. When all processes are stopped the image of the RAM is
//! saved on the swap partition in the local disk. After that it powers down
//! the system. At start-up the image is restored from disk and all the
//! processes are restarted." A *standby* mode keeps the image in RAM
//! instead — fast, but it does not survive the power-down.

use crate::capture::{capture_image, restore_image, CaptureOptions, RestoreOptions, RestorePid};
use crate::SharedStorage;
use ckpt_storage::{store_image, ImageKey};
use simos::trace::{Phase, StorageOp};
use simos::types::{Pid, SimError, SimResult};
use simos::Kernel;

/// Where the hibernation image goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuspendMode {
    /// To the swap partition — survives power-down (hibernation).
    ToDisk,
    /// To RAM — fast, lost on power-down (standby).
    ToRam,
}

/// Result of a completed hibernation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HibernateReport {
    pub processes_saved: usize,
    pub bytes_written: u64,
    pub total_ns: u64,
    pub mode: SuspendMode,
}

/// The Software Suspend mechanism (static kernel; user-initiated via a
/// script; local storage only).
pub struct SoftwareSuspend {
    storage: SharedStorage,
    job: String,
    saved_pids: Vec<u32>,
    seq: u64,
}

impl SoftwareSuspend {
    pub fn new(storage: SharedStorage) -> Self {
        SoftwareSuspend {
            storage,
            job: "swsusp".into(),
            saved_pids: Vec::new(),
            seq: 0,
        }
    }

    /// Freeze every process, save all their images, and power the node
    /// down (the caller then drops or re-creates the kernel; storage
    /// backends get their `on_power_down` from the cluster layer).
    pub fn hibernate(&mut self, k: &mut Kernel, mode: SuspendMode) -> SimResult<HibernateReport> {
        let trace_before = k.trace.mechanism_total(&self.job);
        let t0 = k.now();
        self.seq += 1;
        // The freeze signal reaches every process (charged per process).
        let pids: Vec<Pid> = k
            .pids()
            .into_iter()
            .filter(|p| k.process(*p).map(|p| !p.has_exited()).unwrap_or(false))
            .collect();
        k.faultpoint(&self.job, "freeze")?;
        for pid in &pids {
            let t = k.cost.signal_deliver_ns;
            k.charge(t);
            k.freeze_process(*pid)?;
        }
        let lead = pids.first().map(|p| p.0).unwrap_or(0);
        k.trace
            .phase(&self.job, Phase::Freeze, lead, self.seq, k.now(), k.now() - t0);
        // Save the RAM image: one image per process, contiguous swap
        // write.
        let mut bytes = 0u64;
        let mut capture_ns = 0u64;
        let mut store_ns = 0u64;
        // The image is committed only once *every* process has been saved:
        // a crash mid-loop must not leave a partial pid set that a later
        // boot would silently resume as a truncated machine.
        let mut committed = Vec::new();
        for pid in &pids {
            k.faultpoint(&self.job, "capture")?;
            let mut opts = CaptureOptions::full("swsusp", self.seq);
            opts.save_file_contents = true;
            let cap0 = k.now();
            let img = capture_image(k, *pid, &opts)?;
            capture_ns += k.now() - cap0;
            k.faultpoint(&self.job, "store")?;
            let (b, t) = {
                let mut storage = self.storage.lock();
                let receipt = store_image(storage.as_mut(), &self.job, &img, &k.cost)
                    .map_err(|e| SimError::Usage(format!("swsusp store failed: {e}")))?;
                let label = storage.label();
                drop(storage);
                k.trace.storage(StorageOp::Store, &label, receipt.bytes, receipt.time_ns);
                (receipt.bytes, receipt.time_ns)
            };
            bytes += b;
            k.charge(t);
            store_ns += t;
            committed.push(pid.0);
        }
        self.saved_pids = committed;
        k.trace
            .phase(&self.job, Phase::Capture, lead, self.seq, k.now(), capture_ns);
        k.trace
            .phase(&self.job, Phase::Store, lead, self.seq, k.now(), store_ns);
        // Execution resumes only at the next boot; the zero-cost marker
        // closes the phase sequence for this round.
        k.faultpoint(&self.job, "resume")?;
        k.trace.phase(&self.job, Phase::Resume, lead, self.seq, k.now(), 0);
        crate::mechanism::emit_phase_residual(
            k,
            &self.job,
            Pid(lead),
            self.seq,
            k.now() - t0,
            trace_before,
        );
        // Power down: processes are gone with the kernel; the caller stops
        // using `k`.
        Ok(HibernateReport {
            processes_saved: pids.len(),
            bytes_written: bytes,
            total_ns: k.now() - t0,
            mode,
        })
    }

    /// Boot-time resume: restore every saved process onto a fresh kernel,
    /// under original pids.
    pub fn resume(&mut self, k: &mut Kernel) -> SimResult<Vec<Pid>> {
        if self.saved_pids.is_empty() {
            return Err(SimError::Usage(
                "swsusp resume: no committed hibernation image".into(),
            ));
        }
        let mut restored = Vec::new();
        for pid in self.saved_pids.clone() {
            k.faultpoint(&self.job, "restore")?;
            let (img, t) = {
                let storage = self.storage.lock();
                let key = ImageKey::new(&self.job, pid, self.seq).to_string();
                let (bytes, t) = storage
                    .load(&key, &k.cost)
                    .map_err(|e| SimError::Usage(format!("resume load failed: {e}")))?;
                (
                    ckpt_image::decode(&bytes)
                        .map_err(|e| SimError::Usage(format!("resume decode failed: {e}")))?,
                    t,
                )
            };
            k.charge(t);
            let r0 = k.now().saturating_sub(t);
            let new_pid =
                restore_image(k, &img, &RestoreOptions::fresh_running(RestorePid::Original))?;
            k.trace
                .phase(&self.job, Phase::Restore, new_pid.0, self.seq, k.now(), k.now() - r0);
            restored.push(new_pid);
        }
        Ok(restored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared_storage;
    use ckpt_storage::{RamStore, SwapStore};
    use simos::apps::{AppParams, NativeKind};
    use simos::cost::CostModel;

    fn populated_kernel() -> (Kernel, Vec<Pid>) {
        let mut k = Kernel::new(CostModel::circa_2005());
        let mut pids = Vec::new();
        for _ in 0..3 {
            let mut params = AppParams::small();
            params.total_steps = u64::MAX;
            pids.push(k.spawn_native(NativeKind::SparseRandom, params).unwrap());
        }
        k.run_for(30_000_000).unwrap();
        (k, pids)
    }

    #[test]
    fn hibernate_to_disk_survives_power_down() {
        let (mut k, pids) = populated_kernel();
        let storage = shared_storage(SwapStore::new(1 << 30));
        let mut susp = SoftwareSuspend::new(storage.clone());
        let report = susp.hibernate(&mut k, SuspendMode::ToDisk).unwrap();
        assert_eq!(report.processes_saved, 3);
        assert!(report.bytes_written > 0);
        let works: Vec<u64> = pids
            .iter()
            .map(|p| k.process(*p).unwrap().work_done)
            .collect();
        // Power down: the node loses RAM; swap survives.
        storage.lock().on_power_down();
        drop(k);
        // Boot: fresh kernel, resume everything under original pids.
        let mut k2 = Kernel::new(CostModel::circa_2005());
        let restored = susp.resume(&mut k2).unwrap();
        assert_eq!(restored, pids);
        for (pid, w) in pids.iter().zip(works) {
            assert_eq!(k2.process(*pid).unwrap().work_done, w);
        }
        // And they keep running.
        k2.run_for(30_000_000).unwrap();
        assert!(k2.process(pids[0]).unwrap().work_done > 0);
    }

    #[test]
    fn standby_to_ram_is_lost_on_power_down() {
        let (mut k, _pids) = populated_kernel();
        let storage = shared_storage(RamStore::new(1 << 30));
        let mut susp = SoftwareSuspend::new(storage.clone());
        susp.hibernate(&mut k, SuspendMode::ToRam).unwrap();
        storage.lock().on_power_down();
        drop(k);
        let mut k2 = Kernel::new(CostModel::circa_2005());
        assert!(
            susp.resume(&mut k2).is_err(),
            "standby image must not survive power-down"
        );
    }

    #[test]
    fn all_processes_frozen_during_hibernate() {
        let (mut k, pids) = populated_kernel();
        let storage = shared_storage(SwapStore::new(1 << 30));
        let mut susp = SoftwareSuspend::new(storage);
        susp.hibernate(&mut k, SuspendMode::ToDisk).unwrap();
        // After hibernate (before "power down") everything is frozen.
        let works: Vec<u64> = pids
            .iter()
            .map(|p| k.process(*p).unwrap().work_done)
            .collect();
        k.run_for(50_000_000).unwrap();
        for (pid, w) in pids.iter().zip(works) {
            assert_eq!(k.process(*pid).unwrap().work_done, w, "{pid} not frozen");
        }
    }
}
