//! ZAP-style pod virtualization.
//!
//! Migrating a checkpoint to another machine trips over "resource
//! consistency, resource conflicts, and resource dependencies" (Section 3):
//! the original pid may be taken, file paths may collide with another
//! job's, and the process may believe facts about the old node. ZAP [24]
//! solves this with a *pod* — a private virtual namespace whose resources
//! are translated to physical ones by intercepting system calls, at a
//! run-time cost.
//!
//! A [`Pod`] here does exactly that for the resources the simulator models:
//!
//! * **pids** — the restored process gets any free physical pid; the pod
//!   records the virtual→physical mapping so the process's original pid
//!   remains meaningful inside the pod;
//! * **file paths** — every path in the image is re-rooted under
//!   `/pods/<name>/...`, so two restored jobs with the same `/tmp/out`
//!   cannot clobber each other;
//! * **the interposition tax** — the restored process runs with the
//!   `LD_PRELOAD`-style interposition flag set, paying ZAP's per-syscall
//!   overhead for the rest of its life (the cost the paper points out).

use crate::capture::{restore_image, RestoreOptions, RestorePid};
use ckpt_image::CheckpointImage;
use simos::types::{Pid, SimResult};
use simos::Kernel;
use std::collections::BTreeMap;

/// A virtual-namespace container for restored processes.
#[derive(Debug, Clone)]
pub struct Pod {
    name: String,
    /// virtual (original) pid → physical pid on this kernel.
    pid_map: BTreeMap<u32, u32>,
}

impl Pod {
    pub fn new(name: &str) -> Self {
        Pod {
            name: name.to_string(),
            pid_map: BTreeMap::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Re-root a path into the pod's namespace.
    pub fn translate_path(&self, path: &str) -> String {
        format!("/pods/{}{}", self.name, path)
    }

    /// Physical pid for a virtual (original) pid.
    pub fn physical(&self, virt: u32) -> Option<Pid> {
        self.pid_map.get(&virt).map(|p| Pid(*p))
    }

    /// Virtual pid for a physical pid.
    pub fn virtual_of(&self, phys: Pid) -> Option<u32> {
        self.pid_map
            .iter()
            .find(|(_, p)| **p == phys.0)
            .map(|(v, _)| *v)
    }

    fn mkdir_all(k: &mut Kernel, path: &str) {
        let mut cur = String::new();
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            cur.push('/');
            cur.push_str(comp);
            let _ = k.fs.mkdir(&cur);
        }
    }

    /// Restore an image *into* this pod on `k`: paths re-rooted, pid
    /// virtualized, interposition enabled. Succeeds even when the original
    /// pid is taken and the original paths exist — the conflicts a bare
    /// restore fails on.
    pub fn restore(&mut self, k: &mut Kernel, img: &CheckpointImage) -> SimResult<Pid> {
        let mut podded = img.clone();
        for fd in &mut podded.fds {
            fd.path = self.translate_path(&fd.path);
        }
        for f in &mut podded.files {
            f.path = self.translate_path(&f.path);
        }
        // Create the namespace directories (pod root + parents of every
        // translated path).
        Pod::mkdir_all(k, &format!("/pods/{}", self.name));
        let parents: Vec<String> = podded
            .fds
            .iter()
            .map(|f| f.path.clone())
            .chain(podded.files.iter().map(|f| f.path.clone()))
            .filter_map(|p| p.rfind('/').map(|i| p[..i].to_string()))
            .collect();
        for parent in parents {
            Pod::mkdir_all(k, &parent);
        }
        let phys = restore_image(
            k,
            &podded,
            &RestoreOptions {
                pid: RestorePid::Fresh,
                run: true,
            },
        )?;
        // ZAP's virtualization layer: every subsequent interposable
        // syscall pays the interception tax.
        if let Some(p) = k.process_mut(phys) {
            p.user_rt.interpose_active = true;
        }
        self.pid_map.insert(img.header.pid, phys.0);
        Ok(phys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{capture_image, CaptureOptions};
    use simos::apps::{AppParams, NativeKind};
    use simos::cost::CostModel;
    use simos::fs::OpenFlags;
    use simos::syscall::Syscall;

    fn checkpoint_with_file() -> (Kernel, CheckpointImage) {
        let mut k = Kernel::new(CostModel::circa_2005());
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
        k.run_for(5_000_000).unwrap();
        k.do_syscall(
            pid,
            Syscall::Open {
                path: "/tmp/out".into(),
                flags: OpenFlags::RDWR_CREATE,
            },
        )
        .unwrap();
        k.freeze_process(pid).unwrap();
        let mut opts = CaptureOptions::full("zap", 1);
        opts.save_file_contents = true;
        let img = capture_image(&mut k, pid, &opts).unwrap();
        (k, img)
    }

    #[test]
    fn pod_restore_survives_pid_and_path_conflicts() {
        let (mut k, img) = checkpoint_with_file();
        // The original pid still exists on this kernel AND /tmp/out exists:
        // a bare same-pid restore fails, a pod restore succeeds.
        let bare = restore_image(
            &mut k,
            &img,
            &RestoreOptions {
                pid: RestorePid::Original,
                run: true,
            },
        );
        assert!(bare.is_err(), "bare restore should hit the pid conflict");
        let mut pod = Pod::new("j2");
        let phys = pod.restore(&mut k, &img).unwrap();
        assert_ne!(phys.0, img.header.pid);
        assert_eq!(pod.physical(img.header.pid), Some(phys));
        assert_eq!(pod.virtual_of(phys), Some(img.header.pid));
        // The pod process writes to its own namespace, not the original's.
        assert!(k.fs.exists("/pods/j2/tmp/out"));
        // The restored process runs.
        let w0 = k.process(phys).unwrap().work_done;
        k.run_for(20_000_000).unwrap();
        assert!(k.process(phys).unwrap().work_done > w0);
    }

    #[test]
    fn pod_processes_pay_the_interposition_tax() {
        let (mut k, img) = checkpoint_with_file();
        let mut pod = Pod::new("p");
        let phys = pod.restore(&mut k, &img).unwrap();
        assert!(k.process(phys).unwrap().user_rt.interpose_active);
        let before = k.stats.interposed_syscalls;
        k.do_syscall(
            phys,
            Syscall::Open {
                path: "/tmp/x".into(),
                flags: OpenFlags::WRONLY_CREATE,
            },
        )
        .unwrap();
        assert_eq!(k.stats.interposed_syscalls, before + 1);
    }

    #[test]
    fn two_pods_do_not_clobber_each_other() {
        let (mut k, img) = checkpoint_with_file();
        let mut pod_a = Pod::new("a");
        let mut pod_b = Pod::new("b");
        let pa = pod_a.restore(&mut k, &img).unwrap();
        let pb = pod_b.restore(&mut k, &img).unwrap();
        assert_ne!(pa, pb);
        assert!(k.fs.exists("/pods/a/tmp/out"));
        assert!(k.fs.exists("/pods/b/tmp/out"));
        // Writing through pod A's fd does not touch pod B's file.
        k.mem_write(pa, simos::apps::ARRAY_BASE, b"AAAA").unwrap();
        k.do_syscall(
            pa,
            Syscall::Write {
                fd: simos::types::Fd(img.fds[0].fd),
                buf: simos::apps::ARRAY_BASE,
                len: 4,
            },
        )
        .unwrap();
        assert_eq!(k.fs.read_file("/pods/a/tmp/out").unwrap(), b"AAAA");
        assert_ne!(k.fs.read_file("/pods/b/tmp/out").unwrap(), b"AAAA");
    }

    #[test]
    fn path_translation_is_prefixing() {
        let pod = Pod::new("x");
        assert_eq!(pod.translate_path("/tmp/f"), "/pods/x/tmp/f");
    }
}
