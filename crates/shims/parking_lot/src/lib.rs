//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's signatures: `lock()`
//! returns the guard directly (a poisoned lock yields its inner guard —
//! parking_lot has no poisoning, so swallowing the flag preserves its
//! semantics). Only the API this workspace uses is provided.

use std::sync::{self, TryLockError};

pub use std::sync::MutexGuard;
pub use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A mutex with parking_lot's poison-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's poison-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
