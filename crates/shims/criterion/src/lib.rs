//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot fetch crates.io, so the `[[bench]]`
//! targets link against this shim instead. It keeps the same authoring
//! API (`criterion_group!` / `criterion_main!` / groups / `Bencher::iter`)
//! but replaces the statistics engine with a fixed warmup + timed-run
//! loop that prints one line per benchmark. That is enough to keep the
//! benches compiling, runnable, and useful as smoke tests — not enough
//! for rigorous statistics, which an online build can restore by
//! repointing the workspace dependency at the real crate.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (recorded, reported alongside timings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// A benchmark identifier; `from_parameter` mirrors criterion's API.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The per-benchmark timing harness handed to closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One warmup call, then the timed iterations.
        black_box(body());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(label: &str, iters: u64, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.checked_div(iters as u32).unwrap_or_default();
    let tp = match throughput {
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            let secs = per_iter.as_secs_f64();
            if secs > 0.0 {
                format!("  {:.1} MiB/s", n as f64 / secs / (1u64 << 20) as f64)
            } else {
                String::new()
            }
        }
        Some(Throughput::Elements(n)) => {
            let secs = per_iter.as_secs_f64();
            if secs > 0.0 {
                format!("  {:.0} elem/s", n as f64 / secs)
            } else {
                String::new()
            }
        }
        None => String::new(),
    };
    println!("bench {label:<40} {per_iter:>12.2?}/iter ({iters} iters){tp}");
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    throughput: Option<Throughput>,
    _parent: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Map criterion's statistical sample size onto plain iterations,
        // clamped so shim runs stay quick.
        self.iters = (n as u64).clamp(1, 20);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.iters, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.iters,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// The top-level driver.
#[derive(Default)]
pub struct Criterion {
    iters: u64,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.iters = (n as u64).clamp(1, 20);
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iters: if self.iters == 0 { 3 } else { self.iters },
            throughput: None,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let iters = if self.iters == 0 { 3 } else { self.iters };
        run_one(id, iters, None, &mut f);
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $(
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}
