//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored shim provides exactly the subset of the rand 0.8 API the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over primitive half-open ranges. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic, uniform, and
//! plenty for failure-injection draws; it makes no cryptographic claims
//! (neither does `StdRng`'s contract of reproducibility across versions,
//! which this shim intentionally does not preserve).

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a `Range`.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                // Debiased multiply-shift (Lemire); span is far below 2^64
                // in practice so a single widening multiply suffices.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low + hi as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i64);

/// The user-facing extension trait (`rand::Rng`).
pub trait Rng: RngCore {
    /// Draw uniformly from a half-open range `low..high`.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Draw a uniform value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::generate(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types drawable via [`Rng::gen`].
pub trait Standard {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the standard small, fast, statistically strong PRNG.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..8).map(|_| r.gen_range(0u64..1000)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn f64_range_respected_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(42);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.gen_range(1e-12..1.0f64);
            assert!((1e-12..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
