//! Convenience layer for storing and retrieving [`CheckpointImage`]s on any
//! backend, including incremental-chain retrieval.

use crate::backend::{StableStorage, StorageError, StoreReceipt};
use crate::key::ImageKey;
use ckpt_image::{decode, encode, ChainError, CheckpointImage, DecodeError, ImageKind};
use simos::cost::CostModel;

/// Errors from the image layer.
#[derive(Debug)]
pub enum ImageStoreError {
    Storage(StorageError),
    Decode(DecodeError),
    Chain(ckpt_image::ChainError),
}

impl std::fmt::Display for ImageStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageStoreError::Storage(e) => write!(f, "storage: {e}"),
            ImageStoreError::Decode(e) => write!(f, "decode: {e}"),
            ImageStoreError::Chain(e) => write!(f, "chain: {e}"),
        }
    }
}

impl std::error::Error for ImageStoreError {}

impl From<StorageError> for ImageStoreError {
    fn from(e: StorageError) -> Self {
        ImageStoreError::Storage(e)
    }
}
impl From<DecodeError> for ImageStoreError {
    fn from(e: DecodeError) -> Self {
        ImageStoreError::Decode(e)
    }
}
impl From<ckpt_image::ChainError> for ImageStoreError {
    fn from(e: ckpt_image::ChainError) -> Self {
        ImageStoreError::Chain(e)
    }
}

/// Encode and store an image under the canonical key.
pub fn store_image(
    storage: &mut dyn StableStorage,
    job: &str,
    img: &CheckpointImage,
    cost: &CostModel,
) -> Result<StoreReceipt, ImageStoreError> {
    let key = ImageKey::new(job, img.header.pid, img.header.seq).to_string();
    let bytes = encode(img);
    Ok(storage.store(&key, &bytes, cost)?)
}

/// Store an already-encoded image under the canonical key derived from
/// `(pid, seq)` — the overlapped cluster pipeline encodes off the storage
/// lock and hands the bytes in here. The bytes must be what
/// [`ckpt_image::encode`] produces for that `(pid, seq)`.
pub fn store_image_bytes(
    storage: &mut dyn StableStorage,
    job: &str,
    pid: u32,
    seq: u64,
    bytes: &[u8],
    cost: &CostModel,
) -> Result<StoreReceipt, ImageStoreError> {
    let key = ImageKey::new(job, pid, seq).to_string();
    Ok(storage.store(&key, bytes, cost)?)
}

/// Load and validate one image; returns (image, modelled time).
pub fn load_image(
    storage: &dyn StableStorage,
    job: &str,
    pid: u32,
    seq: u64,
    cost: &CostModel,
) -> Result<(CheckpointImage, u64), ImageStoreError> {
    let key = ImageKey::new(job, pid, seq).to_string();
    let (bytes, t) = storage.load(&key, cost)?;
    Ok((decode(&bytes)?, t))
}

/// Load the newest restartable chain for a pid: the most recent full image
/// and every incremental after it, reconstructed into one full image.
/// Returns (reconstructed image, total modelled load time).
pub fn load_latest_chain(
    storage: &dyn StableStorage,
    job: &str,
    pid: u32,
    cost: &CostModel,
) -> Result<(CheckpointImage, u64), ImageStoreError> {
    load_chain_at(storage, job, pid, u64::MAX, cost)
}

/// Like [`load_latest_chain`], but ignoring any image newer than
/// `max_seq`. A coordinator that failed mid-round may leave newer images
/// for a *subset* of ranks; capping the load at the last seq known to have
/// committed for **every** rank is what keeps a coordinated restart on a
/// consistent cut.
pub fn load_chain_at(
    storage: &dyn StableStorage,
    job: &str,
    pid: u32,
    max_seq: u64,
    cost: &CostModel,
) -> Result<(CheckpointImage, u64), ImageStoreError> {
    let prefix = ImageKey::lineage_prefix(job, pid);
    let mut keys: Vec<String> = storage
        .list()
        .into_iter()
        .filter(|k| {
            k.starts_with(&prefix)
                && k.parse::<ImageKey>().is_ok_and(|ik| ik.seq <= max_seq)
        })
        .collect();
    keys.sort();
    if keys.is_empty() {
        return Err(ImageStoreError::Storage(StorageError::NotFound(prefix)));
    }
    // Load from the newest backwards until a full image is found.
    let mut loaded: Vec<CheckpointImage> = Vec::new();
    let mut total_t = 0u64;
    for key in keys.iter().rev() {
        let (bytes, t) = storage.load(key, cost)?;
        total_t += t;
        let img = decode(&bytes)?;
        let is_full = img.header.kind == ImageKind::Full;
        loaded.push(img);
        if is_full {
            break;
        }
    }
    loaded.reverse();
    let full = ckpt_image::reconstruct(&loaded)?;
    Ok((full, total_t))
}

/// What [`load_latest_valid_chain`] recovered.
#[derive(Debug)]
pub struct ChainLoad {
    /// The reconstructed full image of the newest restartable chain.
    pub image: CheckpointImage,
    /// Total modelled load time (the caller charges it).
    pub load_ns: u64,
    /// Objects actually loaded from the medium.
    pub images_loaded: u64,
    /// Objects that had to be discarded (torn/corrupt encodings, broken
    /// lineage) before a restartable chain was found. Zero on the clean
    /// path.
    pub images_skipped: u64,
}

/// Like [`load_latest_chain`], but resilient: a torn or corrupt object —
/// the debris a mid-checkpoint crash leaves behind — is discarded (along
/// with any newer incrementals that depended on it) and the search falls
/// back to the next older restartable chain. On the clean path this issues
/// exactly the loads [`load_latest_chain`] would, with identical modelled
/// cost.
///
/// `on_segment` is invoked with each segment's sequence number during the
/// overlay (see [`ckpt_image::reconstruct_with`]); returning an error
/// aborts the whole load — it models a fault at a chain-segment boundary,
/// not a bad image, so no fallback is attempted.
///
/// Availability and transient errors from the medium also abort: they say
/// nothing about image validity, and the caller may retry.
pub fn load_latest_valid_chain(
    storage: &dyn StableStorage,
    job: &str,
    pid: u32,
    cost: &CostModel,
    mut on_segment: impl FnMut(u64) -> Result<(), ChainError>,
) -> Result<ChainLoad, ImageStoreError> {
    let prefix = ImageKey::lineage_prefix(job, pid);
    let mut keys: Vec<String> = storage
        .list()
        .into_iter()
        .filter(|k| k.starts_with(&prefix))
        .collect();
    keys.sort();
    if keys.is_empty() {
        return Err(ImageStoreError::Storage(StorageError::NotFound(prefix)));
    }
    let mut total_t = 0u64;
    let mut loaded = 0u64;
    let mut skipped = 0u64;
    // Newest-first walk of the current chain candidate; discarded wholesale
    // when an object in it proves unusable.
    let mut pending: Vec<CheckpointImage> = Vec::new();
    let mut last_err: Option<ImageStoreError> = None;
    for key in keys.iter().rev() {
        let (bytes, t) = match storage.load(key, cost) {
            Ok(v) => v,
            Err(
                e @ (StorageError::Unavailable
                | StorageError::Transient
                | StorageError::QuorumLost { .. }),
            ) => {
                // Quorum loss joins the abort set: falling back to an older
                // chain while a newer committed one may live entirely on the
                // lost replicas would be a silently wrong answer.
                return Err(e.into());
            }
            Err(e) => {
                skipped += 1 + pending.len() as u64;
                pending.clear();
                last_err = Some(e.into());
                continue;
            }
        };
        total_t += t;
        loaded += 1;
        let img = match decode(&bytes) {
            Ok(i) => i,
            Err(e) => {
                skipped += 1 + pending.len() as u64;
                pending.clear();
                last_err = Some(e.into());
                continue;
            }
        };
        let is_full = img.header.kind == ImageKind::Full;
        pending.push(img);
        if !is_full {
            continue;
        }
        let mut chain = std::mem::take(&mut pending);
        chain.reverse();
        match ckpt_image::reconstruct_with(&chain, &mut on_segment) {
            Ok(image) => {
                return Ok(ChainLoad {
                    image,
                    load_ns: total_t,
                    images_loaded: loaded,
                    images_skipped: skipped,
                })
            }
            Err(e @ ChainError::Interrupted { .. }) => return Err(e.into()),
            Err(e) => {
                skipped += chain.len() as u64;
                last_err = Some(e.into());
            }
        }
    }
    Err(last_err.unwrap_or(ImageStoreError::Storage(StorageError::NotFound(prefix))))
}

/// Delete all images of a pid older than `keep_from_seq` (garbage
/// collection after a successful full checkpoint) — unless doing so would
/// orphan a kept incremental whose lineage reaches below the cutoff, which
/// is rejected with [`ChainError::PruneWouldOrphan`] and deletes nothing.
pub fn prune_before(
    storage: &mut dyn StableStorage,
    job: &str,
    pid: u32,
    keep_from_seq: u64,
    cost: &CostModel,
) -> Result<usize, ImageStoreError> {
    let prefix = ImageKey::lineage_prefix(job, pid);
    let cutoff = ImageKey::new(job, pid, keep_from_seq).to_string();
    let mut victims = Vec::new();
    let mut kept = Vec::new();
    for k in storage.list() {
        if !k.starts_with(&prefix) {
            continue;
        }
        if k < cutoff {
            victims.push(k);
        } else {
            kept.push(k);
        }
    }
    if !victims.is_empty() {
        kept.sort();
        if let Some(first_kept) = kept.first() {
            // The oldest surviving image must stand alone: if it is an
            // incremental, its parent is about to be deleted.
            let (bytes, _t) = storage.load(first_kept, cost)?;
            let img = decode(&bytes)?;
            if img.header.kind == ImageKind::Incremental {
                return Err(ImageStoreError::Chain(ChainError::PruneWouldOrphan {
                    keep_from_seq,
                    orphan_seq: img.header.seq,
                }));
            }
        }
    }
    let n = victims.len();
    for k in victims {
        storage.delete(&k)?;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::LocalDisk;
    use ckpt_image::{
        ImageHeader, PageRecord, PolicyRecord, ProgramRecord, RegsRecord, SigRecord,
    };

    fn img(seq: u64, parent: u64, kind: ImageKind, pages: Vec<(u64, u8)>) -> CheckpointImage {
        CheckpointImage {
            header: ImageHeader {
                pid: 1,
                seq,
                parent_seq: parent,
                kind,
                taken_at_ns: seq,
                mechanism: "t".into(),
                node: 0,
            },
            regs: RegsRecord::default(),
            brk: 0,
            work_done: seq,
            policy: PolicyRecord { tag: 0, value: 0 },
            vmas: vec![],
            pages: pages
                .into_iter()
                .map(|(no, fill)| PageRecord::capture(no, &vec![fill; 4096]))
                .collect(),
            fds: vec![],
            files: vec![],
            sig: SigRecord::default(),
            timers: vec![],
            program: ProgramRecord::Vm {
                name: "t".into(),
                text: vec![0],
            },
        }
    }

    #[test]
    fn store_then_load_one_image() {
        let mut disk = LocalDisk::new(1 << 30);
        let c = CostModel::circa_2005();
        let image = img(1, 0, ImageKind::Full, vec![(1, 7)]);
        store_image(&mut disk, "job", &image, &c).unwrap();
        let (back, t) = load_image(&disk, "job", 1, 1, &c).unwrap();
        assert_eq!(back, image);
        assert!(t > 0);
    }

    #[test]
    fn latest_chain_reconstructs_across_incrementals() {
        let mut disk = LocalDisk::new(1 << 30);
        let c = CostModel::circa_2005();
        // Old full, new full, then two incrementals on the new full.
        for image in [
            img(1, 0, ImageKind::Full, vec![(1, 1)]),
            img(2, 0, ImageKind::Full, vec![(1, 2), (2, 2)]),
            img(3, 2, ImageKind::Incremental, vec![(2, 3)]),
            img(4, 3, ImageKind::Incremental, vec![(3, 4)]),
        ] {
            store_image(&mut disk, "job", &image, &c).unwrap();
        }
        let (full, _) = load_latest_chain(&disk, "job", 1, &c).unwrap();
        assert_eq!(full.work_done, 4, "state from the newest image");
        let fills: std::collections::BTreeMap<u64, u8> = full
            .pages
            .iter()
            .map(|p| (p.page_no, p.expand().unwrap()[0]))
            .collect();
        assert_eq!(fills[&1], 2, "from full seq 2, not stale seq 1");
        assert_eq!(fills[&2], 3);
        assert_eq!(fills[&3], 4);
    }

    #[test]
    fn missing_pid_is_not_found() {
        let disk = LocalDisk::new(1 << 30);
        let c = CostModel::circa_2005();
        assert!(matches!(
            load_latest_chain(&disk, "job", 9, &c),
            Err(ImageStoreError::Storage(StorageError::NotFound(_)))
        ));
    }

    #[test]
    fn prune_removes_older_sequences_only() {
        let mut disk = LocalDisk::new(1 << 30);
        let c = CostModel::circa_2005();
        for image in [
            img(1, 0, ImageKind::Full, vec![]),
            img(2, 1, ImageKind::Incremental, vec![]),
            img(3, 0, ImageKind::Full, vec![]),
        ] {
            store_image(&mut disk, "job", &image, &c).unwrap();
        }
        let n = prune_before(&mut disk, "job", 1, 3, &c).unwrap();
        assert_eq!(n, 2);
        assert_eq!(disk.list().len(), 1);
        let (full, _) = load_latest_chain(&disk, "job", 1, &c).unwrap();
        assert_eq!(full.header.seq, 3);
    }

    #[test]
    fn prune_that_would_orphan_an_incremental_is_rejected() {
        let mut disk = LocalDisk::new(1 << 30);
        let c = CostModel::circa_2005();
        for image in [
            img(1, 0, ImageKind::Full, vec![(1, 1)]),
            img(2, 1, ImageKind::Incremental, vec![(2, 2)]),
            img(3, 2, ImageKind::Incremental, vec![(3, 3)]),
        ] {
            store_image(&mut disk, "job", &image, &c).unwrap();
        }
        // Cutting at seq 2 would delete the full image seq 2 depends on.
        let err = prune_before(&mut disk, "job", 1, 2, &c).unwrap_err();
        assert!(matches!(
            err,
            ImageStoreError::Chain(ChainError::PruneWouldOrphan {
                keep_from_seq: 2,
                orphan_seq: 2
            })
        ));
        assert_eq!(disk.list().len(), 3, "rejected prune must delete nothing");
        // Cutting at seq 1 (the full) keeps the chain intact and is a no-op.
        assert_eq!(prune_before(&mut disk, "job", 1, 1, &c).unwrap(), 0);
    }

    #[test]
    fn valid_chain_loader_matches_plain_loader_on_clean_storage() {
        let mut disk = LocalDisk::new(1 << 30);
        let c = CostModel::circa_2005();
        for image in [
            img(1, 0, ImageKind::Full, vec![(1, 1)]),
            img(2, 1, ImageKind::Incremental, vec![(2, 2)]),
        ] {
            store_image(&mut disk, "job", &image, &c).unwrap();
        }
        let (plain, t_plain) = load_latest_chain(&disk, "job", 1, &c).unwrap();
        let r = load_latest_valid_chain(&disk, "job", 1, &c, |_| Ok(())).unwrap();
        assert_eq!(r.image, plain);
        assert_eq!(r.load_ns, t_plain, "clean path must charge identically");
        assert_eq!(r.images_loaded, 2);
        assert_eq!(r.images_skipped, 0);
    }

    #[test]
    fn valid_chain_loader_falls_back_past_torn_tip() {
        let mut disk = LocalDisk::new(1 << 30);
        let c = CostModel::circa_2005();
        for image in [
            img(1, 0, ImageKind::Full, vec![(1, 1)]),
            img(2, 1, ImageKind::Incremental, vec![(2, 2)]),
        ] {
            store_image(&mut disk, "job", &image, &c).unwrap();
        }
        // A crash tore the newest incremental (seq 3) mid-write.
        let full3 = encode(&img(3, 2, ImageKind::Incremental, vec![(3, 3)]));
        disk.store(
            &ImageKey::new("job", 1, 3).to_string(),
            &full3[..full3.len() / 2],
            &c,
        )
        .unwrap();
        assert!(
            load_latest_chain(&disk, "job", 1, &c).is_err(),
            "the plain loader chokes on the torn tip"
        );
        let r = load_latest_valid_chain(&disk, "job", 1, &c, |_| Ok(())).unwrap();
        assert_eq!(r.image.header.seq, 2, "fell back to the intact chain");
        assert_eq!(r.images_skipped, 1);
    }

    #[test]
    fn valid_chain_loader_reports_typed_error_when_nothing_survives() {
        let mut disk = LocalDisk::new(1 << 30);
        let c = CostModel::circa_2005();
        let full = encode(&img(1, 0, ImageKind::Full, vec![(1, 1)]));
        disk.store(&ImageKey::new("job", 1, 1).to_string(), &full[..10], &c)
            .unwrap();
        assert!(matches!(
            load_latest_valid_chain(&disk, "job", 1, &c, |_| Ok(())),
            Err(ImageStoreError::Decode(_))
        ));
    }

    #[test]
    fn valid_chain_loader_segment_observer_can_abort() {
        let mut disk = LocalDisk::new(1 << 30);
        let c = CostModel::circa_2005();
        store_image(&mut disk, "job", &img(1, 0, ImageKind::Full, vec![(1, 1)]), &c).unwrap();
        let r = load_latest_valid_chain(&disk, "job", 1, &c, |seq| {
            Err(ChainError::Interrupted { at_seq: seq })
        });
        assert!(matches!(
            r,
            Err(ImageStoreError::Chain(ChainError::Interrupted { at_seq: 1 }))
        ));
    }

    #[test]
    fn corrupted_object_fails_decode() {
        let mut disk = LocalDisk::new(1 << 30);
        let c = CostModel::circa_2005();
        let image = img(1, 0, ImageKind::Full, vec![(1, 7)]);
        store_image(&mut disk, "job", &image, &c).unwrap();
        // Corrupt the stored bytes out-of-band.
        let key = ImageKey::new("job", 1, 1).to_string();
        let (mut bytes, _) = disk.load(&key, &c).unwrap();
        bytes[40] ^= 0xFF;
        disk.store(&key, &bytes, &c).unwrap();
        assert!(matches!(
            load_image(&disk, "job", 1, 1, &c),
            Err(ImageStoreError::Decode(_))
        ));
    }
}
