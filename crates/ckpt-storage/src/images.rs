//! Convenience layer for storing and retrieving [`CheckpointImage`]s on any
//! backend, including incremental-chain retrieval.

use crate::backend::{image_key, StableStorage, StorageError, StoreReceipt};
use ckpt_image::{decode, encode, CheckpointImage, DecodeError, ImageKind};
use simos::cost::CostModel;

/// Errors from the image layer.
#[derive(Debug)]
pub enum ImageStoreError {
    Storage(StorageError),
    Decode(DecodeError),
    Chain(ckpt_image::ChainError),
}

impl std::fmt::Display for ImageStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageStoreError::Storage(e) => write!(f, "storage: {e}"),
            ImageStoreError::Decode(e) => write!(f, "decode: {e}"),
            ImageStoreError::Chain(e) => write!(f, "chain: {e}"),
        }
    }
}

impl std::error::Error for ImageStoreError {}

impl From<StorageError> for ImageStoreError {
    fn from(e: StorageError) -> Self {
        ImageStoreError::Storage(e)
    }
}
impl From<DecodeError> for ImageStoreError {
    fn from(e: DecodeError) -> Self {
        ImageStoreError::Decode(e)
    }
}
impl From<ckpt_image::ChainError> for ImageStoreError {
    fn from(e: ckpt_image::ChainError) -> Self {
        ImageStoreError::Chain(e)
    }
}

/// Encode and store an image under the canonical key.
pub fn store_image(
    storage: &mut dyn StableStorage,
    job: &str,
    img: &CheckpointImage,
    cost: &CostModel,
) -> Result<StoreReceipt, ImageStoreError> {
    let key = image_key(job, img.header.pid, img.header.seq);
    let bytes = encode(img);
    Ok(storage.store(&key, &bytes, cost)?)
}

/// Load and validate one image; returns (image, modelled time).
pub fn load_image(
    storage: &dyn StableStorage,
    job: &str,
    pid: u32,
    seq: u64,
    cost: &CostModel,
) -> Result<(CheckpointImage, u64), ImageStoreError> {
    let key = image_key(job, pid, seq);
    let (bytes, t) = storage.load(&key, cost)?;
    Ok((decode(&bytes)?, t))
}

/// Load the newest restartable chain for a pid: the most recent full image
/// and every incremental after it, reconstructed into one full image.
/// Returns (reconstructed image, total modelled load time).
pub fn load_latest_chain(
    storage: &dyn StableStorage,
    job: &str,
    pid: u32,
    cost: &CostModel,
) -> Result<(CheckpointImage, u64), ImageStoreError> {
    let prefix = format!("{job}/pid{pid}/");
    let mut keys: Vec<String> = storage
        .list()
        .into_iter()
        .filter(|k| k.starts_with(&prefix))
        .collect();
    keys.sort();
    if keys.is_empty() {
        return Err(ImageStoreError::Storage(StorageError::NotFound(prefix)));
    }
    // Load from the newest backwards until a full image is found.
    let mut loaded: Vec<CheckpointImage> = Vec::new();
    let mut total_t = 0u64;
    for key in keys.iter().rev() {
        let (bytes, t) = storage.load(key, cost)?;
        total_t += t;
        let img = decode(&bytes)?;
        let is_full = img.header.kind == ImageKind::Full;
        loaded.push(img);
        if is_full {
            break;
        }
    }
    loaded.reverse();
    let full = ckpt_image::reconstruct(&loaded)?;
    Ok((full, total_t))
}

/// Delete all images of a pid older than `keep_from_seq` (garbage
/// collection after a successful full checkpoint).
pub fn prune_before(
    storage: &mut dyn StableStorage,
    job: &str,
    pid: u32,
    keep_from_seq: u64,
) -> Result<usize, ImageStoreError> {
    let prefix = format!("{job}/pid{pid}/");
    let cutoff = image_key(job, pid, keep_from_seq);
    let victims: Vec<String> = storage
        .list()
        .into_iter()
        .filter(|k| k.starts_with(&prefix) && *k < cutoff)
        .collect();
    let n = victims.len();
    for k in victims {
        storage.delete(&k)?;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::LocalDisk;
    use ckpt_image::{
        ImageHeader, PageRecord, PolicyRecord, ProgramRecord, RegsRecord, SigRecord,
    };

    fn img(seq: u64, parent: u64, kind: ImageKind, pages: Vec<(u64, u8)>) -> CheckpointImage {
        CheckpointImage {
            header: ImageHeader {
                pid: 1,
                seq,
                parent_seq: parent,
                kind,
                taken_at_ns: seq,
                mechanism: "t".into(),
                node: 0,
            },
            regs: RegsRecord::default(),
            brk: 0,
            work_done: seq,
            policy: PolicyRecord { tag: 0, value: 0 },
            vmas: vec![],
            pages: pages
                .into_iter()
                .map(|(no, fill)| PageRecord::capture(no, &vec![fill; 4096]))
                .collect(),
            fds: vec![],
            files: vec![],
            sig: SigRecord::default(),
            timers: vec![],
            program: ProgramRecord::Vm {
                name: "t".into(),
                text: vec![0],
            },
        }
    }

    #[test]
    fn store_then_load_one_image() {
        let mut disk = LocalDisk::new(1 << 30);
        let c = CostModel::circa_2005();
        let image = img(1, 0, ImageKind::Full, vec![(1, 7)]);
        store_image(&mut disk, "job", &image, &c).unwrap();
        let (back, t) = load_image(&disk, "job", 1, 1, &c).unwrap();
        assert_eq!(back, image);
        assert!(t > 0);
    }

    #[test]
    fn latest_chain_reconstructs_across_incrementals() {
        let mut disk = LocalDisk::new(1 << 30);
        let c = CostModel::circa_2005();
        // Old full, new full, then two incrementals on the new full.
        for image in [
            img(1, 0, ImageKind::Full, vec![(1, 1)]),
            img(2, 0, ImageKind::Full, vec![(1, 2), (2, 2)]),
            img(3, 2, ImageKind::Incremental, vec![(2, 3)]),
            img(4, 3, ImageKind::Incremental, vec![(3, 4)]),
        ] {
            store_image(&mut disk, "job", &image, &c).unwrap();
        }
        let (full, _) = load_latest_chain(&disk, "job", 1, &c).unwrap();
        assert_eq!(full.work_done, 4, "state from the newest image");
        let fills: std::collections::BTreeMap<u64, u8> = full
            .pages
            .iter()
            .map(|p| (p.page_no, p.expand().unwrap()[0]))
            .collect();
        assert_eq!(fills[&1], 2, "from full seq 2, not stale seq 1");
        assert_eq!(fills[&2], 3);
        assert_eq!(fills[&3], 4);
    }

    #[test]
    fn missing_pid_is_not_found() {
        let disk = LocalDisk::new(1 << 30);
        let c = CostModel::circa_2005();
        assert!(matches!(
            load_latest_chain(&disk, "job", 9, &c),
            Err(ImageStoreError::Storage(StorageError::NotFound(_)))
        ));
    }

    #[test]
    fn prune_removes_older_sequences_only() {
        let mut disk = LocalDisk::new(1 << 30);
        let c = CostModel::circa_2005();
        for image in [
            img(1, 0, ImageKind::Full, vec![]),
            img(2, 1, ImageKind::Incremental, vec![]),
            img(3, 0, ImageKind::Full, vec![]),
        ] {
            store_image(&mut disk, "job", &image, &c).unwrap();
        }
        let n = prune_before(&mut disk, "job", 1, 3).unwrap();
        assert_eq!(n, 2);
        assert_eq!(disk.list().len(), 1);
        let (full, _) = load_latest_chain(&disk, "job", 1, &c).unwrap();
        assert_eq!(full.header.seq, 3);
    }

    #[test]
    fn corrupted_object_fails_decode() {
        let mut disk = LocalDisk::new(1 << 30);
        let c = CostModel::circa_2005();
        let image = img(1, 0, ImageKind::Full, vec![(1, 7)]);
        store_image(&mut disk, "job", &image, &c).unwrap();
        // Corrupt the stored bytes out-of-band.
        let key = image_key("job", 1, 1);
        let (mut bytes, _) = disk.load(&key, &c).unwrap();
        bytes[40] ^= 0xFF;
        disk.store(&key, &bytes, &c).unwrap();
        assert!(matches!(
            load_image(&disk, "job", 1, 1, &c),
            Err(ImageStoreError::Decode(_))
        ));
    }
}
