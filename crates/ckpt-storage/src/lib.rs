//! # ckpt-storage — stable storage with availability semantics
//!
//! Where a checkpoint lives determines what failures it survives. This
//! crate provides the four media of the paper's Table 1 "stable storage"
//! column — node RAM, local disk, swap partition, remote store — each with
//! a bandwidth/latency cost model and explicit fail-stop semantics
//! ([`backend::StorageClass::survives_node_loss`]), plus an image layer
//! that stores/retrieves [`ckpt_image::CheckpointImage`]s and reconstructs
//! the latest incremental chain.

pub mod backend;
pub mod images;
pub mod media;

pub use backend::{image_key, StableStorage, StorageClass, StorageError, StoreReceipt};
pub use images::{load_image, load_latest_chain, prune_before, store_image, ImageStoreError};
pub use media::{LocalDisk, RamStore, RemoteServer, RemoteStore, SwapStore};
