//! # ckpt-storage — stable storage with availability semantics
//!
//! Where a checkpoint lives determines what failures it survives. This
//! crate provides the media of the paper's Table 1 "stable storage"
//! column — node RAM, local disk, swap partition, battery-backed NVRAM,
//! remote store — each with a bandwidth/latency cost model and explicit
//! fail-stop semantics ([`backend::StorageClass::survives_node_loss`]),
//! plus an image layer that stores/retrieves
//! [`ckpt_image::CheckpointImage`]s and reconstructs the latest
//! incremental chain, and a fault-injecting decorator ([`inject`]) that
//! exposes per-store/load crash sites to the crashpoint matrix.

pub mod backend;
pub mod images;
pub mod inject;
pub mod key;
pub mod media;

pub use backend::{BatchReceipt, CodingGeometry, ReplicaManifest, StableStorage, StorageClass, StorageError, StoreReceipt};
pub use key::{ImageKey, ObjectKey, ParseKeyError};
pub use images::{
    load_chain_at, load_image, load_latest_chain, load_latest_valid_chain, prune_before, store_image,
    store_image_bytes, ChainLoad, ImageStoreError,
};
pub use inject::FaultInjectStore;
pub use media::{LocalDisk, NvramStore, RamStore, RemoteServer, RemoteStore, SwapStore};
