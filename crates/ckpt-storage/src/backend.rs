//! The stable-storage abstraction and its failure semantics.
//!
//! Table 1's "stable storage" column distinguishes systems that save
//! checkpoints `local`, `remote`, or not at all — and Section 4.1 makes the
//! fault-tolerance consequence explicit: "most store the checkpoint locally
//! instead of remotely, thus checkpoint data cannot be retrieved in case of
//! a failure of the machine". The backends here carry exactly those
//! semantics, driven by three failure events:
//!
//! * **node failure** (fail-stop): RAM contents are lost; local disk and
//!   swap become *unavailable* (the machine is down) but not erased;
//!   remote storage is unaffected;
//! * **node repair**: local media become reachable again with data intact;
//! * **power-down** (hibernation case): RAM is lost, disk and swap survive
//!   — which is why Software Suspend writes the RAM image to the swap
//!   partition.

use simos::cost::CostModel;

/// Which kind of medium a backend is.
///
/// `#[non_exhaustive]`: downstream matches must carry a `_` arm so new
/// media can be added without a breaking release.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StorageClass {
    /// RAM on the same node (Software Suspend's "standby" mode).
    Ram,
    /// The node's local disk (filesystem).
    LocalDisk,
    /// The node's swap partition (contiguous, no filesystem).
    Swap,
    /// A remote store reached over the interconnect.
    Remote,
    /// Battery-backed (or flash) non-volatile RAM on the node: RAM-class
    /// speed, survives power-down, but — like the local disk — dies with
    /// the node for retrieval purposes until the node is repaired.
    Nvram,
}

impl StorageClass {
    /// Whether checkpoints on this medium can be retrieved after the owning
    /// node fail-stops.
    pub fn survives_node_loss(self) -> bool {
        matches!(self, StorageClass::Remote)
    }

    /// Whether checkpoints survive a planned power-down of the node.
    pub fn survives_power_down(self) -> bool {
        matches!(
            self,
            StorageClass::LocalDisk
                | StorageClass::Swap
                | StorageClass::Remote
                | StorageClass::Nvram
        )
    }

    /// Volatile media lose their *contents* when power is cut (power-down,
    /// or the power loss implied by a fail-stop of the owning node).
    pub fn is_volatile(self) -> bool {
        !self.survives_power_down()
    }
}

/// Storage errors.
///
/// `#[non_exhaustive]`: downstream matches must carry a `_` arm so new
/// failure modes (as with [`StorageError::MissingChunk`]) can be added
/// without a breaking release.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StorageError {
    /// The medium is unreachable (node down, network partition).
    Unavailable,
    /// No object under this key.
    NotFound(String),
    /// Capacity exceeded.
    NoSpace { need: u64, free: u64 },
    /// A one-shot failure (dropped message, controller hiccup); retrying
    /// the same operation may succeed.
    Transient,
    /// A replicated backend could not assemble a quorum: fewer than the
    /// required number of replicas acknowledged (write) or fewer than
    /// `N - w + 1` replicas are intact (read). The operation is refused —
    /// returning stale or partial data here would be silent corruption.
    QuorumLost { acked: u32, needed: u32 },
    /// A chunk manifest referenced a content-addressed chunk that the
    /// backing store no longer holds (or holds with the wrong digest).
    /// The object is unrecoverable *as stored*; the chain loader treats
    /// this like decode failure and falls back to an older intact chain —
    /// never silent corruption.
    MissingChunk { digest: u64 },
    /// An object carried the chunk-manifest magic but failed to decode
    /// (torn manifest write, checksum mismatch). Typed detection, same
    /// fallback policy as [`StorageError::MissingChunk`].
    CorruptManifest { key: String },
    /// An erasure-coded backend found fewer than `k` intact shards at the
    /// winning version: the object cannot be reconstructed. The operation
    /// is refused — decoding from fewer than `k` shards would fabricate
    /// bytes, which is silent corruption.
    TooManyShardsLost { intact: u32, needed: u32 },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Unavailable => write!(f, "storage unavailable"),
            StorageError::NotFound(k) => write!(f, "no object {k}"),
            StorageError::NoSpace { need, free } => {
                write!(f, "no space: need {need} bytes, {free} free")
            }
            StorageError::Transient => write!(f, "transient storage failure"),
            StorageError::QuorumLost { acked, needed } => {
                write!(f, "quorum lost: {acked} of {needed} required replicas")
            }
            StorageError::MissingChunk { digest } => {
                write!(f, "missing content chunk cas/{digest:016x}")
            }
            StorageError::CorruptManifest { key } => {
                write!(f, "corrupt chunk manifest under {key}")
            }
            StorageError::TooManyShardsLost { intact, needed } => {
                write!(f, "too many shards lost: {intact} intact of {needed} needed")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Receipt for a completed store, carrying the modelled cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreReceipt {
    pub key: String,
    pub bytes: u64,
    /// Virtual time the operation took (the caller charges it).
    pub time_ns: u64,
}

/// Receipt for a committed multi-object batch ([`StableStorage::store_batch`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReceipt {
    pub objects: u64,
    pub bytes: u64,
    /// Virtual time the whole commit took (the caller charges it).
    pub time_ns: u64,
    /// Acknowledgement round-trips the commit consumed: a per-object loop
    /// pays one per object, a framed batch commit pays one per batch (per
    /// stripe, on a striped pool). This is the quantity batching exists to
    /// shrink, so receipts carry it for the scale reports to compare.
    pub ack_cycles: u64,
}

/// Erasure-coding geometry of a committed object: `k` data shards plus
/// `m` parity shards. Redundancy overhead is `(k + m) / k` instead of a
/// replicated backend's `n`; any `m` shard losses are survivable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodingGeometry {
    /// Data shards (the object splits into `k` equal pieces).
    pub k: u32,
    /// Parity shards (Reed-Solomon over GF(256)).
    pub m: u32,
}

/// Where a replicated commit landed: which replicas acknowledged, under
/// what quorum configuration, and the digest/version that identify the
/// committed frame. Non-replicated backends never produce one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaManifest {
    pub key: String,
    /// Monotonic per-key commit version (newest wins at read-quorum time).
    pub version: u64,
    /// FNV-1a digest of the committed payload (torn-frame detection).
    pub digest: u64,
    pub bytes: u64,
    /// Replica indices that acknowledged the write, ascending.
    pub acked: Vec<u32>,
    /// Replication factor N.
    pub n: u32,
    /// Write quorum w (> N/2).
    pub w: u32,
    /// Erasure-coding geometry, if the backend shards instead of
    /// mirroring. `None` means `n` full copies. Coded backends set
    /// `n = k + m` (shard-holding nodes) and `w` to the shard write
    /// quorum, so quorum arithmetic stays meaningful either way.
    pub coding: Option<CodingGeometry>,
}

/// A stable-storage backend.
pub trait StableStorage: Send {
    fn class(&self) -> StorageClass;

    /// Human-readable label for reports.
    fn label(&self) -> String;

    /// Store an object. Returns the modelled time cost.
    fn store(&mut self, key: &str, data: &[u8], cost: &CostModel)
        -> Result<StoreReceipt, StorageError>;

    /// Load an object; returns (data, modelled time).
    fn load(&self, key: &str, cost: &CostModel) -> Result<(Vec<u8>, u64), StorageError>;

    fn delete(&mut self, key: &str) -> Result<(), StorageError>;

    /// Keys currently stored (sorted). Empty if unavailable.
    fn list(&self) -> Vec<String>;

    /// Whether the medium is currently reachable.
    fn available(&self) -> bool;

    /// Total bytes currently stored.
    fn used_bytes(&self) -> u64;

    /// Fail-stop of the owning node.
    fn on_node_failure(&mut self);

    /// The owning node came back.
    fn on_node_repair(&mut self);

    /// Planned power-down of the owning node.
    fn on_power_down(&mut self);

    /// The replica manifest recorded for `key`'s last committed write, if
    /// this backend replicates. Single-copy backends return `None`.
    fn replica_manifest(&self, _key: &str) -> Option<ReplicaManifest> {
        None
    }

    /// Commit a batch of objects as one transaction: either every object
    /// lands or none does (already-stored objects are rolled back
    /// best-effort on a later failure, and the error is returned).
    ///
    /// The default loops [`StableStorage::store`] — one acknowledgement
    /// cycle per object. Backends with a cheaper group-commit path (the
    /// quorum-replicated store frames the whole batch into one
    /// admission/ack cycle per replica) override this; callers that commit
    /// a round's worth of images at once get the amortization without
    /// knowing which backend is underneath.
    fn store_batch(
        &mut self,
        objects: &[(&str, &[u8])],
        cost: &CostModel,
    ) -> Result<BatchReceipt, StorageError> {
        let mut bytes = 0u64;
        let mut time_ns = 0u64;
        let mut stored: Vec<&str> = Vec::new();
        for (key, data) in objects {
            match self.store(key, data, cost) {
                Ok(r) => {
                    bytes += r.bytes;
                    time_ns += r.time_ns;
                    stored.push(key);
                }
                Err(e) => {
                    for key in stored {
                        let _ = self.delete(key);
                    }
                    return Err(e);
                }
            }
        }
        Ok(BatchReceipt {
            objects: objects.len() as u64,
            bytes,
            time_ns,
            ack_cycles: objects.len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survival_matrix_matches_paper() {
        assert!(!StorageClass::LocalDisk.survives_node_loss());
        assert!(!StorageClass::Ram.survives_node_loss());
        assert!(!StorageClass::Swap.survives_node_loss());
        assert!(StorageClass::Remote.survives_node_loss());
        assert!(!StorageClass::Nvram.survives_node_loss());

        assert!(StorageClass::LocalDisk.survives_power_down());
        assert!(StorageClass::Swap.survives_power_down());
        assert!(!StorageClass::Ram.survives_power_down());
        assert!(StorageClass::Nvram.survives_power_down());

        assert!(StorageClass::Ram.is_volatile());
        assert!(!StorageClass::Nvram.is_volatile());
    }

    #[test]
    fn image_keys_sort_by_sequence() {
        use crate::key::ImageKey;
        let a = ImageKey::new("job", 1, 2).to_string();
        let b = ImageKey::new("job", 1, 10).to_string();
        assert!(a < b, "zero-padded sequence numbers must sort numerically");
        // The rendered keys parse back and the typed order agrees with the
        // string order the media rely on.
        let pa: ImageKey = a.parse().unwrap();
        let pb: ImageKey = b.parse().unwrap();
        assert_eq!((pa.seq, pb.seq), (2, 10));
        assert!(pa < pb, "typed order follows sequence");
    }
}
