//! Typed object keys for the stable-storage namespace.
//!
//! Three kinds of object share one key space: checkpoint images
//! (`job/pid<pid>/seq<seq:08>`), content-addressed chunks
//! (`cas/<digest:016x>`), and free-form auxiliary objects. Earlier
//! revisions passed all of them around as ad-hoc strings built by
//! a (since removed) `image_key()` helper and parsed by hand at every
//! consumer; [`ImageKey`] and
//! [`ObjectKey`] replace that with one typed namespace that round-trips
//! through `Display`/`FromStr` and orders images by `(job, pid, seq)` —
//! so lexicographic order of the rendered key equals numeric order of
//! the sequence, which the chain loader and pruner rely on.

use std::fmt;
use std::str::FromStr;

/// A checkpoint image's identity: which job, which process, which link
/// of the incremental chain.
///
/// Renders as `{job}/pid{pid}/seq{seq:08}`; the zero-padded sequence
/// keeps string sort equal to numeric sort for all `seq < 10^8`. The
/// derived `Ord` compares `(job, pid, seq)`, so images of one lineage
/// order by sequence.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ImageKey {
    pub job: String,
    pub pid: u32,
    pub seq: u64,
}

impl ImageKey {
    pub fn new(job: impl Into<String>, pid: u32, seq: u64) -> Self {
        ImageKey { job: job.into(), pid, seq }
    }

    /// The key prefix shared by every image of this `(job, pid)` lineage;
    /// `key.starts_with(&lineage_prefix(..))` selects one chain.
    pub fn lineage_prefix(job: &str, pid: u32) -> String {
        format!("{job}/pid{pid}/")
    }

    /// This image's lineage prefix.
    pub fn lineage(&self) -> String {
        Self::lineage_prefix(&self.job, self.pid)
    }

    /// The same lineage, next link of the chain.
    pub fn next(&self) -> ImageKey {
        ImageKey { job: self.job.clone(), pid: self.pid, seq: self.seq + 1 }
    }
}

impl fmt::Display for ImageKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/pid{}/seq{:08}", self.job, self.pid, self.seq)
    }
}

/// Why a string failed to parse as an [`ImageKey`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKeyError {
    pub key: String,
    pub what: &'static str,
}

impl fmt::Display for ParseKeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad image key {:?}: {}", self.key, self.what)
    }
}

impl std::error::Error for ParseKeyError {}

impl FromStr for ImageKey {
    type Err = ParseKeyError;

    /// Parses from the right so job names may themselves contain `/`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |what| ParseKeyError { key: s.to_string(), what };
        let (rest, seq_part) = s.rsplit_once('/').ok_or_else(|| err("missing seq segment"))?;
        let seq_digits = seq_part.strip_prefix("seq").ok_or_else(|| err("missing seq segment"))?;
        if seq_digits.is_empty() || !seq_digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(err("non-numeric seq"));
        }
        let seq: u64 = seq_digits.parse().map_err(|_| err("seq out of range"))?;
        let (job, pid_part) = rest.rsplit_once('/').ok_or_else(|| err("missing pid segment"))?;
        let pid_digits = pid_part.strip_prefix("pid").ok_or_else(|| err("missing pid segment"))?;
        if pid_digits.is_empty() || !pid_digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(err("non-numeric pid"));
        }
        let pid: u32 = pid_digits.parse().map_err(|_| err("pid out of range"))?;
        if job.is_empty() {
            return Err(err("empty job"));
        }
        Ok(ImageKey { job: job.to_string(), pid, seq })
    }
}

/// Any object the stable-storage layer can hold.
///
/// `ObjectKey::parse` is total: a string that is neither a well-formed
/// image key nor a chunk key is an [`ObjectKey::Other`], so existing
/// free-form keys (`"c12/img"`, scratch objects) keep working.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObjectKey {
    /// A checkpoint image (raw bytes or a chunk manifest).
    Image(ImageKey),
    /// A content-addressed chunk, keyed by its FNV-1a-64 digest:
    /// `cas/{digest:016x}`.
    Chunk { digest: u64 },
    /// Anything else.
    Other(String),
}

impl ObjectKey {
    pub fn image(job: impl Into<String>, pid: u32, seq: u64) -> Self {
        ObjectKey::Image(ImageKey::new(job, pid, seq))
    }

    pub fn chunk(digest: u64) -> Self {
        ObjectKey::Chunk { digest }
    }

    /// Total parse (never fails): chunk keys and image keys are
    /// recognized, everything else is `Other`.
    pub fn parse(s: &str) -> Self {
        if let Some(hex) = s.strip_prefix("cas/") {
            if hex.len() == 16 && hex.bytes().all(|b| b.is_ascii_hexdigit()) {
                if let Ok(digest) = u64::from_str_radix(hex, 16) {
                    return ObjectKey::Chunk { digest };
                }
            }
        }
        match s.parse::<ImageKey>() {
            Ok(ik) => ObjectKey::Image(ik),
            Err(_) => ObjectKey::Other(s.to_string()),
        }
    }

    pub fn as_image(&self) -> Option<&ImageKey> {
        match self {
            ObjectKey::Image(ik) => Some(ik),
            _ => None,
        }
    }
}

impl fmt::Display for ObjectKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectKey::Image(ik) => ik.fmt(f),
            ObjectKey::Chunk { digest } => write!(f, "cas/{digest:016x}"),
            ObjectKey::Other(s) => f.write_str(s),
        }
    }
}

impl FromStr for ObjectKey {
    type Err = std::convert::Infallible;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(ObjectKey::parse(s))
    }
}

impl From<ImageKey> for ObjectKey {
    fn from(ik: ImageKey) -> Self {
        ObjectKey::Image(ik)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_key_round_trips() {
        let k = ImageKey::new("bench/app", 7, 42);
        let s = k.to_string();
        assert_eq!(s, "bench/app/pid7/seq00000042");
        assert_eq!(s.parse::<ImageKey>().unwrap(), k);
    }

    #[test]
    fn stringly_image_key_shim_is_removed() {
        // PR 6 left a deprecated `backend::image_key(job, pid, seq) ->
        // String` shim for stragglers; every caller now builds typed keys,
        // so the shim is gone. This test documents the removal: the typed
        // constructor renders the exact string the shim used to return, so
        // any out-of-tree caller migrates by swapping the call site —
        // `image_key(j, p, s)` becomes `ImageKey::new(j, p, s).to_string()`
        // — with zero change to what lands on the storage medium.
        assert_eq!(
            ImageKey::new("job", 3, 1).to_string(),
            "job/pid3/seq00000001",
            "the shim's rendering is preserved by the typed path"
        );
    }

    #[test]
    fn image_key_rejects_garbage() {
        assert!("".parse::<ImageKey>().is_err());
        assert!("job/pid3".parse::<ImageKey>().is_err());
        assert!("job/pid3/seq".parse::<ImageKey>().is_err());
        assert!("job/pidX/seq00000001".parse::<ImageKey>().is_err());
        assert!("job/pid3/seqabc".parse::<ImageKey>().is_err());
        assert!("/pid3/seq00000001".parse::<ImageKey>().is_err());
    }

    #[test]
    fn object_key_classifies() {
        assert_eq!(
            ObjectKey::parse("cas/00000000deadbeef"),
            ObjectKey::Chunk { digest: 0xdead_beef }
        );
        assert!(matches!(ObjectKey::parse("job/pid1/seq00000003"), ObjectKey::Image(_)));
        assert!(matches!(ObjectKey::parse("c12/img"), ObjectKey::Other(_)));
        // A malformed chunk key falls through to Other, not a panic.
        assert!(matches!(ObjectKey::parse("cas/nothex"), ObjectKey::Other(_)));
    }

    #[test]
    fn chunk_key_round_trips() {
        let k = ObjectKey::chunk(0x0123_4567_89ab_cdef);
        assert_eq!(k.to_string(), "cas/0123456789abcdef");
        assert_eq!(ObjectKey::parse(&k.to_string()), k);
    }
}
