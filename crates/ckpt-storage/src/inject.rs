//! A fault-injecting decorator over any [`StableStorage`] backend.
//!
//! [`FaultInjectStore`] wraps a real medium and consults a shared
//! [`FaultHandle`] at every `store`/`load`, exposing the byte-level sites
//! the crash matrix arms:
//!
//! * `storage/<label>/store@<n>` — the n-th store on the medium. A
//!   [`Fault::TornWrite`] here persists only the first `keep_bytes` of the
//!   payload and then kills the node (the write was cut short by the
//!   crash); fail-stop kills the node before any byte lands; transient
//!   fails the one operation with [`StorageError::Transient`].
//! * `storage/<label>/load@<n>` — the n-th load. Torn writes make no sense
//!   on the read path, so any armed fault other than transient behaves as
//!   a fail-stop.
//!
//! When the handle is disabled (the default everywhere), each operation
//! adds one relaxed atomic load and then forwards — modelled costs and
//! stored bytes are untouched, so golden outputs cannot move.

use crate::backend::{StableStorage, StorageClass, StorageError, StoreReceipt};
use simos::cost::CostModel;
use simos::faultpoint::{Fault, FaultHandle};

/// Decorator injecting faults into a wrapped backend. See the module docs.
pub struct FaultInjectStore {
    inner: Box<dyn StableStorage>,
    faults: FaultHandle,
}

impl FaultInjectStore {
    pub fn new(inner: Box<dyn StableStorage>, faults: FaultHandle) -> Self {
        FaultInjectStore { inner, faults }
    }
}

impl StableStorage for FaultInjectStore {
    fn class(&self) -> StorageClass {
        self.inner.class()
    }
    fn label(&self) -> String {
        self.inner.label()
    }
    fn store(
        &mut self,
        key: &str,
        data: &[u8],
        cost: &CostModel,
    ) -> Result<StoreReceipt, StorageError> {
        if !self.faults.is_off() {
            if self.faults.node_crashed() {
                return Err(StorageError::Unavailable);
            }
            let base = format!("storage/{}/store", self.inner.label());
            match self.faults.check(&base, data.len() as u64) {
                Some(Fault::Transient) => return Err(StorageError::Transient),
                Some(Fault::FailStop) => return Err(StorageError::Unavailable),
                Some(Fault::TornWrite { keep_bytes }) => {
                    // The crash truncates the write: persist the prefix,
                    // then the node dies. The caller never learns the key —
                    // the torn object is what restart must cope with.
                    let keep = (keep_bytes as usize).min(data.len());
                    let _ = self.inner.store(key, &data[..keep], cost);
                    self.faults.set_crashed();
                    return Err(StorageError::Unavailable);
                }
                None => {}
            }
        }
        self.inner.store(key, data, cost)
    }
    fn load(&self, key: &str, cost: &CostModel) -> Result<(Vec<u8>, u64), StorageError> {
        if !self.faults.is_off() {
            if self.faults.node_crashed() {
                return Err(StorageError::Unavailable);
            }
            let base = format!("storage/{}/load", self.inner.label());
            match self.faults.check(&base, 0) {
                Some(Fault::Transient) => return Err(StorageError::Transient),
                Some(_) => {
                    // Fail-stop (torn has no read-path meaning): node dies.
                    self.faults.set_crashed();
                    return Err(StorageError::Unavailable);
                }
                None => {}
            }
        }
        self.inner.load(key, cost)
    }
    fn delete(&mut self, key: &str) -> Result<(), StorageError> {
        if !self.faults.is_off() && self.faults.node_crashed() {
            return Err(StorageError::Unavailable);
        }
        self.inner.delete(key)
    }
    fn list(&self) -> Vec<String> {
        if !self.faults.is_off() && self.faults.node_crashed() {
            return vec![];
        }
        self.inner.list()
    }
    fn available(&self) -> bool {
        if !self.faults.is_off() && self.faults.node_crashed() {
            return false;
        }
        self.inner.available()
    }
    fn used_bytes(&self) -> u64 {
        self.inner.used_bytes()
    }
    fn on_node_failure(&mut self) {
        self.inner.on_node_failure();
    }
    fn on_node_repair(&mut self) {
        self.inner.on_node_repair();
    }
    fn on_power_down(&mut self) {
        self.inner.on_power_down();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::LocalDisk;

    fn cost() -> CostModel {
        CostModel::circa_2005()
    }

    fn disk_with(faults: FaultHandle) -> FaultInjectStore {
        FaultInjectStore::new(Box::new(LocalDisk::new(1 << 30)), faults)
    }

    #[test]
    fn disabled_handle_is_transparent() {
        let mut s = disk_with(FaultHandle::disabled());
        let r = s.store("k", b"abc", &cost()).unwrap();
        assert_eq!(r.bytes, 3);
        assert_eq!(s.load("k", &cost()).unwrap().0, b"abc");
        assert_eq!(s.label(), "local-disk");
        assert_eq!(s.class(), StorageClass::LocalDisk);
    }

    #[test]
    fn recording_enumerates_store_and_load_sites_with_sizes() {
        let h = FaultHandle::recording();
        let mut s = disk_with(h.clone());
        s.store("a", &[0u8; 100], &cost()).unwrap();
        s.store("b", &[0u8; 200], &cost()).unwrap();
        s.load("a", &cost()).unwrap();
        let sites = h.sites();
        let names: Vec<&str> = sites.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "storage/local-disk/store@1",
                "storage/local-disk/store@2",
                "storage/local-disk/load@1"
            ]
        );
        assert_eq!(sites[1].bytes, 200);
    }

    #[test]
    fn torn_write_persists_prefix_and_crashes_the_node() {
        let h = FaultHandle::armed(
            "storage/local-disk/store@1",
            Fault::TornWrite { keep_bytes: 4 },
        );
        let mut s = disk_with(h.clone());
        let err = s.store("k", b"abcdefgh", &cost()).unwrap_err();
        assert_eq!(err, StorageError::Unavailable);
        assert!(h.node_crashed());
        // After "repair", the torn prefix is what the medium holds.
        h.clear_crash();
        assert_eq!(s.load("k", &cost()).unwrap().0, b"abcd");
    }

    #[test]
    fn transient_fault_fails_once_then_recovers() {
        let h = FaultHandle::armed("storage/local-disk/store@1", Fault::Transient);
        let mut s = disk_with(h.clone());
        assert_eq!(
            s.store("k", b"abc", &cost()).unwrap_err(),
            StorageError::Transient
        );
        assert!(!h.node_crashed());
        s.store("k", b"abc", &cost()).unwrap();
        assert_eq!(s.load("k", &cost()).unwrap().0, b"abc");
    }

    #[test]
    fn crashed_node_refuses_all_io() {
        let h = FaultHandle::armed("storage/local-disk/store@1", Fault::FailStop);
        let mut s = disk_with(h.clone());
        assert_eq!(
            s.store("k", b"abc", &cost()).unwrap_err(),
            StorageError::Unavailable
        );
        assert!(h.node_crashed());
        assert_eq!(s.load("k", &cost()).unwrap_err(), StorageError::Unavailable);
        assert!(!s.available());
        assert!(s.list().is_empty());
    }
}
