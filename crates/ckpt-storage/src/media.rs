//! Concrete storage backends: RAM, local disk, swap partition, and a
//! shared remote store.

use crate::backend::{StableStorage, StorageClass, StorageError, StoreReceipt};
use parking_lot::Mutex;
use simos::cost::CostModel;
use std::collections::BTreeMap;
use std::sync::Arc;

fn store_into(
    map: &mut BTreeMap<String, Vec<u8>>,
    key: &str,
    data: &[u8],
    capacity: u64,
    used: u64,
) -> Result<(), StorageError> {
    let replaced = map.get(key).map(|v| v.len() as u64).unwrap_or(0);
    let need = data.len() as u64;
    let free = capacity.saturating_sub(used - replaced);
    if need > free {
        return Err(StorageError::NoSpace { need, free });
    }
    map.insert(key.to_string(), data.to_vec());
    Ok(())
}

fn used_of(map: &BTreeMap<String, Vec<u8>>) -> u64 {
    map.values().map(|v| v.len() as u64).sum()
}

macro_rules! check_available {
    ($self:ident) => {
        if !$self.available {
            return Err(StorageError::Unavailable);
        }
    };
}

/// RAM-backed store on the node itself. Fast, but lost on node failure
/// *and* on power-down — the "standby" flavour of Software Suspend.
#[derive(Debug)]
pub struct RamStore {
    objects: BTreeMap<String, Vec<u8>>,
    capacity: u64,
    available: bool,
}

impl RamStore {
    pub fn new(capacity: u64) -> Self {
        RamStore {
            objects: BTreeMap::new(),
            capacity,
            available: true,
        }
    }
}

impl StableStorage for RamStore {
    fn class(&self) -> StorageClass {
        StorageClass::Ram
    }
    fn label(&self) -> String {
        "ram".into()
    }
    fn store(
        &mut self,
        key: &str,
        data: &[u8],
        cost: &CostModel,
    ) -> Result<StoreReceipt, StorageError> {
        check_available!(self);
        let used = used_of(&self.objects);
        store_into(&mut self.objects, key, data, self.capacity, used)?;
        Ok(StoreReceipt {
            key: key.to_string(),
            bytes: data.len() as u64,
            time_ns: (data.len() as f64 * cost.ram_store_ns_per_byte).round() as u64,
        })
    }
    fn load(&self, key: &str, cost: &CostModel) -> Result<(Vec<u8>, u64), StorageError> {
        check_available!(self);
        let data = self
            .objects
            .get(key)
            .ok_or_else(|| StorageError::NotFound(key.into()))?
            .clone();
        let t = (data.len() as f64 * cost.ram_store_ns_per_byte).round() as u64;
        Ok((data, t))
    }
    fn delete(&mut self, key: &str) -> Result<(), StorageError> {
        check_available!(self);
        self.objects
            .remove(key)
            .map(|_| ())
            .ok_or_else(|| StorageError::NotFound(key.into()))
    }
    fn list(&self) -> Vec<String> {
        if !self.available {
            return vec![];
        }
        self.objects.keys().cloned().collect()
    }
    fn available(&self) -> bool {
        self.available
    }
    fn used_bytes(&self) -> u64 {
        used_of(&self.objects)
    }
    fn on_node_failure(&mut self) {
        // A fail-stop cuts power: volatile contents are gone.
        if self.class().is_volatile() {
            self.objects.clear();
        }
        self.available = false;
    }
    fn on_node_repair(&mut self) {
        self.available = true; // but contents are gone
    }
    fn on_power_down(&mut self) {
        if self.class().is_volatile() {
            self.objects.clear();
        }
    }
}

/// The node's local disk: seek latency + streaming bandwidth. Survives
/// power-down; unreachable (but intact) while the node is failed.
#[derive(Debug)]
pub struct LocalDisk {
    objects: BTreeMap<String, Vec<u8>>,
    capacity: u64,
    available: bool,
}

impl LocalDisk {
    pub fn new(capacity: u64) -> Self {
        LocalDisk {
            objects: BTreeMap::new(),
            capacity,
            available: true,
        }
    }
}

impl StableStorage for LocalDisk {
    fn class(&self) -> StorageClass {
        StorageClass::LocalDisk
    }
    fn label(&self) -> String {
        "local-disk".into()
    }
    fn store(
        &mut self,
        key: &str,
        data: &[u8],
        cost: &CostModel,
    ) -> Result<StoreReceipt, StorageError> {
        check_available!(self);
        let used = used_of(&self.objects);
        store_into(&mut self.objects, key, data, self.capacity, used)?;
        Ok(StoreReceipt {
            key: key.to_string(),
            bytes: data.len() as u64,
            time_ns: cost.disk_latency_ns
                + (data.len() as f64 * cost.disk_ns_per_byte).round() as u64,
        })
    }
    fn load(&self, key: &str, cost: &CostModel) -> Result<(Vec<u8>, u64), StorageError> {
        check_available!(self);
        let data = self
            .objects
            .get(key)
            .ok_or_else(|| StorageError::NotFound(key.into()))?
            .clone();
        let t =
            cost.disk_latency_ns + (data.len() as f64 * cost.disk_ns_per_byte).round() as u64;
        Ok((data, t))
    }
    fn delete(&mut self, key: &str) -> Result<(), StorageError> {
        check_available!(self);
        self.objects
            .remove(key)
            .map(|_| ())
            .ok_or_else(|| StorageError::NotFound(key.into()))
    }
    fn list(&self) -> Vec<String> {
        if !self.available {
            return vec![];
        }
        self.objects.keys().cloned().collect()
    }
    fn available(&self) -> bool {
        self.available
    }
    fn used_bytes(&self) -> u64 {
        used_of(&self.objects)
    }
    fn on_node_failure(&mut self) {
        self.available = false; // data intact but unreachable
    }
    fn on_node_repair(&mut self) {
        self.available = true;
    }
    fn on_power_down(&mut self) {
        // Non-volatile: contents survive the power cycle, and the medium
        // comes back with the machine, so availability is untouched.
        if self.class().is_volatile() {
            self.objects.clear();
        }
    }
}

/// The swap partition: contiguous, one seek regardless of size — where
/// Software Suspend puts the RAM image.
#[derive(Debug)]
pub struct SwapStore {
    objects: BTreeMap<String, Vec<u8>>,
    capacity: u64,
    available: bool,
}

impl SwapStore {
    pub fn new(capacity: u64) -> Self {
        SwapStore {
            objects: BTreeMap::new(),
            capacity,
            available: true,
        }
    }
}

impl StableStorage for SwapStore {
    fn class(&self) -> StorageClass {
        StorageClass::Swap
    }
    fn label(&self) -> String {
        "swap".into()
    }
    fn store(
        &mut self,
        key: &str,
        data: &[u8],
        cost: &CostModel,
    ) -> Result<StoreReceipt, StorageError> {
        check_available!(self);
        let used = used_of(&self.objects);
        store_into(&mut self.objects, key, data, self.capacity, used)?;
        Ok(StoreReceipt {
            key: key.to_string(),
            bytes: data.len() as u64,
            time_ns: cost.disk_latency_ns
                + (data.len() as f64 * cost.swap_ns_per_byte).round() as u64,
        })
    }
    fn load(&self, key: &str, cost: &CostModel) -> Result<(Vec<u8>, u64), StorageError> {
        check_available!(self);
        let data = self
            .objects
            .get(key)
            .ok_or_else(|| StorageError::NotFound(key.into()))?
            .clone();
        let t =
            cost.disk_latency_ns + (data.len() as f64 * cost.swap_ns_per_byte).round() as u64;
        Ok((data, t))
    }
    fn delete(&mut self, key: &str) -> Result<(), StorageError> {
        check_available!(self);
        self.objects
            .remove(key)
            .map(|_| ())
            .ok_or_else(|| StorageError::NotFound(key.into()))
    }
    fn list(&self) -> Vec<String> {
        if !self.available {
            return vec![];
        }
        self.objects.keys().cloned().collect()
    }
    fn available(&self) -> bool {
        self.available
    }
    fn used_bytes(&self) -> u64 {
        used_of(&self.objects)
    }
    fn on_node_failure(&mut self) {
        self.available = false;
    }
    fn on_node_repair(&mut self) {
        self.available = true;
    }
    fn on_power_down(&mut self) {
        if self.class().is_volatile() {
            self.objects.clear();
        }
    }
}

/// Battery-backed NVRAM on the node's memory bus: RAM-class transfer speed
/// (modelled at half DRAM bandwidth for the battery-backed write path, no
/// seek), survives power-down, but — like the local disk — is unreachable
/// while the node is failed, with contents intact after repair.
#[derive(Debug)]
pub struct NvramStore {
    objects: BTreeMap<String, Vec<u8>>,
    capacity: u64,
    available: bool,
}

impl NvramStore {
    pub fn new(capacity: u64) -> Self {
        NvramStore {
            objects: BTreeMap::new(),
            capacity,
            available: true,
        }
    }

    fn xfer_ns(len: usize, cost: &CostModel) -> u64 {
        (len as f64 * cost.ram_store_ns_per_byte * 2.0).round() as u64
    }
}

impl StableStorage for NvramStore {
    fn class(&self) -> StorageClass {
        StorageClass::Nvram
    }
    fn label(&self) -> String {
        "nvram".into()
    }
    fn store(
        &mut self,
        key: &str,
        data: &[u8],
        cost: &CostModel,
    ) -> Result<StoreReceipt, StorageError> {
        check_available!(self);
        let used = used_of(&self.objects);
        store_into(&mut self.objects, key, data, self.capacity, used)?;
        Ok(StoreReceipt {
            key: key.to_string(),
            bytes: data.len() as u64,
            time_ns: Self::xfer_ns(data.len(), cost),
        })
    }
    fn load(&self, key: &str, cost: &CostModel) -> Result<(Vec<u8>, u64), StorageError> {
        check_available!(self);
        let data = self
            .objects
            .get(key)
            .ok_or_else(|| StorageError::NotFound(key.into()))?
            .clone();
        let t = Self::xfer_ns(data.len(), cost);
        Ok((data, t))
    }
    fn delete(&mut self, key: &str) -> Result<(), StorageError> {
        check_available!(self);
        self.objects
            .remove(key)
            .map(|_| ())
            .ok_or_else(|| StorageError::NotFound(key.into()))
    }
    fn list(&self) -> Vec<String> {
        if !self.available {
            return vec![];
        }
        self.objects.keys().cloned().collect()
    }
    fn available(&self) -> bool {
        self.available
    }
    fn used_bytes(&self) -> u64 {
        used_of(&self.objects)
    }
    fn on_node_failure(&mut self) {
        self.available = false; // battery holds the data; node is down
    }
    fn on_node_repair(&mut self) {
        self.available = true;
    }
    fn on_power_down(&mut self) {
        if self.class().is_volatile() {
            self.objects.clear();
        }
    }
}

/// The shared server behind any number of [`RemoteStore`] clients — e.g. a
/// checkpoint server or parallel filesystem reachable from every node.
#[derive(Debug, Default)]
pub struct RemoteServer {
    objects: Mutex<BTreeMap<String, Vec<u8>>>,
    capacity: u64,
}

impl RemoteServer {
    pub fn new(capacity: u64) -> Arc<Self> {
        Arc::new(RemoteServer {
            objects: Mutex::new(BTreeMap::new()),
            capacity,
        })
    }

    pub fn used_bytes(&self) -> u64 {
        used_of(&self.objects.lock())
    }

    pub fn keys(&self) -> Vec<String> {
        self.objects.lock().keys().cloned().collect()
    }
}

/// A node's client handle to a [`RemoteServer`]. Transfers pay network
/// latency + bandwidth; the data itself survives any single node's loss.
/// Network reachability is per-client (a failed node cannot reach the
/// server, but the server keeps its data).
#[derive(Debug, Clone)]
pub struct RemoteStore {
    server: Arc<RemoteServer>,
    available: bool,
}

impl RemoteStore {
    pub fn new(server: Arc<RemoteServer>) -> Self {
        RemoteStore {
            server,
            available: true,
        }
    }

    pub fn server(&self) -> &Arc<RemoteServer> {
        &self.server
    }
}

impl StableStorage for RemoteStore {
    fn class(&self) -> StorageClass {
        StorageClass::Remote
    }
    fn label(&self) -> String {
        "remote".into()
    }
    fn store(
        &mut self,
        key: &str,
        data: &[u8],
        cost: &CostModel,
    ) -> Result<StoreReceipt, StorageError> {
        check_available!(self);
        {
            let mut objects = self.server.objects.lock();
            let used = used_of(&objects);
            store_into(&mut objects, key, data, self.server.capacity, used)?;
        }
        Ok(StoreReceipt {
            key: key.to_string(),
            bytes: data.len() as u64,
            time_ns: cost.net_latency_ns
                + (data.len() as f64 * cost.net_ns_per_byte).round() as u64,
        })
    }
    fn load(&self, key: &str, cost: &CostModel) -> Result<(Vec<u8>, u64), StorageError> {
        check_available!(self);
        let data = self
            .server
            .objects
            .lock()
            .get(key)
            .cloned()
            .ok_or_else(|| StorageError::NotFound(key.into()))?;
        let t =
            cost.net_latency_ns + (data.len() as f64 * cost.net_ns_per_byte).round() as u64;
        Ok((data, t))
    }
    fn delete(&mut self, key: &str) -> Result<(), StorageError> {
        check_available!(self);
        self.server
            .objects
            .lock()
            .remove(key)
            .map(|_| ())
            .ok_or_else(|| StorageError::NotFound(key.into()))
    }
    fn list(&self) -> Vec<String> {
        if !self.available {
            return vec![];
        }
        self.server.keys()
    }
    fn available(&self) -> bool {
        self.available
    }
    fn used_bytes(&self) -> u64 {
        self.server.used_bytes()
    }
    fn on_node_failure(&mut self) {
        // This *client* loses connectivity; the server's data is safe.
        self.available = false;
    }
    fn on_node_repair(&mut self) {
        self.available = true;
    }
    fn on_power_down(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        CostModel::circa_2005()
    }

    fn all_media() -> Vec<Box<dyn StableStorage>> {
        let server = RemoteServer::new(1 << 30);
        vec![
            Box::new(RamStore::new(1 << 30)),
            Box::new(LocalDisk::new(1 << 30)),
            Box::new(SwapStore::new(1 << 30)),
            Box::new(NvramStore::new(1 << 30)),
            Box::new(RemoteStore::new(server)),
        ]
    }

    #[test]
    fn store_load_round_trip_all_media() {
        for mut m in all_media() {
            let r = m.store("k", b"hello", &cost()).unwrap();
            assert_eq!(r.bytes, 5);
            let (data, t) = m.load("k", &cost()).unwrap();
            assert_eq!(data, b"hello");
            assert!(
                t > 0 || matches!(m.class(), StorageClass::Ram | StorageClass::Nvram)
            );
            assert_eq!(m.list(), vec!["k".to_string()]);
            m.delete("k").unwrap();
            assert!(matches!(
                m.load("k", &cost()),
                Err(StorageError::NotFound(_))
            ));
        }
    }

    #[test]
    fn disk_pays_seek_latency_remote_pays_net_latency() {
        let c = cost();
        let mut disk = LocalDisk::new(1 << 30);
        let r = disk.store("k", &[0u8; 1024], &c).unwrap();
        assert!(r.time_ns >= c.disk_latency_ns);
        let mut remote = RemoteStore::new(RemoteServer::new(1 << 30));
        let r = remote.store("k", &[0u8; 1024], &c).unwrap();
        assert!(r.time_ns >= c.net_latency_ns);
        assert!(r.time_ns < c.disk_latency_ns, "2005 network beats a disk seek");
    }

    #[test]
    fn large_transfer_remote_beats_local_disk_in_2005() {
        // The feasibility point of [31]: with a 250 MB/s interconnect and a
        // 50 MB/s disk, remote checkpointing is faster than local.
        let c = cost();
        let data = vec![1u8; 16 << 20];
        let mut disk = LocalDisk::new(1 << 30);
        let mut remote = RemoteStore::new(RemoteServer::new(1 << 30));
        let td = disk.store("k", &data, &c).unwrap().time_ns;
        let tr = remote.store("k", &data, &c).unwrap().time_ns;
        assert!(tr < td);
    }

    #[test]
    fn node_failure_semantics() {
        let server = RemoteServer::new(1 << 30);
        let mut ram = RamStore::new(1 << 30);
        let mut disk = LocalDisk::new(1 << 30);
        let mut remote = RemoteStore::new(server.clone());
        let c = cost();
        ram.store("k", b"x", &c).unwrap();
        disk.store("k", b"x", &c).unwrap();
        remote.store("k", b"x", &c).unwrap();

        ram.on_node_failure();
        disk.on_node_failure();
        remote.on_node_failure();

        // Everything unreachable while the node is down.
        assert!(matches!(ram.load("k", &c), Err(StorageError::Unavailable)));
        assert!(matches!(disk.load("k", &c), Err(StorageError::Unavailable)));
        assert!(matches!(
            remote.load("k", &c),
            Err(StorageError::Unavailable)
        ));
        // But the remote server still has the object — another node's
        // client can fetch it (the whole point of remote checkpointing).
        let other = RemoteStore::new(server);
        assert_eq!(other.load("k", &c).unwrap().0, b"x");

        ram.on_node_repair();
        disk.on_node_repair();
        // RAM contents were lost; disk contents survive the outage.
        assert!(matches!(ram.load("k", &c), Err(StorageError::NotFound(_))));
        assert_eq!(disk.load("k", &c).unwrap().0, b"x");
    }

    #[test]
    fn power_down_semantics() {
        let c = cost();
        let mut ram = RamStore::new(1 << 30);
        let mut swap = SwapStore::new(1 << 30);
        ram.store("k", b"x", &c).unwrap();
        swap.store("k", b"x", &c).unwrap();
        ram.on_power_down();
        swap.on_power_down();
        assert!(matches!(ram.load("k", &c), Err(StorageError::NotFound(_))));
        assert_eq!(swap.load("k", &c).unwrap().0, b"x", "hibernation image survives");
    }

    /// Every media class must honor the failure-event contract implied by
    /// its [`StorageClass`]: node failure makes the medium unreachable and
    /// destroys volatile contents; repair restores reachability with
    /// non-volatile contents intact; power-down destroys volatile contents
    /// only and never changes availability.
    #[test]
    fn failure_event_semantics_per_media_class() {
        let c = cost();
        for mut m in all_media() {
            let class = m.class();
            let label = m.label();

            // --- power-down: availability unchanged, volatile data gone.
            m.store("k", b"x", &c).unwrap();
            m.on_power_down();
            assert!(m.available(), "{label}: power-down must not mark unavailable");
            let after_pd = m.load("k", &c);
            if class.survives_power_down() {
                assert_eq!(after_pd.unwrap().0, b"x", "{label}: lost data on power-down");
            } else {
                assert!(
                    matches!(after_pd, Err(StorageError::NotFound(_))),
                    "{label}: volatile medium kept data across power-down"
                );
            }

            // --- node failure: unreachable while down...
            m.store("k", b"x", &c).unwrap();
            m.on_node_failure();
            assert!(!m.available(), "{label}: node failure must mark unavailable");
            assert!(
                matches!(m.load("k", &c), Err(StorageError::Unavailable)),
                "{label}: load must fail Unavailable while the node is down"
            );
            assert!(m.list().is_empty(), "{label}: list must be empty while down");

            // --- ...and after repair, contents survive iff non-volatile.
            m.on_node_repair();
            assert!(m.available(), "{label}: repair must restore availability");
            let after_repair = m.load("k", &c);
            if class.is_volatile() {
                assert!(
                    matches!(after_repair, Err(StorageError::NotFound(_))),
                    "{label}: volatile medium kept data across node failure"
                );
            } else {
                assert_eq!(
                    after_repair.unwrap().0,
                    b"x",
                    "{label}: non-volatile medium lost data across the outage"
                );
            }
        }
    }

    #[test]
    fn nvram_is_ram_speed_class_not_disk() {
        let c = cost();
        let mut nv = NvramStore::new(1 << 30);
        let mut disk = LocalDisk::new(1 << 30);
        let data = vec![7u8; 1 << 20];
        let tn = nv.store("k", &data, &c).unwrap().time_ns;
        let td = disk.store("k", &data, &c).unwrap().time_ns;
        assert!(tn < td, "NVRAM must beat the disk (no seek, bus bandwidth)");
        // Survives power-down without so much as a blip in availability.
        nv.on_power_down();
        assert_eq!(nv.load("k", &c).unwrap().0, data);
    }

    #[test]
    fn capacity_enforced_and_replacement_accounted() {
        let c = cost();
        let mut disk = LocalDisk::new(10);
        disk.store("a", &[1u8; 6], &c).unwrap();
        assert!(matches!(
            disk.store("b", &[1u8; 6], &c),
            Err(StorageError::NoSpace { .. })
        ));
        // Replacing an object reuses its space.
        disk.store("a", &[2u8; 8], &c).unwrap();
        assert_eq!(disk.used_bytes(), 8);
    }

    #[test]
    fn remote_clients_share_one_server() {
        let server = RemoteServer::new(1 << 30);
        let mut a = RemoteStore::new(server.clone());
        let b = RemoteStore::new(server);
        a.store("k", b"shared", &cost()).unwrap();
        assert_eq!(b.load("k", &cost()).unwrap().0, b"shared");
    }
}
