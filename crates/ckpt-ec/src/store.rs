//! The erasure-coded stable-storage backend.
//!
//! An [`ErasureStore`] is one client handle onto a shared
//! [`ReplicaSet`] of `k + m` shard nodes: every object splits into `k`
//! data shards plus `m` Reed-Solomon parity shards, one shard per node.
//! A commit moves `(k + m) / k ×` the object's bytes over the wire where
//! an N-way replicated commit moves `N ×` — the bandwidth win this layer
//! exists for — while still surviving any `m` node losses.
//!
//! ## Write quorum
//!
//! A write commits when `w = k + ⌈m/2⌉` shard nodes acknowledge
//! (`w ≥ k + 1` since `m ≥ 1`). That choice makes reads safe by the same
//! argument the replicated store uses for `w > N/2`: a committed write
//! occupies at least `w` nodes, so if a read finds `≥ k` intact shards
//! at some version `v`, the at most `(k + m) − k = m < w` remaining
//! nodes cannot be hiding an entire newer commit — the reconstruction of
//! `v` is the newest committed value. Fewer than `w` acks rolls the
//! attempt back from every node that took it and refuses with the typed
//! [`StorageError::QuorumLost`].
//!
//! ## Read path
//!
//! Reads probe every node (frame digests make torn shards
//! self-identifying, exactly as on the replicated path), pick the
//! highest version any intact shard carries, and reconstruct from any
//! `k` intact shards — concatenation when all data shards survived, a
//! GF(256) matrix-inversion decode otherwise. The reassembled object is
//! verified against the object digest carried in every shard header;
//! lost/torn/stale shards are then rebuilt in place (the read-repair
//! analog, each repaired frame re-digested by its node). Fewer than `k`
//! intact shards refuses with the typed
//! [`StorageError::TooManyShardsLost`] — never silent corruption, never
//! fabricated bytes.
//!
//! ## Determinism
//!
//! All fault admission (node reachability, queued transients,
//! `simos::faultpoint` checks at `ec/s<i>/store` / `ec/s<i>/load` /
//! `ec/s<i>/batch`) and all backoff arithmetic run sequentially on the
//! calling thread in shard-node order; only pure work — parity encodes
//! and per-node frame copies — fans out on the `ckpt-par` pool behind
//! its ordered merge. Commits, manifests, costs, and counters are
//! identical at every pool width.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ckpt_par::Pool;
use ckpt_replica::{fnv1a64, Admission, Backoff, BackoffPolicy, Frame, Probe, ReplicaSet};
use ckpt_storage::{
    BatchReceipt, CodingGeometry, ReplicaManifest, StableStorage, StorageClass, StorageError,
    StoreReceipt,
};
use simos::cost::CostModel;
use simos::faultpoint::{Fault, FaultHandle};
use simos::trace::TraceHandle;

use crate::rs::RsCode;

/// Per-shard frame header: magic, geometry, shard index, then the
/// object's length and digest so any `k` shards carry enough to verify
/// the reassembled object.
const SHARD_MAGIC: [u8; 4] = *b"ECS1";
const SHARD_HEADER: usize = 24;

fn shard_frame(k: u8, m: u8, idx: u8, object_len: u64, object_digest: u64, shard: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(SHARD_HEADER + shard.len());
    f.extend_from_slice(&SHARD_MAGIC);
    f.extend_from_slice(&[k, m, idx, 0]);
    f.extend_from_slice(&object_len.to_le_bytes());
    f.extend_from_slice(&object_digest.to_le_bytes());
    f.extend_from_slice(shard);
    f
}

/// Parse a shard frame; `None` if the header is malformed or the
/// geometry disagrees with the store's code (either way the shard is
/// unusable, which the caller counts as lost).
fn parse_shard(frame: &[u8], k: usize, m: usize) -> Option<(usize, u64, u64, &[u8])> {
    if frame.len() < SHARD_HEADER || frame[..4] != SHARD_MAGIC {
        return None;
    }
    if frame[4] as usize != k || frame[5] as usize != m {
        return None;
    }
    let idx = frame[6] as usize;
    let object_len = u64::from_le_bytes(frame[8..16].try_into().unwrap());
    let object_digest = u64::from_le_bytes(frame[16..24].try_into().unwrap());
    Some((idx, object_len, object_digest, &frame[SHARD_HEADER..]))
}

/// Plain counters mirroring the [`simos::trace::ErasureAgg`] deltas this
/// store emits, readable without a recording trace handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EcStats {
    /// Objects committed (shard batches that reached write quorum).
    pub commits: u64,
    /// Per-node transient faults absorbed by backoff-retry.
    pub retries: u64,
    /// Reads that needed a matrix-inversion decode.
    pub decodes: u64,
    /// Lost/torn/stale shards rebuilt in place during reads.
    pub repairs: u64,
    /// Reads refused with [`StorageError::TooManyShardsLost`].
    pub shard_losses: u64,
    /// Writes refused with [`StorageError::QuorumLost`].
    pub quorum_losses: u64,
    /// Acknowledgement round-trips: one per single store or delete, one
    /// per entire framed shard batch.
    pub ack_cycles: u64,
}

#[derive(Default)]
struct StatCells {
    commits: AtomicU64,
    retries: AtomicU64,
    decodes: AtomicU64,
    repairs: AtomicU64,
    shard_losses: AtomicU64,
    quorum_losses: AtomicU64,
    ack_cycles: AtomicU64,
}

/// Per-node write decision, resolved sequentially before the pool
/// executes the copies (same discipline as the replicated store).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteCmd {
    Full,
    Torn { keep: usize },
    Skip,
}

/// One client handle on an erasure-coded store over `k + m` shard nodes.
pub struct ErasureStore {
    set: Arc<ReplicaSet>,
    code: RsCode,
    /// Shard write quorum `k + ⌈m/2⌉`.
    w: usize,
    backoff: BackoffPolicy,
    faults: FaultHandle,
    trace: TraceHandle,
    pool: Arc<Pool>,
    client_up: bool,
    /// Faultpoint namespace: sites render as `{site_prefix}/s<i>/{op}`.
    site_prefix: String,
    manifests: BTreeMap<String, ReplicaManifest>,
    stats: StatCells,
}

impl ErasureStore {
    /// A store over `set` (which must have exactly `k + m` nodes) with an
    /// RS(k, m) code. Fault injection defaults to off, tracing to the
    /// no-op sink, the pool to the global one.
    pub fn new(set: Arc<ReplicaSet>, k: usize, m: usize) -> Self {
        let code = RsCode::new(k, m);
        assert_eq!(
            set.len(),
            k + m,
            "shard set has {} nodes but RS({k},{m}) needs {}",
            set.len(),
            k + m
        );
        ErasureStore {
            set,
            code,
            w: k + m.div_ceil(2),
            backoff: BackoffPolicy::default(),
            faults: FaultHandle::disabled(),
            trace: TraceHandle::disabled(),
            pool: ckpt_par::global().clone(),
            client_up: true,
            site_prefix: "ec".to_string(),
            manifests: BTreeMap::new(),
            stats: StatCells::default(),
        }
    }

    /// Convenience: a fresh `k + m`-node set plus its first client handle.
    pub fn fresh(k: usize, m: usize) -> Self {
        ErasureStore::new(ReplicaSet::new(k + m), k, m)
    }

    pub fn with_faults(mut self, faults: FaultHandle) -> Self {
        self.faults = faults;
        self
    }

    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    pub fn with_pool(mut self, pool: Arc<Pool>) -> Self {
        self.pool = pool;
        self
    }

    pub fn with_backoff(mut self, backoff: BackoffPolicy) -> Self {
        self.backoff = backoff;
        self
    }

    /// Rename the faultpoint namespace (default `ec`); an EC-striped pool
    /// gives each stripe `ecstripe<j>`.
    pub fn with_site_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.site_prefix = prefix.into();
        self
    }

    pub fn k(&self) -> usize {
        self.code.k()
    }

    pub fn m(&self) -> usize {
        self.code.m()
    }

    /// Shard write quorum `k + ⌈m/2⌉`.
    pub fn write_quorum(&self) -> usize {
        self.w
    }

    pub fn replica_set(&self) -> Arc<ReplicaSet> {
        self.set.clone()
    }

    /// Counters accumulated by this client handle.
    pub fn stats(&self) -> EcStats {
        EcStats {
            commits: self.stats.commits.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            decodes: self.stats.decodes.load(Ordering::Relaxed),
            repairs: self.stats.repairs.load(Ordering::Relaxed),
            shard_losses: self.stats.shard_losses.load(Ordering::Relaxed),
            quorum_losses: self.stats.quorum_losses.load(Ordering::Relaxed),
            ack_cycles: self.stats.ack_cycles.load(Ordering::Relaxed),
        }
    }

    fn n(&self) -> usize {
        self.code.k() + self.code.m()
    }

    fn xfer_ns(&self, len: usize, cost: &CostModel) -> u64 {
        (len as f64 * cost.net_ns_per_byte).round() as u64
    }

    /// Encode an object into its `k + m` shard frames (pure; parity rows
    /// fan out on the pool).
    fn encode_frames(&self, data: &[u8]) -> Vec<Vec<u8>> {
        let shards = self.code.split(data);
        let parity = self.code.encode(&shards, &self.pool);
        let (len, digest) = (data.len() as u64, fnv1a64(data));
        let (k, m) = (self.code.k() as u8, self.code.m() as u8);
        shards
            .iter()
            .chain(parity.iter())
            .enumerate()
            .map(|(i, s)| shard_frame(k, m, i as u8, len, digest, s))
            .collect()
    }

    /// Resolve one shard node's admission + fault checks into a write
    /// decision, retrying transients on the jittered schedule. Mirrors
    /// the replicated store's sequential-admission discipline.
    fn resolve_node(&self, i: usize, op: &str, key: &str, bytes: u64) -> (WriteCmd, u64, u64) {
        let node = self.set.node(i);
        let site = format!("{}/s{i}/{op}", self.site_prefix);
        let salt = fnv1a64(key.as_bytes()) ^ (i as u64);
        let mut backoff = Backoff::new(self.backoff, salt);
        let mut retries = 0u64;
        let mut delay_ns = 0u64;
        loop {
            match node.admit() {
                Admission::Down => return (WriteCmd::Skip, retries, delay_ns),
                Admission::Transient => match backoff.next_delay_ns() {
                    Ok(d) => {
                        retries += 1;
                        delay_ns += d;
                        continue;
                    }
                    Err(_) => return (WriteCmd::Skip, retries, delay_ns),
                },
                Admission::Ok => {}
            }
            if !self.faults.is_off() {
                match self.faults.check(&site, bytes) {
                    Some(Fault::Transient) => match backoff.next_delay_ns() {
                        Ok(d) => {
                            retries += 1;
                            delay_ns += d;
                            continue;
                        }
                        Err(_) => return (WriteCmd::Skip, retries, delay_ns),
                    },
                    Some(Fault::TornWrite { keep_bytes }) if op != "load" => {
                        node.fail();
                        return (
                            WriteCmd::Torn {
                                keep: keep_bytes as usize,
                            },
                            retries,
                            delay_ns,
                        );
                    }
                    Some(_) => {
                        node.fail();
                        return (WriteCmd::Skip, retries, delay_ns);
                    }
                    None => {}
                }
            }
            return (WriteCmd::Full, retries, delay_ns);
        }
    }

    /// Highest frame version any reachable node holds for `key`.
    fn probe_max_version(&self, key: &str) -> u64 {
        self.set
            .nodes()
            .iter()
            .filter(|n| !n.is_down())
            .map(|n| match n.probe(key) {
                Probe::Missing => 0,
                Probe::Torn { version } => version,
                Probe::Valid(f) => f.version,
            })
            .max()
            .unwrap_or(0)
    }

    /// Undo the last committed write of `key` (the EC-striped pool's
    /// cross-stripe all-or-nothing needs this, exactly like the striped
    /// replica pool).
    pub(crate) fn retract_commit(&mut self, key: &str) {
        if let Some(man) = self.manifests.remove(key) {
            for i in 0..self.n() {
                self.set.node(i).drop_if_version(key, man.version);
            }
        }
    }

    fn bump(&self, commits: u64, retries: u64, decodes: u64, repairs: u64, losses: u64) {
        self.stats.commits.fetch_add(commits, Ordering::Relaxed);
        self.stats.retries.fetch_add(retries, Ordering::Relaxed);
        self.stats.decodes.fetch_add(decodes, Ordering::Relaxed);
        self.stats.repairs.fetch_add(repairs, Ordering::Relaxed);
        self.stats.shard_losses.fetch_add(losses, Ordering::Relaxed);
        self.trace.erasure(commits, decodes, repairs, losses);
    }

    fn manifest_for(&self, key: &str, version: u64, data_len: u64, digest: u64, acked: Vec<u32>) -> ReplicaManifest {
        ReplicaManifest {
            key: key.to_string(),
            version,
            digest,
            bytes: data_len,
            acked,
            n: self.n() as u32,
            w: self.w as u32,
            coding: Some(CodingGeometry {
                k: self.code.k() as u32,
                m: self.code.m() as u32,
            }),
        }
    }
}

impl StableStorage for ErasureStore {
    fn class(&self) -> StorageClass {
        StorageClass::Remote
    }

    fn label(&self) -> String {
        format!("rs({},{})", self.code.k(), self.code.m())
    }

    fn store(
        &mut self,
        key: &str,
        data: &[u8],
        cost: &CostModel,
    ) -> Result<StoreReceipt, StorageError> {
        let r = self.store_batch(&[(key, data)], cost)?;
        Ok(StoreReceipt {
            key: key.to_string(),
            bytes: r.bytes,
            time_ns: r.time_ns,
        })
    }

    fn load(&self, key: &str, cost: &CostModel) -> Result<(Vec<u8>, u64), StorageError> {
        if !self.client_up {
            return Err(StorageError::Unavailable);
        }
        let (k, m, n) = (self.code.k(), self.code.m(), self.n());

        // Sequential probe of every shard node, in node order.
        let mut total_retries = 0u64;
        let mut backoff_ns = 0u64;
        let mut down = 0usize;
        let mut frames: Vec<Option<Frame>> = vec![None; n];
        for (i, slot) in frames.iter_mut().enumerate() {
            let (cmd, r, d) = self.resolve_node(i, "load", key, 0);
            total_retries += r;
            backoff_ns += d;
            if cmd != WriteCmd::Full {
                down += 1;
                continue;
            }
            match self.set.node(i).probe(key) {
                Probe::Valid(f) => *slot = Some(f),
                Probe::Torn { .. } | Probe::Missing => {}
            }
        }

        let winner = frames
            .iter()
            .flatten()
            .map(|f| f.version)
            .max()
            .unwrap_or(0);
        if winner == 0 {
            // No node has ever seen this key — unless so many are down
            // that a committed shard set could be hiding on them.
            let refused = down > n - self.w;
            self.bump(0, total_retries, 0, 0, u64::from(refused));
            return if refused {
                Err(StorageError::TooManyShardsLost {
                    intact: 0,
                    needed: k as u32,
                })
            } else {
                Err(StorageError::NotFound(key.to_string()))
            };
        }

        // Tombstone wins: the newest commit is a delete marker. Repair it
        // onto every reachable lagging node so the key can't resurrect.
        if frames
            .iter()
            .flatten()
            .any(|f| f.version == winner && f.tombstone)
        {
            let lagging: Vec<usize> = (0..n)
                .filter(|&i| !self.set.node(i).is_down())
                .filter(|&i| !matches!(&frames[i], Some(f) if f.version == winner))
                .collect();
            let repairs = lagging.len() as u64;
            for i in lagging {
                self.set.node(i).put_tombstone(key, winner);
            }
            self.bump(0, total_retries, 0, repairs, 0);
            return Err(StorageError::NotFound(key.to_string()));
        }

        // Collect the intact shards of the winning version. A frame whose
        // header is malformed or whose shard index disagrees with its
        // node counts as lost — it cannot be trusted into the decode.
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; n];
        let mut object_len = 0u64;
        let mut object_digest = 0u64;
        let mut shard_frame_len = 0usize;
        let mut intact = 0usize;
        for i in 0..n {
            let Some(f) = &frames[i] else { continue };
            if f.version != winner {
                continue;
            }
            if let Some((idx, olen, odig, shard)) = parse_shard(&f.data, k, m) {
                if idx == i {
                    shards[i] = Some(shard.to_vec());
                    object_len = olen;
                    object_digest = odig;
                    shard_frame_len = f.data.len();
                    intact += 1;
                }
            }
        }
        if intact < k {
            self.bump(0, total_retries, 0, 0, 1);
            return Err(StorageError::TooManyShardsLost {
                intact: intact as u32,
                needed: k as u32,
            });
        }

        // Reconstruct: concatenation when all data shards survived, a
        // matrix-inversion decode otherwise.
        let needs_decode = (0..k).any(|i| shards[i].is_none());
        let full = self
            .code
            .reconstruct(&shards)
            .expect("intact >= k shards reconstruct");
        let object = self.code.join(&full, object_len as usize);
        if fnv1a64(&object) != object_digest {
            // The shard set is internally inconsistent (can only happen
            // if the medium was damaged beyond what frame digests catch).
            // Refuse — returning the reassembly would be silent corruption.
            self.bump(0, total_retries, 0, 0, 1);
            return Err(StorageError::TooManyShardsLost {
                intact: intact as u32,
                needed: k as u32,
            });
        }

        // Read-repair: rebuild the proper shard frame, at the winning
        // version, on every reachable node that doesn't hold it. Pure
        // copies — fan out on the pool; each node re-digests its frame.
        let lagging: Vec<usize> = (0..n)
            .filter(|&i| !self.set.node(i).is_down())
            .filter(|&i| shards[i].is_none())
            .collect();
        let repairs = lagging.len() as u64;
        if !lagging.is_empty() {
            let (kb, mb) = (k as u8, m as u8);
            let set = self.set.clone();
            let full = &full;
            self.pool.par_map_ordered(lagging, || (), |_, _, i| {
                let frame = shard_frame(kb, mb, i as u8, object_len, object_digest, &full[i]);
                set.node(i).put(key, winner, &frame);
            });
        }

        // k shard frames cross the wire to serve the read, plus one per
        // repaired node to rebuild it.
        let time_ns = cost.net_latency_ns
            + self.xfer_ns(shard_frame_len, cost) * (k as u64 + repairs)
            + backoff_ns;
        self.bump(0, total_retries, u64::from(needs_decode), repairs, 0);
        Ok((object, time_ns))
    }

    fn delete(&mut self, key: &str) -> Result<(), StorageError> {
        if !self.client_up {
            return Err(StorageError::Unavailable);
        }
        let version = self.probe_max_version(key) + 1;
        let mut acked = 0usize;
        let mut total_retries = 0u64;
        for i in 0..self.n() {
            // Same admission/retry path as the replicated store's delete:
            // no payload to tear, so no faultpoint site is consulted.
            let node = self.set.node(i);
            let salt = fnv1a64(key.as_bytes()) ^ (i as u64) ^ 0xde1e;
            let mut backoff = Backoff::new(self.backoff, salt);
            loop {
                match node.admit() {
                    Admission::Down => break,
                    Admission::Transient => {
                        if backoff.next_delay_ns().is_err() {
                            break;
                        }
                        total_retries += 1;
                        continue;
                    }
                    Admission::Ok => {
                        node.put_tombstone(key, version);
                        acked += 1;
                        break;
                    }
                }
            }
        }
        self.stats.ack_cycles.fetch_add(1, Ordering::Relaxed);
        if acked < self.w {
            self.stats.quorum_losses.fetch_add(1, Ordering::Relaxed);
            self.bump(0, total_retries, 0, 0, 0);
            return Err(StorageError::QuorumLost {
                acked: acked as u32,
                needed: self.w as u32,
            });
        }
        self.manifests.remove(key);
        self.bump(0, total_retries, 0, 0, 0);
        Ok(())
    }

    fn list(&self) -> Vec<String> {
        if !self.client_up {
            return Vec::new();
        }
        let mut keys: Vec<String> = self
            .set
            .nodes()
            .iter()
            .filter(|n| !n.is_down())
            .flat_map(|n| n.keys())
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }

    fn available(&self) -> bool {
        self.client_up && self.set.reachable() >= self.w
    }

    fn used_bytes(&self) -> u64 {
        // Physical occupancy: the object spreads over the nodes, so the
        // sum — not the max — is one logical copy's coded footprint.
        self.set
            .nodes()
            .iter()
            .filter(|n| !n.is_down())
            .map(|n| n.used_bytes())
            .sum()
    }

    fn on_node_failure(&mut self) {
        // The *client's* node fail-stopped; the shard nodes are elsewhere.
        self.client_up = false;
    }

    fn on_node_repair(&mut self) {
        self.client_up = true;
    }

    fn on_power_down(&mut self) {
        // Remote media are unaffected by the client node's power state.
    }

    fn replica_manifest(&self, key: &str) -> Option<ReplicaManifest> {
        self.manifests.get(key).cloned()
    }

    /// Framed batched shard commit: each node receives ONE wire frame
    /// holding its shard of every object in the batch — one admission /
    /// retry / acknowledgement cycle per node for the whole batch
    /// (`ack_cycles: 1`), the same amortization as the replicated batch
    /// path but at `(k + m) / k ×` the payload bytes instead of `N ×`.
    /// Torn writes persist a frame *prefix* with per-object semantics;
    /// fewer than `w` full frames rolls every object back.
    fn store_batch(
        &mut self,
        objects: &[(&str, &[u8])],
        cost: &CostModel,
    ) -> Result<BatchReceipt, StorageError> {
        if !self.client_up {
            return Err(StorageError::Unavailable);
        }
        if objects.is_empty() {
            return Ok(BatchReceipt {
                objects: 0,
                bytes: 0,
                time_ns: 0,
                ack_cycles: 0,
            });
        }
        let n = self.n();

        let versions: Vec<u64> = objects
            .iter()
            .map(|(k, _)| self.probe_max_version(k) + 1)
            .collect();

        // Encode every object up front (pure; parity rows fan out on the
        // pool per object): per_object[j][i] is object j's frame on node i.
        let per_object: Vec<Vec<Vec<u8>>> = objects
            .iter()
            .map(|(_, d)| self.encode_frames(d))
            .collect();

        // Frame layout offsets, identical on every node because shard
        // frames of one object are equal-length: 16-byte frame header,
        // then records of 20-byte header + key + shard payload. The
        // offsets decide what a torn write leaves behind.
        const FRAME_HEADER: u64 = 16;
        const RECORD_HEADER: u64 = 20;
        let mut payload_at: Vec<(u64, u64)> = Vec::with_capacity(objects.len());
        let mut off = FRAME_HEADER;
        for (j, (key, _)) in objects.iter().enumerate() {
            let plen = per_object[j][0].len() as u64;
            off += RECORD_HEADER + key.len() as u64;
            payload_at.push((off, off + plen));
            off += plen;
        }
        let frame_bytes = off;

        // Phase 1 (sequential, node order): ONE admission + fault-check
        // + retry/backoff cycle per node for the entire batch.
        let batch_id = format!("batch/{}+{}", objects[0].0, objects.len());
        let mut total_retries = 0u64;
        let mut backoff_ns = 0u64;
        let cmds: Vec<(usize, WriteCmd)> = (0..n)
            .map(|i| {
                let (cmd, r, d) = self.resolve_node(i, "batch", &batch_id, frame_bytes);
                total_retries += r;
                backoff_ns += d;
                (i, cmd)
            })
            .collect();

        // Pre-write snapshots: the frame each writing node holds under
        // each key *before* the batch fans out. `put` replaces a node's
        // frame in place, so a failed quorum needs these to roll back to
        // the committed state instead of leaving the node empty — losing
        // old shards on an overwrite that also failed to commit would
        // turn a transient outage into data loss once `k` nodes took it.
        let priors: Vec<Vec<Option<Frame>>> = cmds
            .iter()
            .map(|(i, cmd)| {
                if *cmd == WriteCmd::Skip {
                    Vec::new()
                } else {
                    objects
                        .iter()
                        .map(|(key, _)| self.set.node(*i).snapshot_frame(key))
                        .collect()
                }
            })
            .collect();

        // Phase 2 (pool fan-out): pure copies, one node per work item.
        let set = self.set.clone();
        let per_object = &per_object;
        let payload_at = &payload_at;
        self.pool.par_map_ordered(
            cmds.clone(),
            || (),
            |_, _, (i, cmd)| match cmd {
                WriteCmd::Full => {
                    for (j, (key, _)) in objects.iter().enumerate() {
                        set.node(i).put(key, versions[j], &per_object[j][i]);
                    }
                }
                WriteCmd::Torn { keep } => {
                    let keep = keep as u64;
                    for (j, (key, _)) in objects.iter().enumerate() {
                        let (ps, pe) = payload_at[j];
                        let record_start = ps - RECORD_HEADER - key.len() as u64;
                        if keep >= pe {
                            set.node(i).put(key, versions[j], &per_object[j][i]);
                        } else if keep > record_start {
                            let kept = keep.saturating_sub(ps) as usize;
                            set.node(i).put_torn(key, versions[j], &per_object[j][i], kept);
                        }
                    }
                }
                WriteCmd::Skip => {}
            },
        );

        let acked: Vec<u32> = cmds
            .iter()
            .filter(|(_, c)| matches!(c, WriteCmd::Full))
            .map(|(i, _)| *i as u32)
            .collect();
        let xfer: u64 = cmds
            .iter()
            .map(|(_, c)| match c {
                WriteCmd::Full => self.xfer_ns(frame_bytes as usize, cost),
                WriteCmd::Torn { keep } => {
                    self.xfer_ns((*keep as u64).min(frame_bytes) as usize, cost)
                }
                WriteCmd::Skip => 0,
            })
            .sum();
        let time_ns = cost.net_latency_ns + xfer + backoff_ns;
        self.stats.ack_cycles.fetch_add(1, Ordering::Relaxed);

        if acked.len() < self.w {
            // All-or-nothing: peel every object's shards back off the
            // nodes that took them (torn prefixes included — their nodes
            // are down, but the rollback keeps the traffic counter honest
            // when they come back) and reinstate each node's pre-write
            // frame, so a refused overwrite leaves the previously
            // committed shard set exactly where it was.
            for (idx, (i, cmd)) in cmds.iter().enumerate() {
                if *cmd == WriteCmd::Skip {
                    continue;
                }
                for (j, (key, _)) in objects.iter().enumerate() {
                    self.set
                        .node(*i)
                        .rollback_to(key, versions[j], priors[idx][j].clone());
                }
            }
            self.stats.quorum_losses.fetch_add(1, Ordering::Relaxed);
            self.bump(0, total_retries, 0, 0, 0);
            return Err(StorageError::QuorumLost {
                acked: acked.len() as u32,
                needed: self.w as u32,
            });
        }

        let mut payload_bytes = 0u64;
        for (j, (key, d)) in objects.iter().enumerate() {
            payload_bytes += d.len() as u64;
            let man = self.manifest_for(key, versions[j], d.len() as u64, fnv1a64(d), acked.clone());
            self.manifests.insert(key.to_string(), man);
        }
        self.bump(objects.len() as u64, total_retries, 0, 0, 0);
        Ok(BatchReceipt {
            objects: objects.len() as u64,
            bytes: payload_bytes,
            time_ns,
            ack_cycles: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        CostModel::circa_2005()
    }

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn commit_shards_across_all_nodes_and_reads_back() {
        let mut s = ErasureStore::fresh(4, 2);
        let data = payload(4096);
        let r = s.store("j/pid1/seq1", &data, &cost()).unwrap();
        assert_eq!(r.bytes, 4096);
        let man = s.replica_manifest("j/pid1/seq1").unwrap();
        assert_eq!(man.coding, Some(CodingGeometry { k: 4, m: 2 }));
        assert_eq!((man.n, man.w), (6, 5));
        assert_eq!(man.acked.len(), 6);
        let (bytes, _) = s.load("j/pid1/seq1", &cost()).unwrap();
        assert_eq!(bytes, data);
        assert_eq!(s.stats().commits, 1);
        assert_eq!(s.stats().decodes, 0, "all data shards intact: no decode");
    }

    #[test]
    fn coded_commit_ingests_a_fraction_of_replicated_bytes() {
        let data = payload(64 * 1024);
        let mut ec = ErasureStore::fresh(4, 2);
        ec.store("k", &data, &cost()).unwrap();
        let coded = ec.replica_set().bytes_ingested();

        let mut rep = ckpt_replica::ReplicatedStore::fresh(3, 2);
        rep.store("k", &data, &cost()).unwrap();
        let mirrored = rep.replica_set().bytes_ingested();

        // RS(4,2) moves 1.5x the payload (+ tiny headers); replication
        // moves 3x. The coded path must land at or under 0.55x.
        assert!(
            (coded as f64) < 0.55 * mirrored as f64,
            "coded {coded} vs mirrored {mirrored}"
        );
    }

    #[test]
    fn survives_any_m_losses_and_refuses_beyond() {
        let data = payload(10_000);
        for lost in 1..=2usize {
            let mut s = ErasureStore::fresh(4, 2);
            s.store("k", &data, &cost()).unwrap();
            for i in 0..lost {
                s.replica_set().node(i).fail();
            }
            let (bytes, _) = s.load("k", &cost()).unwrap();
            assert_eq!(bytes, data, "lost {lost} nodes");
        }
        let mut s = ErasureStore::fresh(4, 2);
        s.store("k", &data, &cost()).unwrap();
        for i in 0..3 {
            s.replica_set().node(i).fail();
        }
        assert_eq!(
            s.load("k", &cost()),
            Err(StorageError::TooManyShardsLost { intact: 3, needed: 4 })
        );
    }

    #[test]
    fn read_repair_rebuilds_dropped_and_torn_shards() {
        let data = payload(5000);
        let mut s = ErasureStore::fresh(4, 2);
        s.store("k", &data, &cost()).unwrap();
        let set = s.replica_set();
        set.node(1).drop_key("k");
        set.node(4).corrupt_key("k");
        let (bytes, _) = s.load("k", &cost()).unwrap();
        assert_eq!(bytes, data);
        assert_eq!(s.stats().repairs, 2);
        assert_eq!(s.stats().decodes, 1, "a data shard was lost: decode path");
        // Both repaired shards verify by digest on a fresh probe.
        for i in [1usize, 4] {
            assert!(
                matches!(set.node(i).probe("k"), Probe::Valid(_)),
                "node {i} not repaired intact"
            );
        }
        // And the next read is repair-free.
        s.load("k", &cost()).unwrap();
        assert_eq!(s.stats().repairs, 2);
    }

    #[test]
    fn write_quorum_miss_rolls_the_shards_back() {
        let mut s = ErasureStore::fresh(4, 2);
        // w = 5 of 6: two nodes down refuse the commit.
        s.replica_set().node(0).fail();
        s.replica_set().node(1).fail();
        let err = s.store("k", &payload(256), &cost()).unwrap_err();
        assert!(matches!(err, StorageError::QuorumLost { acked: 4, needed: 5 }));
        // Nothing leaked onto the four nodes that took shards.
        assert_eq!(s.replica_set().bytes_ingested(), 0);
        s.replica_set().node(0).repair();
        s.replica_set().node(1).repair();
        assert!(matches!(s.load("k", &cost()), Err(StorageError::NotFound(_))));
    }

    #[test]
    fn delete_tombstones_and_reads_refuse_afterward() {
        let mut s = ErasureStore::fresh(4, 2);
        s.store("k", &payload(100), &cost()).unwrap();
        s.delete("k").unwrap();
        assert!(matches!(s.load("k", &cost()), Err(StorageError::NotFound(_))));
        assert!(s.list().is_empty());
    }

    #[test]
    fn batch_commit_is_one_ack_cycle_and_all_or_nothing() {
        let mut s = ErasureStore::fresh(4, 2);
        let objects: Vec<(String, Vec<u8>)> = (0..8)
            .map(|i| (format!("o/{i}"), payload(300 + i * 17)))
            .collect();
        let refs: Vec<(&str, &[u8])> = objects
            .iter()
            .map(|(k, d)| (k.as_str(), d.as_slice()))
            .collect();
        let r = s.store_batch(&refs, &cost()).unwrap();
        assert_eq!((r.objects, r.ack_cycles), (8, 1));
        for (k, d) in &objects {
            assert_eq!(&s.load(k, &cost()).unwrap().0, d);
        }

        // Quorum miss: the whole batch disappears.
        let mut s2 = ErasureStore::fresh(4, 2);
        s2.replica_set().node(2).fail();
        s2.replica_set().node(3).fail();
        assert!(s2.store_batch(&refs, &cost()).is_err());
        s2.replica_set().node(2).repair();
        s2.replica_set().node(3).repair();
        for (k, _) in &objects {
            assert!(
                matches!(s2.load(k, &cost()), Err(StorageError::NotFound(_))),
                "object {k} leaked from the aborted batch"
            );
        }
        assert_eq!(s2.replica_set().bytes_ingested(), 0);
    }

    #[test]
    fn commit_latency_beats_equal_survivability_replication() {
        // RS(4,2) and replicated(3,2) both survive any single fault at
        // read time, but the coded commit moves half the bytes.
        let data = payload(256 * 1024);
        let c = cost();
        let mut ec = ErasureStore::fresh(4, 2);
        let t_ec = ec.store("k", &data, &c).unwrap().time_ns;
        let mut rep = ckpt_replica::ReplicatedStore::fresh(3, 2);
        let t_rep = rep.store("k", &data, &c).unwrap().time_ns;
        assert!(
            t_ec < t_rep,
            "coded commit {t_ec}ns must beat mirrored {t_rep}ns"
        );
    }
}
