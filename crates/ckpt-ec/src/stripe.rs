//! An erasure-coded striped pool: K independent RS(k, m) shard groups
//! behind one [`StableStorage`] facade, so the sharded control plane can
//! commit its per-round batches as *coded* frames — the batching
//! amortization of the striped replica pool at `(k + m) / k ×` the bytes
//! instead of `N ×`.
//!
//! Routing reuses [`stripe_route`] verbatim (lineage-stable for image
//! keys, digest for chunks), so damage containment is identical to the
//! replicated striped pool: losing one stripe's shards takes out exactly
//! the lineages mapped to it.

use std::sync::Arc;

use ckpt_par::Pool;
use ckpt_replica::{stripe_route, BackoffPolicy, ReplicaSet, StripedReplicaSet};
use ckpt_storage::{
    BatchReceipt, ReplicaManifest, StableStorage, StorageClass, StorageError, StoreReceipt,
};
use simos::cost::CostModel;
use simos::faultpoint::FaultHandle;
use simos::trace::TraceHandle;

use crate::store::{EcStats, ErasureStore};

/// One client handle over K erasure-coded stripes: an [`ErasureStore`]
/// per stripe, each with its own faultpoint namespace
/// `ecstripe<j>/s<i>/<op>`. Single-object stores go through the framed
/// batch path (a batch of one), mirroring the replicated striped pool.
pub struct EcStripedStore {
    set: Arc<StripedReplicaSet>,
    stores: Vec<ErasureStore>,
    k: usize,
    m: usize,
}

impl EcStripedStore {
    /// A pool over `set`, whose stripes must each have `k + m` nodes.
    pub fn new(set: Arc<StripedReplicaSet>, k: usize, m: usize) -> Self {
        let stores = set
            .stripes()
            .iter()
            .enumerate()
            .map(|(j, s)| {
                ErasureStore::new(s.clone(), k, m).with_site_prefix(format!("ecstripe{j}"))
            })
            .collect();
        EcStripedStore { set, stores, k, m }
    }

    /// Convenience: a fresh `stripes`-wide pool of RS(k, m) shard groups.
    pub fn fresh(stripes: usize, k: usize, m: usize) -> Self {
        EcStripedStore::new(StripedReplicaSet::new(stripes, k + m), k, m)
    }

    pub fn with_faults(mut self, faults: FaultHandle) -> Self {
        self.stores = self
            .stores
            .into_iter()
            .map(|s| s.with_faults(faults.clone()))
            .collect();
        self
    }

    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.stores = self
            .stores
            .into_iter()
            .map(|s| s.with_trace(trace.clone()))
            .collect();
        self
    }

    pub fn with_pool(mut self, pool: Arc<Pool>) -> Self {
        self.stores = self
            .stores
            .into_iter()
            .map(|s| s.with_pool(pool.clone()))
            .collect();
        self
    }

    pub fn with_backoff(mut self, backoff: BackoffPolicy) -> Self {
        self.stores = self
            .stores
            .into_iter()
            .map(|s| s.with_backoff(backoff))
            .collect();
        self
    }

    pub fn striped_set(&self) -> Arc<StripedReplicaSet> {
        self.set.clone()
    }

    pub fn width(&self) -> usize {
        self.stores.len()
    }

    pub fn stripe_set(&self, j: usize) -> Arc<ReplicaSet> {
        self.set.stripe(j)
    }

    /// Counters summed over every stripe's client handle.
    pub fn stats(&self) -> EcStats {
        self.stores.iter().map(|s| s.stats()).fold(
            EcStats::default(),
            |a, b| EcStats {
                commits: a.commits + b.commits,
                retries: a.retries + b.retries,
                decodes: a.decodes + b.decodes,
                repairs: a.repairs + b.repairs,
                shard_losses: a.shard_losses + b.shard_losses,
                quorum_losses: a.quorum_losses + b.quorum_losses,
                ack_cycles: a.ack_cycles + b.ack_cycles,
            },
        )
    }

    /// Batched coded commit with per-stripe receipts: objects grouped by
    /// stripe, each group ONE framed shard batch; the aggregate time is
    /// the maximum stripe time (independent shard groups overlap in
    /// virtual time). All-or-nothing across stripes, exactly like the
    /// replicated striped pool.
    pub fn store_batch_detailed(
        &mut self,
        objects: &[(&str, &[u8])],
        cost: &CostModel,
    ) -> Result<Vec<(usize, BatchReceipt)>, StorageError> {
        let width = self.stores.len();
        let mut groups: Vec<Vec<(&str, &[u8])>> = vec![Vec::new(); width];
        for &(key, data) in objects {
            groups[stripe_route(key, width)].push((key, data));
        }

        let mut receipts: Vec<(usize, BatchReceipt)> = Vec::new();
        for (j, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            match self.stores[j].store_batch(group, cost) {
                Ok(r) => receipts.push((j, r)),
                Err(e) => {
                    for &(done, _) in receipts.iter().rev() {
                        for &(key, _) in &groups[done] {
                            self.stores[done].retract_commit(key);
                        }
                    }
                    return Err(e);
                }
            }
        }
        Ok(receipts)
    }
}

impl StableStorage for EcStripedStore {
    fn class(&self) -> StorageClass {
        StorageClass::Remote
    }

    fn label(&self) -> String {
        format!("ecstriped({}x rs({},{}))", self.stores.len(), self.k, self.m)
    }

    fn store(
        &mut self,
        key: &str,
        data: &[u8],
        cost: &CostModel,
    ) -> Result<StoreReceipt, StorageError> {
        let j = stripe_route(key, self.stores.len());
        let r = self.stores[j].store_batch(&[(key, data)], cost)?;
        Ok(StoreReceipt {
            key: key.to_string(),
            bytes: r.bytes,
            time_ns: r.time_ns,
        })
    }

    fn load(&self, key: &str, cost: &CostModel) -> Result<(Vec<u8>, u64), StorageError> {
        self.stores[stripe_route(key, self.stores.len())].load(key, cost)
    }

    fn delete(&mut self, key: &str) -> Result<(), StorageError> {
        let j = stripe_route(key, self.stores.len());
        self.stores[j].delete(key)
    }

    fn list(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.stores.iter().flat_map(|s| s.list()).collect();
        keys.sort();
        keys
    }

    fn available(&self) -> bool {
        self.stores.iter().all(|s| s.available())
    }

    fn used_bytes(&self) -> u64 {
        self.stores.iter().map(|s| s.used_bytes()).sum()
    }

    fn on_node_failure(&mut self) {
        for s in &mut self.stores {
            s.on_node_failure();
        }
    }

    fn on_node_repair(&mut self) {
        for s in &mut self.stores {
            s.on_node_repair();
        }
    }

    fn on_power_down(&mut self) {}

    fn replica_manifest(&self, key: &str) -> Option<ReplicaManifest> {
        self.stores[stripe_route(key, self.stores.len())].replica_manifest(key)
    }

    fn store_batch(
        &mut self,
        objects: &[(&str, &[u8])],
        cost: &CostModel,
    ) -> Result<BatchReceipt, StorageError> {
        let receipts = self.store_batch_detailed(objects, cost)?;
        Ok(BatchReceipt {
            objects: receipts.iter().map(|(_, r)| r.objects).sum(),
            bytes: receipts.iter().map(|(_, r)| r.bytes).sum(),
            time_ns: receipts.iter().map(|(_, r)| r.time_ns).max().unwrap_or(0),
            ack_cycles: receipts.iter().map(|(_, r)| r.ack_cycles).sum(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_storage::ImageKey;

    fn cost() -> CostModel {
        CostModel::circa_2005()
    }

    #[test]
    fn coded_stripes_round_trip_and_amortize() {
        let mut s = EcStripedStore::fresh(4, 4, 2);
        let objects: Vec<(String, Vec<u8>)> = (0..16)
            .map(|pid| (ImageKey::new("j", pid, 1).to_string(), vec![pid as u8; 1024]))
            .collect();
        let refs: Vec<(&str, &[u8])> = objects
            .iter()
            .map(|(k, d)| (k.as_str(), d.as_slice()))
            .collect();
        let r = s.store_batch(&refs, &cost()).unwrap();
        assert_eq!(r.objects, 16);
        assert!(r.ack_cycles <= 4, "one ack cycle per participating stripe");
        for (k, d) in &objects {
            assert_eq!(&s.load(k, &cost()).unwrap().0, d);
        }
    }

    #[test]
    fn cross_stripe_coded_batch_is_all_or_nothing() {
        let mut s = EcStripedStore::fresh(2, 4, 2);
        let objects: Vec<String> = (0..8)
            .map(|pid| ImageKey::new("j", pid, 1).to_string())
            .collect();
        // Break stripe 1's shard write quorum (w = 5 of 6).
        let set = s.striped_set();
        set.stripe(1).node(0).fail();
        set.stripe(1).node(1).fail();
        let refs: Vec<(&str, &[u8])> = objects
            .iter()
            .map(|k| (k.as_str(), b"x".as_slice()))
            .collect();
        let err = s.store_batch(&refs, &cost()).unwrap_err();
        assert!(matches!(err, StorageError::QuorumLost { .. }));
        set.stripe(1).node(0).repair();
        set.stripe(1).node(1).repair();
        for k in &objects {
            assert!(
                matches!(s.load(k, &cost()), Err(StorageError::NotFound(_))),
                "object {k} leaked out of the aborted cross-stripe coded batch"
            );
        }
    }

    #[test]
    fn damaged_stripe_refuses_typed_and_never_bleeds() {
        let mut s = EcStripedStore::fresh(2, 4, 2);
        let keys: Vec<String> = (0..8)
            .map(|pid| ImageKey::new("j", pid, 1).to_string())
            .collect();
        for k in &keys {
            s.store(k, k.as_bytes(), &cost()).unwrap();
        }
        let set = s.striped_set();
        // Lose three of stripe 0's shards: beyond m = 2.
        for i in 0..3 {
            set.stripe(0).node(i).fail();
        }
        for k in &keys {
            match set.route(k) {
                0 => assert!(
                    matches!(
                        s.load(k, &cost()),
                        Err(StorageError::TooManyShardsLost { .. })
                    ),
                    "dead stripe must refuse {k} with the typed shard error"
                ),
                _ => assert_eq!(
                    s.load(k, &cost()).unwrap().0,
                    k.as_bytes(),
                    "healthy stripe must still serve {k}"
                ),
            }
        }
        assert!(!s.available(), "a quorum-less stripe degrades the pool");
    }
}
