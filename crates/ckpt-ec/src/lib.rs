//! # ckpt-ec — erasure-coded stable storage
//!
//! The paper's survey covers diskless/parity-based checkpointing as the
//! way to buy survivability without paying for N full copies; this crate
//! is that trade made concrete. A systematic Reed-Solomon code over
//! GF(256) splits every object into `k` data shards plus `m` parity
//! shards, one shard per remote node: any `m` node losses are
//! survivable — the same single-fault (or double-fault) tolerance as
//! 3-way or 5-way mirroring — while a commit moves only `(k + m) / k ×`
//! the object's bytes instead of `N ×`. At RS(4, 2) vs replicated(3, 2)
//! that is 1.5× vs 3× — half the commit bandwidth at equal
//! single-fault survivability, which is the scaling bottleneck the
//! 10k-node sweeps expose.
//!
//! * [`gf`] — GF(256) arithmetic: compile-time log/exp tables and the
//!   word-at-a-time parity hot loop;
//! * [`rs`] — [`RsCode`], systematic Vandermonde-derived encode matrix,
//!   pool-parallel parity rows, Gauss-Jordan reconstruction from any
//!   `k` intact shards;
//! * [`store`] — [`ErasureStore`], the
//!   [`StableStorage`](ckpt_storage::StableStorage) backend: shard
//!   placement on [`ReplicaNode`](ckpt_replica::ReplicaNode)s (reusing
//!   their versioned, digest-protected frames and torn-prefix
//!   semantics), framed shard batches, digest-verified reconstruction,
//!   in-place shard repair, typed
//!   [`TooManyShardsLost`](ckpt_storage::StorageError::TooManyShardsLost);
//! * [`stripe`] — [`EcStripedStore`], K independent coded shard groups
//!   behind one facade so the sharded control plane commits coded
//!   batches.

pub mod gf;
pub mod rs;
pub mod store;
pub mod stripe;

pub use rs::{NotEnoughShards, RsCode};
pub use store::{EcStats, ErasureStore};
pub use stripe::EcStripedStore;
