//! Systematic Reed-Solomon codes over GF(256).
//!
//! The encode matrix is derived from a Vandermonde matrix `V` with
//! distinct evaluation points `x_i = i`: `E = V · inv(V_top)` where
//! `V_top` is the first `k` rows. Multiplying on the right by an
//! invertible matrix preserves the Vandermonde property that *every*
//! set of `k` rows is linearly independent (MDS), while turning the top
//! `k` rows into the identity — so data shards are stored verbatim and
//! the all-shards-intact read path is a plain concatenation.
//!
//! Decoding picks any `k` surviving rows of `E`, inverts that `k × k`
//! submatrix by Gauss-Jordan over the field, and multiplies it against
//! the surviving shards to recover the data shards exactly.
//!
//! Determinism: parity rows are computed independently (pure function of
//! the data shards) and fanned out on the `ckpt-par` pool behind its
//! ordered merge, so encoded bytes are identical at any pool width.

use crate::gf;
use ckpt_par::Pool;
use std::sync::Arc;

/// Maximum total shards: evaluation points must be distinct in GF(256).
pub const MAX_SHARDS: usize = 255;

/// A `(k, m)` systematic Reed-Solomon code: `k` data shards, `m` parity
/// shards, any `m` losses survivable.
#[derive(Debug, Clone)]
pub struct RsCode {
    k: usize,
    m: usize,
    /// `(k + m) × k` encode matrix; rows `0..k` are the identity.
    rows: Vec<Vec<u8>>,
}

/// Reconstruction was impossible: fewer than `k` shards survived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotEnoughShards {
    pub intact: usize,
    pub needed: usize,
}

impl std::fmt::Display for NotEnoughShards {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot reconstruct: {} intact shards of {} needed",
            self.intact, self.needed
        )
    }
}

impl std::error::Error for NotEnoughShards {}

/// Invert a `n × n` matrix over GF(256) by Gauss-Jordan elimination.
/// Returns `None` if singular (never happens for submatrices of an MDS
/// code's encode matrix — kept as a typed guard anyway).
fn invert(mat: &[Vec<u8>]) -> Option<Vec<Vec<u8>>> {
    let n = mat.len();
    // Augment [mat | I] and reduce the left half to the identity.
    let mut a: Vec<Vec<u8>> = mat
        .iter()
        .enumerate()
        .map(|(i, row)| {
            assert_eq!(row.len(), n);
            let mut r = row.clone();
            r.extend((0..n).map(|j| u8::from(i == j)));
            r
        })
        .collect();
    for col in 0..n {
        // Pivot: first row at/below `col` with a nonzero entry.
        let pivot = (col..n).find(|&r| a[r][col] != 0)?;
        a.swap(col, pivot);
        let pinv = gf::inv(a[col][col]);
        for x in a[col].iter_mut() {
            *x = gf::mul(*x, pinv);
        }
        for r in 0..n {
            if r != col && a[r][col] != 0 {
                let c = a[r][col];
                let (src, dst) = if r < col {
                    let (lo, hi) = a.split_at_mut(col);
                    (&hi[0], &mut lo[r])
                } else {
                    let (lo, hi) = a.split_at_mut(r);
                    (&lo[col], &mut hi[0])
                };
                for (d, &s) in dst.iter_mut().zip(src.iter()) {
                    *d ^= gf::mul(c, s);
                }
            }
        }
    }
    Some(a.into_iter().map(|row| row[n..].to_vec()).collect())
}

/// `out[i] = Σ_j mat[i][j] · shards[j]` — matrix × shard-vector product.
fn mat_apply(mat: &[Vec<u8>], shards: &[&[u8]], shard_len: usize) -> Vec<Vec<u8>> {
    mat.iter()
        .map(|row| {
            let mut out = vec![0u8; shard_len];
            for (&c, &s) in row.iter().zip(shards) {
                gf::mul_acc_slice(c, s, &mut out);
            }
            out
        })
        .collect()
}

impl RsCode {
    /// Build the `(k, m)` code. Panics on degenerate geometry.
    pub fn new(k: usize, m: usize) -> Self {
        assert!(k >= 1, "need at least one data shard");
        assert!(m >= 1, "a code with no parity protects nothing");
        assert!(k + m <= MAX_SHARDS, "at most {MAX_SHARDS} total shards");
        // Vandermonde rows: V[i][j] = i^j, evaluation points 0..k+m.
        let v: Vec<Vec<u8>> = (0..k + m)
            .map(|i| (0..k).map(|j| gf::pow(i as u8, j)).collect())
            .collect();
        let top_inv = invert(&v[..k]).expect("Vandermonde top block is invertible");
        // E = V · inv(V_top); rows 0..k become the identity.
        let rows: Vec<Vec<u8>> = v
            .iter()
            .map(|row| {
                (0..k)
                    .map(|j| {
                        let mut acc = 0u8;
                        for (x, tj) in row.iter().zip(top_inv.iter()) {
                            acc ^= gf::mul(*x, tj[j]);
                        }
                        acc
                    })
                    .collect()
            })
            .collect();
        for (i, row) in rows.iter().take(k).enumerate() {
            debug_assert!(
                row.iter().enumerate().all(|(j, &c)| c == u8::from(i == j)),
                "systematic form: row {i} must be a unit vector"
            );
        }
        RsCode { k, m, rows }
    }

    pub fn k(&self) -> usize {
        self.k
    }

    pub fn m(&self) -> usize {
        self.m
    }

    /// Shard length for an object of `len` bytes: `ceil(len / k)`, with a
    /// one-byte floor so zero-length objects still commit frames.
    pub fn shard_len(&self, len: usize) -> usize {
        (len.div_ceil(self.k)).max(1)
    }

    /// Split an object into `k` equal data shards (last one zero-padded).
    pub fn split(&self, object: &[u8]) -> Vec<Vec<u8>> {
        let sl = self.shard_len(object.len());
        (0..self.k)
            .map(|i| {
                let lo = (i * sl).min(object.len());
                let hi = ((i + 1) * sl).min(object.len());
                let mut s = object[lo..hi].to_vec();
                s.resize(sl, 0);
                s
            })
            .collect()
    }

    /// Compute the `m` parity shards from the `k` data shards, fanning
    /// the parity rows out on `pool` with ordered merge (byte-identical
    /// at any pool width — each row is a pure function of the inputs).
    pub fn encode(&self, data: &[Vec<u8>], pool: &Arc<Pool>) -> Vec<Vec<u8>> {
        assert_eq!(data.len(), self.k);
        let sl = data[0].len();
        assert!(data.iter().all(|s| s.len() == sl), "unequal shard lengths");
        pool.par_map_ordered((0..self.m).collect(), || (), |_, _, p| {
            let row = &self.rows[self.k + p];
            let mut out = vec![0u8; sl];
            for (&c, s) in row.iter().zip(data) {
                gf::mul_acc_slice(c, s, &mut out);
            }
            out
        })
    }

    /// Rebuild the full shard set from any `k` survivors.
    ///
    /// `shards` has `k + m` slots; `None` marks a lost/torn shard. On
    /// success every slot is filled (survivors pass through untouched, so
    /// reconstruction can never silently rewrite an intact shard).
    pub fn reconstruct(
        &self,
        shards: &[Option<Vec<u8>>],
    ) -> Result<Vec<Vec<u8>>, NotEnoughShards> {
        assert_eq!(shards.len(), self.k + self.m);
        let intact: Vec<usize> = (0..self.k + self.m).filter(|&i| shards[i].is_some()).collect();
        if intact.len() < self.k {
            return Err(NotEnoughShards {
                intact: intact.len(),
                needed: self.k,
            });
        }
        let sl = shards[intact[0]].as_ref().unwrap().len();
        // Fast path: all data shards intact — nothing to invert.
        let data: Vec<Vec<u8>> = if (0..self.k).all(|i| shards[i].is_some()) {
            (0..self.k).map(|i| shards[i].clone().unwrap()).collect()
        } else {
            // Invert the k×k submatrix of the first k surviving rows.
            let chosen = &intact[..self.k];
            let sub: Vec<Vec<u8>> = chosen.iter().map(|&i| self.rows[i].clone()).collect();
            let dec = invert(&sub).expect("any k rows of an MDS matrix are independent");
            let survivors: Vec<&[u8]> = chosen
                .iter()
                .map(|&i| shards[i].as_ref().unwrap().as_slice())
                .collect();
            mat_apply(&dec, &survivors, sl)
        };
        // Re-derive every missing parity shard from the recovered data.
        let mut full: Vec<Vec<u8>> = Vec::with_capacity(self.k + self.m);
        let data_refs: Vec<&[u8]> = data.iter().map(|s| s.as_slice()).collect();
        for i in 0..self.k + self.m {
            match &shards[i] {
                Some(s) => full.push(s.clone()),
                None if i < self.k => full.push(data[i].clone()),
                None => {
                    let row = std::slice::from_ref(&self.rows[i]);
                    full.push(mat_apply(row, &data_refs, sl).pop().unwrap());
                }
            }
        }
        Ok(full)
    }

    /// Reassemble the object from the `k` data shards.
    pub fn join(&self, shards: &[Vec<u8>], object_len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(object_len);
        for s in shards.iter().take(self.k) {
            out.extend_from_slice(s);
        }
        out.truncate(object_len);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(len: usize, salt: u64) -> Vec<u8> {
        (0..len)
            .map(|i| ((i as u64).wrapping_mul(31).wrapping_add(salt * 17) % 251) as u8)
            .collect()
    }

    #[test]
    fn roundtrip_with_every_single_loss_pattern() {
        let code = RsCode::new(4, 2);
        let object = pattern(1000, 1);
        let data = code.split(&object);
        let parity = code.encode(&data, ckpt_par::global());
        for lost in 0..6 {
            let mut shards: Vec<Option<Vec<u8>>> =
                data.iter().chain(parity.iter()).cloned().map(Some).collect();
            shards[lost] = None;
            let full = code.reconstruct(&shards).unwrap();
            assert_eq!(code.join(&full, object.len()), object, "lost shard {lost}");
            // Reconstruction restored the lost shard exactly.
            let expect = if lost < 4 { &data[lost] } else { &parity[lost - 4] };
            assert_eq!(&full[lost], expect, "shard {lost} not rebuilt bit-exact");
        }
    }

    #[test]
    fn losing_more_than_m_is_a_typed_refusal() {
        let code = RsCode::new(4, 2);
        let data = code.split(&pattern(256, 2));
        let parity = code.encode(&data, ckpt_par::global());
        let mut shards: Vec<Option<Vec<u8>>> =
            data.iter().chain(parity.iter()).cloned().map(Some).collect();
        shards[0] = None;
        shards[2] = None;
        shards[5] = None;
        assert_eq!(
            code.reconstruct(&shards),
            Err(NotEnoughShards { intact: 3, needed: 4 })
        );
    }

    #[test]
    fn zero_length_and_sub_k_objects_still_shard() {
        let code = RsCode::new(4, 2);
        for len in [0usize, 1, 3, 4, 5] {
            let object = pattern(len, 3);
            let data = code.split(&object);
            assert!(data.iter().all(|s| !s.is_empty()));
            let parity = code.encode(&data, ckpt_par::global());
            let mut shards: Vec<Option<Vec<u8>>> =
                data.iter().chain(parity.iter()).cloned().map(Some).collect();
            shards[0] = None;
            shards[3] = None;
            let full = code.reconstruct(&shards).unwrap();
            assert_eq!(code.join(&full, len), object, "len = {len}");
        }
    }
}
