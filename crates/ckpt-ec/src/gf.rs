//! GF(256) arithmetic for the Reed-Solomon kernel.
//!
//! The field is GF(2^8) modulo the primitive polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (0x11d), the same polynomial every
//! classical storage code uses. Log/exp tables are built at compile time
//! by a `const fn`, so lookups cost one indexed load with no runtime
//! initialization to order against. The exp table is doubled so
//! `exp[log a + log b]` never needs a `% 255`.
//!
//! The parity hot loop lives in [`mul_acc_slice`]: coefficient-1 rows
//! (the overwhelmingly common case in a systematic code's first parity
//! row) take a word-at-a-time XOR; general coefficients take one
//! 256-entry row of the multiplication table, so the inner loop is a
//! byte load, a table load, and an XOR — no log/exp arithmetic per byte.

/// The primitive polynomial, reduced form (x^8 dropped): 0x1d.
const POLY_LOW: u8 = 0x1d;

const fn build_tables() -> ([u8; 256], [u8; 512]) {
    let mut log = [0u8; 256];
    let mut exp = [0u8; 512];
    let mut x: u8 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x;
        exp[i + 255] = x;
        log[x as usize] = i as u8;
        let hi = x & 0x80 != 0;
        x <<= 1;
        if hi {
            x ^= POLY_LOW;
        }
        i += 1;
    }
    (log, exp)
}

const TABLES: ([u8; 256], [u8; 512]) = build_tables();
/// `LOG[a]` for `a != 0`; `LOG[0]` is unused (and 0).
pub const LOG: [u8; 256] = TABLES.0;
/// `EXP[i]` = generator^i, doubled so `LOG[a] + LOG[b]` indexes directly.
pub const EXP: [u8; 512] = TABLES.1;

/// Field multiply via the const tables.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Multiplicative inverse (`a != 0`).
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse in GF(256)");
    EXP[255 - LOG[a as usize] as usize]
}

/// Exponentiation: `base^e` with the usual `0^0 = 1` convention.
#[inline]
pub fn pow(base: u8, e: usize) -> u8 {
    if e == 0 {
        return 1;
    }
    if base == 0 {
        return 0;
    }
    EXP[(LOG[base as usize] as usize * e) % 255]
}

/// Russian-peasant reference multiply: no tables, bit-by-bit carryless
/// multiplication with polynomial reduction. Slow by design — the
/// property tests check the const tables against it.
pub fn mul_slow(mut a: u8, mut b: u8) -> u8 {
    let mut r = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            r ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= POLY_LOW;
        }
        b >>= 1;
    }
    r
}

/// `dst ^= src`, eight bytes at a time. This is the coefficient-1 fast
/// path of the parity loop (and of single-shard XOR repair).
#[inline]
pub fn xor_slice(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len());
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dw, sw) in d.by_ref().zip(s.by_ref()) {
        let x = u64::from_ne_bytes(dw.try_into().unwrap())
            ^ u64::from_ne_bytes(sw.try_into().unwrap());
        dw.copy_from_slice(&x.to_ne_bytes());
    }
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= sb;
    }
}

/// `dst ^= c * src` over GF(256) — the parity hot loop.
///
/// `c == 0` is a no-op, `c == 1` takes the word XOR, anything else runs
/// through a 256-entry product row built once per call (one multiply per
/// distinct source byte value, not per byte).
pub fn mul_acc_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len());
    match c {
        0 => {}
        1 => xor_slice(dst, src),
        _ => {
            let mut row = [0u8; 256];
            for (i, r) in row.iter_mut().enumerate() {
                *r = mul(c, i as u8);
            }
            for (d, &s) in dst.iter_mut().zip(src) {
                *d ^= row[s as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_agree_with_the_reference_multiply() {
        // Exhaustive: every product in the field, tables vs bit-by-bit.
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), mul_slow(a, b), "mul({a}, {b})");
            }
        }
    }

    #[test]
    fn field_axioms_hold() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a * a^-1 for a = {a}");
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
        }
        // Distributivity on a sample grid.
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(11) {
                for c in (0..=255u8).step_by(13) {
                    assert_eq!(mul(a, b ^ c), mul(a, b) ^ mul(a, c));
                }
            }
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for base in [0u8, 1, 2, 3, 0x53, 0xff] {
            let mut acc = 1u8;
            for e in 0..300 {
                assert_eq!(pow(base, e), acc, "pow({base}, {e})");
                acc = mul(acc, base);
            }
        }
    }

    #[test]
    fn mul_acc_slice_matches_scalar_loop_at_odd_lengths() {
        // Lengths straddling the 8-byte word boundary, all coefficient
        // classes (zero, one, general).
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let src: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            for c in [0u8, 1, 2, 0x1d, 0xe5] {
                let mut dst: Vec<u8> = (0..len).map(|i| (i * 101 + 3) as u8).collect();
                let expect: Vec<u8> = dst
                    .iter()
                    .zip(&src)
                    .map(|(&d, &s)| d ^ mul_slow(c, s))
                    .collect();
                mul_acc_slice(c, &src, &mut dst);
                assert_eq!(dst, expect, "c = {c}, len = {len}");
            }
        }
    }
}
