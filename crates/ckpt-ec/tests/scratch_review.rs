use ckpt_ec::ErasureStore;
use ckpt_storage::{StableStorage, StorageError};
use simos::cost::CostModel;

#[test]
fn failed_overwrite_destroys_previously_committed_value() {
    let cost = CostModel::circa_2005();
    let mut s = ErasureStore::fresh(4, 2);
    let v1 = vec![7u8; 4096];
    s.store("k", &v1, &cost).unwrap();
    // v1 is committed on all 6 nodes and readable.
    assert_eq!(s.load("k", &cost).unwrap().0, v1);

    // Two shard nodes go down; an overwrite attempt misses quorum (needs 5).
    s.replica_set().node(4).fail();
    s.replica_set().node(5).fail();
    let err = s.store("k", &vec![9u8; 4096], &cost).unwrap_err();
    assert!(matches!(err, StorageError::QuorumLost { .. }));

    // Nodes come back; the old committed value should still be readable.
    s.replica_set().node(4).repair();
    s.replica_set().node(5).repair();
    match s.load("k", &cost) {
        Ok((bytes, _)) => assert_eq!(bytes, v1, "wrong bytes back"),
        Err(e) => panic!("previously committed value lost after failed overwrite: {e}"),
    }
}
