//! Simulated remote replica nodes.
//!
//! A [`ReplicaNode`] is one independent remote store holding versioned,
//! digest-protected frames; a [`ReplicaSet`] is the N-node group a
//! [`ReplicatedStore`](crate::ReplicatedStore) fans out over. The set is
//! shared (`Arc`) so every client handle in a cluster sees the same replica
//! state — that is what makes checkpoint data survive the loss of the
//! *writing* node.
//!
//! Determinism split: reachability and transient-fault **admission** is
//! decided sequentially on the calling thread ([`ReplicaNode::admit`]
//! consumes queued transients in replica order), while the frame writes
//! themselves are pure data copies safe to fan out on the worker pool —
//! each node carries its own lock, so workers copying payloads to
//! different replicas never contend.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// FNV-1a over a byte slice — the frame digest torn writes fail.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One replica's copy of one object. `digest` is computed over the *full*
/// payload at commit time; a torn write persists a prefix of `data` under
/// the full-payload digest, so the mismatch is detectable on every read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub version: u64,
    pub digest: u64,
    /// Deletion marker: tombstones win version ordering like any other
    /// frame, so a quorum delete cannot be resurrected by a stale copy.
    pub tombstone: bool,
    pub data: Vec<u8>,
}

impl Frame {
    /// A frame is intact when its payload hashes to its recorded digest.
    pub fn intact(&self) -> bool {
        self.tombstone || fnv1a64(&self.data) == self.digest
    }
}

/// Whether a replica will accept the next operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    Ok,
    /// One queued transient fault was consumed; retrying may succeed.
    Transient,
    /// The replica is fail-stopped; it refuses traffic until repaired.
    Down,
}

/// What a reachable replica holds under a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Probe {
    Missing,
    /// Frame present but its digest does not match its payload (torn).
    Torn { version: u64 },
    /// Intact frame (tombstones included — the caller ranks by version).
    Valid(Frame),
}

#[derive(Default)]
struct NodeState {
    frames: BTreeMap<String, Frame>,
    /// Per-key digest-check memo: `(version, intact)` of the last frame
    /// probed under the key. Quorum reads and read-repair probe the same
    /// frame repeatedly (a batched round probes every key at least twice);
    /// the payload is only re-digested when the frame actually changed.
    /// Every mutator of `frames` invalidates the key's entry.
    intact_memo: BTreeMap<String, (u64, bool)>,
    /// How many full-payload digest computations this replica has done —
    /// the work the memo exists to avoid (observable, so tests can pin
    /// repeated reads at zero extra digests).
    digests_computed: u64,
    /// Monotonic payload bytes this replica has accepted over its life —
    /// the interconnect traffic a commit actually costs, which is what
    /// dedup is supposed to shrink.
    bytes_ingested: u64,
    down: bool,
    /// Deterministic fault-rate knob: the next `k` admitted operations
    /// fail transiently, in order.
    pending_transients: u32,
}

/// One simulated remote replica node.
pub struct ReplicaNode {
    index: u32,
    state: Mutex<NodeState>,
}

impl ReplicaNode {
    fn new(index: u32) -> Self {
        ReplicaNode {
            index,
            state: Mutex::new(NodeState::default()),
        }
    }

    pub fn index(&self) -> u32 {
        self.index
    }

    pub fn is_down(&self) -> bool {
        self.state.lock().down
    }

    /// Fail-stop this replica: it refuses all traffic until repaired.
    /// Frames survive (the medium is stable) — only reachability is lost.
    pub fn fail(&self) {
        self.state.lock().down = true;
    }

    pub fn repair(&self) {
        self.state.lock().down = false;
    }

    /// Queue `k` deterministic transient failures for future admissions.
    pub fn inject_transients(&self, k: u32) {
        self.state.lock().pending_transients = k;
    }

    /// Admit (or refuse) one operation. Call this sequentially, in replica
    /// order, on the planning thread — it consumes queued transients, so
    /// admission order is part of the deterministic schedule.
    pub fn admit(&self) -> Admission {
        let mut s = self.state.lock();
        if s.down {
            Admission::Down
        } else if s.pending_transients > 0 {
            s.pending_transients -= 1;
            Admission::Transient
        } else {
            Admission::Ok
        }
    }

    /// Store an intact frame. Pure data copy — admission already happened.
    pub fn put(&self, key: &str, version: u64, data: &[u8]) {
        let mut s = self.state.lock();
        s.intact_memo.remove(key);
        s.bytes_ingested += data.len() as u64;
        s.frames.insert(
            key.to_string(),
            Frame {
                version,
                digest: fnv1a64(data),
                tombstone: false,
                data: data.to_vec(),
            },
        );
    }

    /// Store a torn frame: the digest of the full payload over only its
    /// first `keep` bytes — exactly what a crash mid-write leaves behind.
    pub fn put_torn(&self, key: &str, version: u64, data: &[u8], keep: usize) {
        let mut s = self.state.lock();
        s.intact_memo.remove(key);
        s.bytes_ingested += keep.min(data.len()) as u64;
        s.frames.insert(
            key.to_string(),
            Frame {
                version,
                digest: fnv1a64(data),
                tombstone: false,
                data: data[..keep.min(data.len())].to_vec(),
            },
        );
    }

    /// Store a tombstone (quorum delete marker).
    pub fn put_tombstone(&self, key: &str, version: u64) {
        let mut s = self.state.lock();
        s.intact_memo.remove(key);
        s.frames.insert(
            key.to_string(),
            Frame {
                version,
                digest: 0,
                tombstone: true,
                data: Vec::new(),
            },
        );
    }

    /// Classify the frame under `key`. Pure read — admission is separate.
    ///
    /// The digest check is memoized per `(key, version)`: the first probe
    /// of a frame pays the full-payload FNV, repeated probes of the same
    /// committed frame are O(1). Every mutator invalidates the memo, so a
    /// rewritten or corrupted frame is always re-checked.
    pub fn probe(&self, key: &str) -> Probe {
        let mut s = self.state.lock();
        let s = &mut *s;
        let Some(f) = s.frames.get(key) else {
            return Probe::Missing;
        };
        let intact = f.tombstone
            || match s.intact_memo.get(key) {
                Some(&(v, ok)) if v == f.version => ok,
                _ => {
                    s.digests_computed += 1;
                    let ok = fnv1a64(&f.data) == f.digest;
                    s.intact_memo.insert(key.to_string(), (f.version, ok));
                    ok
                }
            };
        if intact {
            Probe::Valid(f.clone())
        } else {
            Probe::Torn { version: f.version }
        }
    }

    /// Full-payload digest computations this replica has performed so far
    /// (the memo in [`ReplicaNode::probe`] keeps this from scaling with
    /// the *read* count).
    pub fn digests_computed(&self) -> u64 {
        self.state.lock().digests_computed
    }

    /// Remove the frame under `key` outright (adversarial test hook —
    /// a real delete goes through tombstones).
    pub fn drop_key(&self, key: &str) {
        let mut s = self.state.lock();
        s.intact_memo.remove(key);
        s.frames.remove(key);
    }

    /// Remove the frame under `key` only if it is still at `version` —
    /// the rollback a failed quorum write issues to its partial acks.
    ///
    /// The dropped frame's bytes (full or torn prefix) come back out of
    /// `bytes_ingested`: the counter reports *committed* traffic, and a
    /// rolled-back write never committed. Without this, a torn frame from
    /// a failed quorum commit would inflate the C12/C16 traffic tables
    /// with attempted bytes.
    pub fn drop_if_version(&self, key: &str, version: u64) {
        let mut s = self.state.lock();
        if s.frames.get(key).is_some_and(|f| f.version == version) {
            s.intact_memo.remove(key);
            if let Some(f) = s.frames.remove(key) {
                s.bytes_ingested = s.bytes_ingested.saturating_sub(f.data.len() as u64);
            }
        }
    }

    /// Raw frame under `key`, if any — the pre-write snapshot a quorum
    /// commit takes so a failed overwrite can be rolled back to the
    /// committed state instead of destroying it. Pure read: no digest
    /// work, no counters.
    pub fn snapshot_frame(&self, key: &str) -> Option<Frame> {
        self.state.lock().frames.get(key).cloned()
    }

    /// Roll a failed quorum write back: if the frame under `key` is still
    /// at `version` (full or torn), remove it — uncommitting its bytes
    /// exactly like [`ReplicaNode::drop_if_version`] — and reinstate
    /// `prior`, the frame this node held before the failed write fanned
    /// out. The reinstated payload is *not* re-counted into
    /// `bytes_ingested`: it was charged when the prior frame originally
    /// committed and never logically left the medium.
    pub fn rollback_to(&self, key: &str, version: u64, prior: Option<Frame>) {
        let mut s = self.state.lock();
        if s.frames.get(key).is_some_and(|f| f.version == version) {
            s.intact_memo.remove(key);
            if let Some(f) = s.frames.remove(key) {
                s.bytes_ingested = s.bytes_ingested.saturating_sub(f.data.len() as u64);
            }
            if let Some(p) = prior {
                s.frames.insert(key.to_string(), p);
            }
        }
    }

    /// Truncate the frame under `key` to half its payload, leaving the
    /// digest stale (adversarial torn-copy test hook).
    pub fn corrupt_key(&self, key: &str) {
        let mut s = self.state.lock();
        s.intact_memo.remove(key);
        if let Some(f) = s.frames.get_mut(key) {
            let keep = f.data.len() / 2;
            f.data.truncate(keep);
            if f.tombstone {
                // A corrupted tombstone reads as a torn data frame.
                f.tombstone = false;
            }
        }
    }

    /// Keys of non-tombstone frames on this replica (reachability is the
    /// caller's concern — this is the raw medium contents).
    pub fn keys(&self) -> Vec<String> {
        self.state
            .lock()
            .frames
            .iter()
            .filter(|(_, f)| !f.tombstone)
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Payload bytes this replica has accepted for *committed* writes
    /// (torn writes count only what landed). Unlike [`used_bytes`], this
    /// is commit traffic, not occupancy: deletes and rewrites don't shrink
    /// it. The one thing that does is [`drop_if_version`] — the rollback
    /// of a failed quorum commit retracts the attempt's bytes, so the
    /// counter reports what committed, not what was attempted.
    ///
    /// [`used_bytes`]: ReplicaNode::used_bytes
    /// [`drop_if_version`]: ReplicaNode::drop_if_version
    pub fn bytes_ingested(&self) -> u64 {
        self.state.lock().bytes_ingested
    }

    /// Payload bytes held (tombstones are empty).
    pub fn used_bytes(&self) -> u64 {
        self.state
            .lock()
            .frames
            .values()
            .map(|f| f.data.len() as u64)
            .sum()
    }
}

/// The shared N-node replica group.
pub struct ReplicaSet {
    nodes: Vec<Arc<ReplicaNode>>,
}

impl ReplicaSet {
    pub fn new(n: usize) -> Arc<Self> {
        assert!(n >= 1, "a replica set needs at least one node");
        Arc::new(ReplicaSet {
            nodes: (0..n as u32).map(|i| Arc::new(ReplicaNode::new(i))).collect(),
        })
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn node(&self, i: usize) -> &Arc<ReplicaNode> {
        &self.nodes[i]
    }

    pub fn nodes(&self) -> &[Arc<ReplicaNode>] {
        &self.nodes
    }

    /// How many replicas are currently reachable.
    pub fn reachable(&self) -> usize {
        self.nodes.iter().filter(|n| !n.is_down()).count()
    }

    /// Total commit traffic the whole group has accepted (sum of every
    /// node's [`ReplicaNode::bytes_ingested`]).
    pub fn bytes_ingested(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_ingested()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torn_frames_fail_the_digest() {
        let set = ReplicaSet::new(3);
        let n = set.node(0);
        n.put("k", 1, b"hello world");
        assert!(matches!(n.probe("k"), Probe::Valid(_)));
        n.put_torn("k", 2, b"hello world", 5);
        assert_eq!(n.probe("k"), Probe::Torn { version: 2 });
    }

    #[test]
    fn failed_nodes_refuse_admission_but_keep_frames() {
        let set = ReplicaSet::new(3);
        let n = set.node(1);
        n.put("k", 1, b"data");
        n.fail();
        assert_eq!(n.admit(), Admission::Down);
        n.repair();
        assert_eq!(n.admit(), Admission::Ok);
        // The original frame survived the outage untouched.
        match n.probe("k") {
            Probe::Valid(f) => assert_eq!((f.version, f.data.as_slice()), (1, &b"data"[..])),
            other => panic!("expected the v1 frame back, got {other:?}"),
        }
    }

    #[test]
    fn repeated_probes_do_not_redigest() {
        let set = ReplicaSet::new(1);
        let n = set.node(0);
        n.put("k", 1, &vec![7u8; 64 * 1024]);
        assert!(matches!(n.probe("k"), Probe::Valid(_)));
        assert_eq!(n.digests_computed(), 1);
        for _ in 0..16 {
            assert!(matches!(n.probe("k"), Probe::Valid(_)));
        }
        assert_eq!(n.digests_computed(), 1, "repeated reads must hit the memo");
        // A rewrite invalidates the memo...
        n.put("k", 2, b"new");
        assert!(matches!(n.probe("k"), Probe::Valid(_)));
        assert_eq!(n.digests_computed(), 2);
        // ...and so does in-place corruption at an unchanged version.
        n.corrupt_key("k");
        assert_eq!(n.probe("k"), Probe::Torn { version: 2 });
        assert_eq!(n.digests_computed(), 3);
        // Tombstones are trivially intact: no digest work at all.
        n.put_tombstone("k", 3);
        assert!(matches!(n.probe("k"), Probe::Valid(f) if f.tombstone));
        assert_eq!(n.digests_computed(), 3);
    }

    #[test]
    fn rollback_retracts_ingested_bytes_including_torn_prefixes() {
        let set = ReplicaSet::new(2);
        let a = set.node(0);
        let b = set.node(1);
        // A full frame on one node, a torn prefix on the other — the shape
        // a crashed quorum write leaves behind.
        a.put("k", 5, &[1u8; 100]);
        b.put_torn("k", 5, &[1u8; 100], 40);
        assert_eq!(set.bytes_ingested(), 140);
        // The failed commit rolls both back: attempted bytes come out.
        a.drop_if_version("k", 5);
        b.drop_if_version("k", 5);
        assert_eq!(set.bytes_ingested(), 0, "rolled-back bytes must not count as traffic");
        // A later committed write at a different version is untouched by a
        // stale rollback.
        a.put("k", 6, &[2u8; 30]);
        a.drop_if_version("k", 5);
        assert_eq!(a.bytes_ingested(), 30);
    }

    #[test]
    fn injected_transients_are_consumed_in_admission_order() {
        let set = ReplicaSet::new(1);
        let n = set.node(0);
        n.inject_transients(2);
        assert_eq!(n.admit(), Admission::Transient);
        assert_eq!(n.admit(), Admission::Transient);
        assert_eq!(n.admit(), Admission::Ok);
    }
}
