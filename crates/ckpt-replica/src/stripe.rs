//! A striped replica pool: K independent quorum sets behind one
//! [`StableStorage`] facade.
//!
//! A single [`ReplicaSet`] serializes every commit in the cluster behind
//! one set of N replicas — at thousands of ranks per round the replica
//! pool, not the coordinator, becomes the bottleneck. Striping splits the
//! key space across K *independent* quorum sets (each its own N replicas,
//! its own write quorum, its own faultpoint namespace `stripe<k>/...`), so
//! commits to different stripes proceed in parallel in virtual time: a
//! batched round's commit cost is the *maximum* stripe time, not the sum.
//!
//! ## Stripe mapping
//!
//! Routing is by [`ObjectKey`] hash and is deliberately lineage-stable:
//!
//! * `Image` keys route by FNV-1a of the `job/pid<pid>/` lineage prefix,
//!   so every sequence number of a rank's chain lives on ONE stripe and a
//!   chain load never fans across stripes;
//! * `Chunk` keys route by their content digest (already a hash);
//! * anything else routes by FNV-1a of the whole key.
//!
//! Damage is therefore contained by construction: losing a stripe's quorum
//! takes out exactly the lineages mapped to it — objects on healthy
//! stripes stay readable, and a read of a damaged lineage gets the typed
//! [`StorageError::QuorumLost`], never bytes from a neighbouring stripe.

use std::sync::Arc;

use ckpt_par::Pool;
use ckpt_storage::{
    BatchReceipt, ObjectKey, ReplicaManifest, StableStorage, StorageClass, StorageError,
    StoreReceipt,
};
use simos::cost::CostModel;
use simos::faultpoint::FaultHandle;
use simos::trace::TraceHandle;

use crate::backoff::BackoffPolicy;
use crate::node::{fnv1a64, ReplicaSet};
use crate::store::{ReplStats, ReplicaConfig, ReplicatedStore};

/// Which stripe a key lives on: lineage hash for images, content digest
/// for chunks, whole-key hash otherwise. Pure and total — every client
/// and every restart computes the same mapping.
pub fn stripe_route(key: &str, stripes: usize) -> usize {
    debug_assert!(stripes > 0);
    let h = match ObjectKey::parse(key) {
        ObjectKey::Image(ik) => fnv1a64(ik.lineage().as_bytes()),
        ObjectKey::Chunk { digest } => digest,
        _ => fnv1a64(key.as_bytes()),
    };
    (h % stripes as u64) as usize
}

/// K independent [`ReplicaSet`]s. Shared (`Arc`) across every client
/// handle the same way a single set is.
pub struct StripedReplicaSet {
    stripes: Vec<Arc<ReplicaSet>>,
}

impl StripedReplicaSet {
    /// `k` stripes of `n` replicas each.
    pub fn new(k: usize, n: usize) -> Arc<Self> {
        assert!(k >= 1, "need at least one stripe");
        Arc::new(StripedReplicaSet {
            stripes: (0..k).map(|_| ReplicaSet::new(n)).collect(),
        })
    }

    pub fn width(&self) -> usize {
        self.stripes.len()
    }

    pub fn stripe(&self, j: usize) -> Arc<ReplicaSet> {
        self.stripes[j].clone()
    }

    pub fn stripes(&self) -> &[Arc<ReplicaSet>] {
        &self.stripes
    }

    /// The stripe `key` routes to.
    pub fn route(&self, key: &str) -> usize {
        stripe_route(key, self.stripes.len())
    }
}

/// One client handle over a striped pool: a [`ReplicatedStore`] per
/// stripe, each with its own faultpoint namespace `stripe<k>/r<i>/<op>`.
///
/// Single-object stores go through the framed batch path (a batch of one)
/// so the crash matrix exercises the same commit machinery at every
/// object count; reads and deletes route straight to the owning stripe.
pub struct StripedStore {
    set: Arc<StripedReplicaSet>,
    stores: Vec<ReplicatedStore>,
    cfg: ReplicaConfig,
}

impl StripedStore {
    pub fn new(set: Arc<StripedReplicaSet>, cfg: ReplicaConfig) -> Self {
        let stores = set
            .stripes()
            .iter()
            .enumerate()
            .map(|(j, s)| {
                ReplicatedStore::new(s.clone(), cfg).with_site_prefix(format!("stripe{j}"))
            })
            .collect();
        StripedStore { set, stores, cfg }
    }

    /// Convenience: a fresh `k`-stripe pool of `(n, w)` quorum sets plus
    /// its first client handle.
    pub fn fresh(k: usize, n: usize, w: usize) -> Self {
        StripedStore::new(StripedReplicaSet::new(k, n), ReplicaConfig::new(n, w))
    }

    pub fn with_faults(mut self, faults: FaultHandle) -> Self {
        self.stores = self
            .stores
            .into_iter()
            .map(|s| s.with_faults(faults.clone()))
            .collect();
        self
    }

    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.stores = self
            .stores
            .into_iter()
            .map(|s| s.with_trace(trace.clone()))
            .collect();
        self
    }

    pub fn with_pool(mut self, pool: Arc<Pool>) -> Self {
        self.stores = self
            .stores
            .into_iter()
            .map(|s| s.with_pool(pool.clone()))
            .collect();
        self
    }

    pub fn with_backoff(mut self, backoff: BackoffPolicy) -> Self {
        self.cfg.backoff = backoff;
        self.stores = self
            .stores
            .into_iter()
            .map(|s| s.with_backoff(backoff))
            .collect();
        self
    }

    pub fn config(&self) -> ReplicaConfig {
        self.cfg
    }

    pub fn striped_set(&self) -> Arc<StripedReplicaSet> {
        self.set.clone()
    }

    pub fn width(&self) -> usize {
        self.stores.len()
    }

    /// Counters summed over every stripe's client handle.
    pub fn stats(&self) -> ReplStats {
        self.stores.iter().map(|s| s.stats()).fold(
            ReplStats::default(),
            |a, b| ReplStats {
                commits: a.commits + b.commits,
                retries: a.retries + b.retries,
                repairs: a.repairs + b.repairs,
                quorum_losses: a.quorum_losses + b.quorum_losses,
                ack_cycles: a.ack_cycles + b.ack_cycles,
            },
        )
    }

    /// Batched commit with per-stripe receipts: objects are grouped by
    /// stripe (original order preserved within a stripe) and each
    /// participating stripe commits its group as ONE framed batch.
    ///
    /// Stripe admission runs sequentially in stripe-index order — the
    /// deterministic schedule — but the stripes are independent quorum
    /// sets, so in *virtual* time they commit concurrently: the aggregate
    /// [`BatchReceipt::time_ns`] is the maximum stripe time, and
    /// `ack_cycles` is one per participating stripe.
    ///
    /// All-or-nothing across stripes: if any stripe refuses quorum, every
    /// object already committed on earlier stripes is retracted at its
    /// exact version and the error is returned.
    pub fn store_batch_detailed(
        &mut self,
        objects: &[(&str, &[u8])],
        cost: &CostModel,
    ) -> Result<Vec<(usize, BatchReceipt)>, StorageError> {
        let k = self.stores.len();
        let mut groups: Vec<Vec<(&str, &[u8])>> = vec![Vec::new(); k];
        for &(key, data) in objects {
            groups[stripe_route(key, k)].push((key, data));
        }

        let mut receipts: Vec<(usize, BatchReceipt)> = Vec::new();
        for (j, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            match self.stores[j].store_batch(group, cost) {
                Ok(r) => receipts.push((j, r)),
                Err(e) => {
                    // Peel the earlier stripes' commits back off.
                    for &(done, _) in receipts.iter().rev() {
                        for &(key, _) in &groups[done] {
                            self.stores[done].retract_commit(key);
                        }
                    }
                    return Err(e);
                }
            }
        }
        Ok(receipts)
    }
}

impl StableStorage for StripedStore {
    fn class(&self) -> StorageClass {
        StorageClass::Remote
    }

    fn label(&self) -> String {
        format!("striped({}x{},{})", self.stores.len(), self.cfg.n, self.cfg.w)
    }

    fn store(
        &mut self,
        key: &str,
        data: &[u8],
        cost: &CostModel,
    ) -> Result<StoreReceipt, StorageError> {
        // A batch of one: single-object stores exercise the same framed
        // commit path (and the same `stripe<k>/r<i>/batch` faultpoint
        // sites) as full rounds.
        let j = stripe_route(key, self.stores.len());
        let r = self.stores[j].store_batch(&[(key, data)], cost)?;
        Ok(StoreReceipt {
            key: key.to_string(),
            bytes: r.bytes,
            time_ns: r.time_ns,
        })
    }

    fn load(&self, key: &str, cost: &CostModel) -> Result<(Vec<u8>, u64), StorageError> {
        self.stores[stripe_route(key, self.stores.len())].load(key, cost)
    }

    fn delete(&mut self, key: &str) -> Result<(), StorageError> {
        let j = stripe_route(key, self.stores.len());
        self.stores[j].delete(key)
    }

    fn list(&self) -> Vec<String> {
        // Each stripe's list is already sorted; the union across disjoint
        // key partitions just needs a merge-sort.
        let mut keys: Vec<String> = self.stores.iter().flat_map(|s| s.list()).collect();
        keys.sort();
        keys
    }

    fn available(&self) -> bool {
        // A pool with any quorum-less stripe is degraded: keys mapped
        // there are unwritable, so advertising availability would promise
        // commits the pool cannot keep.
        self.stores.iter().all(|s| s.available())
    }

    fn used_bytes(&self) -> u64 {
        self.stores.iter().map(|s| s.used_bytes()).sum()
    }

    fn on_node_failure(&mut self) {
        for s in &mut self.stores {
            s.on_node_failure();
        }
    }

    fn on_node_repair(&mut self) {
        for s in &mut self.stores {
            s.on_node_repair();
        }
    }

    fn on_power_down(&mut self) {
        // Remote media are unaffected by the client node's power state.
    }

    fn replica_manifest(&self, key: &str) -> Option<ReplicaManifest> {
        self.stores[stripe_route(key, self.stores.len())].replica_manifest(key)
    }

    fn store_batch(
        &mut self,
        objects: &[(&str, &[u8])],
        cost: &CostModel,
    ) -> Result<BatchReceipt, StorageError> {
        let receipts = self.store_batch_detailed(objects, cost)?;
        Ok(BatchReceipt {
            objects: receipts.iter().map(|(_, r)| r.objects).sum(),
            bytes: receipts.iter().map(|(_, r)| r.bytes).sum(),
            // Independent quorum sets commit concurrently in virtual time.
            time_ns: receipts.iter().map(|(_, r)| r.time_ns).max().unwrap_or(0),
            ack_cycles: receipts.iter().map(|(_, r)| r.ack_cycles).sum(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_storage::ImageKey;

    fn cost() -> CostModel {
        CostModel::circa_2005()
    }

    #[test]
    fn lineages_are_stripe_stable() {
        for job in ["a", "swp", "longer-job-name"] {
            for pid in 0..32 {
                let home = stripe_route(&ImageKey::new(job, pid, 1).to_string(), 4);
                for seq in 2..20 {
                    let k = ImageKey::new(job, pid, seq).to_string();
                    assert_eq!(
                        stripe_route(&k, 4),
                        home,
                        "chain {job}/pid{pid} must live on one stripe"
                    );
                }
            }
        }
    }

    #[test]
    fn routing_spreads_lineages_across_stripes() {
        let mut hit = [false; 4];
        for pid in 0..64 {
            hit[stripe_route(&ImageKey::new("j", pid, 1).to_string(), 4)] = true;
        }
        assert!(hit.iter().all(|&h| h), "64 lineages must touch all 4 stripes");
    }

    #[test]
    fn striped_store_round_trips_and_amortizes_per_stripe() {
        let mut s = StripedStore::fresh(4, 3, 2);
        let objects: Vec<(String, Vec<u8>)> = (0..16)
            .map(|pid| (ImageKey::new("j", pid, 1).to_string(), vec![pid as u8; 32]))
            .collect();
        let refs: Vec<(&str, &[u8])> = objects
            .iter()
            .map(|(k, d)| (k.as_str(), d.as_slice()))
            .collect();
        let r = s.store_batch(&refs, &cost()).unwrap();
        assert_eq!(r.objects, 16);
        assert!(
            r.ack_cycles <= 4,
            "one ack cycle per participating stripe, got {}",
            r.ack_cycles
        );
        for (k, d) in &objects {
            assert_eq!(s.load(k, &cost()).unwrap().0, *d);
        }
        assert_eq!(s.list().len(), 16);
    }

    #[test]
    fn batch_time_is_max_over_stripes_not_sum() {
        let mut one = StripedStore::fresh(1, 3, 2);
        let mut four = StripedStore::fresh(4, 3, 2);
        let objects: Vec<(String, Vec<u8>)> = (0..32)
            .map(|pid| (ImageKey::new("j", pid, 1).to_string(), vec![7u8; 4096]))
            .collect();
        let refs: Vec<(&str, &[u8])> = objects
            .iter()
            .map(|(k, d)| (k.as_str(), d.as_slice()))
            .collect();
        let t1 = one.store_batch(&refs, &cost()).unwrap().time_ns;
        let t4 = four.store_batch(&refs, &cost()).unwrap().time_ns;
        assert!(
            t4 * 2 < t1,
            "4 stripes must overlap commits in virtual time: {t4} vs {t1}"
        );
    }

    #[test]
    fn cross_stripe_batch_is_all_or_nothing() {
        let mut s = StripedStore::fresh(2, 3, 2);
        let objects: Vec<String> = (0..8)
            .map(|pid| ImageKey::new("j", pid, 1).to_string())
            .collect();
        // Find which stripe each object routes to and kill stripe 1's quorum.
        let set = s.striped_set();
        set.stripe(1).node(0).fail();
        set.stripe(1).node(1).fail();
        let refs: Vec<(&str, &[u8])> = objects
            .iter()
            .map(|k| (k.as_str(), b"x".as_slice()))
            .collect();
        let err = s.store_batch(&refs, &cost()).unwrap_err();
        assert!(matches!(err, StorageError::QuorumLost { .. }));
        // Heal everything: no object of the failed batch may have survived,
        // including the ones whose stripe committed before the failure.
        set.stripe(1).node(0).repair();
        set.stripe(1).node(1).repair();
        for k in &objects {
            assert!(
                matches!(s.load(k, &cost()), Err(StorageError::NotFound(_))),
                "object {k} leaked out of the aborted cross-stripe batch"
            );
        }
    }

    #[test]
    fn damaged_stripe_never_bleeds_into_healthy_ones() {
        let mut s = StripedStore::fresh(2, 3, 2);
        let keys: Vec<String> = (0..8)
            .map(|pid| ImageKey::new("j", pid, 1).to_string())
            .collect();
        for k in &keys {
            s.store(k, k.as_bytes(), &cost()).unwrap();
        }
        let set = s.striped_set();
        set.stripe(0).node(0).fail();
        set.stripe(0).node(1).fail();
        for k in &keys {
            match set.route(k) {
                0 => assert!(
                    matches!(s.load(k, &cost()), Err(StorageError::QuorumLost { .. })),
                    "damaged stripe must refuse {k} with the typed error"
                ),
                _ => assert_eq!(
                    s.load(k, &cost()).unwrap().0,
                    k.as_bytes(),
                    "healthy stripe must still serve {k}"
                ),
            }
        }
        assert!(!s.available(), "a quorum-less stripe degrades the pool");
    }
}
