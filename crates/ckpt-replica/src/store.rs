//! The quorum-replicated stable-storage backend.
//!
//! A [`ReplicatedStore`] is one client handle onto a shared
//! [`ReplicaSet`]: writes fan out to all N replicas and commit at write
//! quorum `w > N/2`; reads probe every reachable replica, pick the
//! highest-version intact frame, and repair stale/torn/missing copies in
//! place. When more than `N - w` replicas are unreachable or corrupt the
//! operation is refused with the typed
//! [`StorageError::QuorumLost`] — a committed value could then live
//! entirely on the missing replicas, so any answer would be a guess.
//!
//! ## Why versions + digests are sufficient
//!
//! Every committed write lands intact on at least `w` replicas, so after
//! losing any `N - w` of them at least `2w - N ≥ 1` intact copies remain,
//! and no *newer* commit can hide entirely in the lost set. Frame digests
//! (FNV-1a over the full payload, written with the frame) make torn
//! copies self-identifying, and the per-key version order makes "newest
//! intact frame" well-defined — majority voting is not needed.
//!
//! ## Determinism
//!
//! All fault admission (replica reachability, queued transients,
//! `simos::faultpoint` checks at `replica/r<i>/store` / `replica/r<i>/load`)
//! and all backoff arithmetic run sequentially on the calling thread in
//! replica-index order; only the pure payload copies fan out on the
//! `ckpt-par` pool. Commit results, manifests, costs, and trace counters
//! are therefore identical at every pool width.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ckpt_par::Pool;
use ckpt_storage::{
    BatchReceipt, ReplicaManifest, StableStorage, StorageClass, StorageError, StoreReceipt,
};
use simos::cost::CostModel;
use simos::faultpoint::{Fault, FaultHandle};
use simos::trace::TraceHandle;

use crate::backoff::{Backoff, BackoffPolicy};
use crate::node::{fnv1a64, Admission, Frame, Probe, ReplicaSet};

/// Quorum configuration: N replicas, write quorum w with `N/2 < w <= N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaConfig {
    pub n: usize,
    pub w: usize,
    pub backoff: BackoffPolicy,
}

impl ReplicaConfig {
    /// Panics unless `w > n/2` and `w <= n` — anything else is not a
    /// quorum system and silently weaker guarantees are exactly what this
    /// layer exists to rule out.
    pub fn new(n: usize, w: usize) -> Self {
        assert!(n >= 1, "need at least one replica");
        assert!(w <= n, "write quorum {w} cannot exceed replication factor {n}");
        assert!(w > n / 2, "write quorum {w} must be a majority of {n}");
        ReplicaConfig {
            n,
            w,
            backoff: BackoffPolicy::default(),
        }
    }

    /// Replicas the protocol tolerates losing while still answering.
    pub fn tolerated_losses(&self) -> usize {
        self.n - self.w
    }
}

/// Plain counters mirroring the [`simos::trace::ReplicationAgg`] deltas
/// this store emits, readable without a recording trace handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplStats {
    pub commits: u64,
    pub retries: u64,
    pub repairs: u64,
    pub quorum_losses: u64,
    /// Quorum acknowledgement round-trips consumed: one per single-object
    /// store or delete, one per *entire* framed batch commit. The scale
    /// reports compare this across the per-image and batched paths.
    pub ack_cycles: u64,
}

#[derive(Default)]
struct StatCells {
    commits: AtomicU64,
    retries: AtomicU64,
    repairs: AtomicU64,
    quorum_losses: AtomicU64,
    ack_cycles: AtomicU64,
}

/// One client handle on an N-way replicated store. Cheap to construct;
/// clones of the underlying [`ReplicaSet`] share all replica state.
pub struct ReplicatedStore {
    set: Arc<ReplicaSet>,
    cfg: ReplicaConfig,
    faults: FaultHandle,
    trace: TraceHandle,
    pool: Arc<Pool>,
    /// This *client's* reachability (its node may fail-stop); replica
    /// availability lives in the shared set.
    client_up: bool,
    /// Faultpoint site namespace: sites render as
    /// `{site_prefix}/r<i>/{op}`. The default `replica` keeps the
    /// historical names; a striped pool gives each stripe its own prefix
    /// so the crash matrix can tell the stripes apart.
    site_prefix: String,
    manifests: BTreeMap<String, ReplicaManifest>,
    stats: StatCells,
}

/// Per-replica write decision, resolved sequentially before the pool
/// executes the copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteCmd {
    /// Full intact frame; counts toward the quorum.
    Full,
    /// Crash mid-write: persist `keep` payload bytes under the full
    /// digest, then the replica is down. Does not count toward quorum.
    Torn { keep: usize },
    /// Replica unreachable (or retries exhausted); nothing written.
    Skip,
}

impl ReplicatedStore {
    /// A store over `set` with quorum `cfg`. Fault injection defaults to
    /// off, tracing to the no-op sink, and the pool to the global
    /// `CKPT_PAR_WORKERS`-sized pool.
    pub fn new(set: Arc<ReplicaSet>, cfg: ReplicaConfig) -> Self {
        assert_eq!(
            set.len(),
            cfg.n,
            "replica set has {} nodes but the quorum config says N={}",
            set.len(),
            cfg.n
        );
        ReplicatedStore {
            set,
            cfg,
            faults: FaultHandle::disabled(),
            trace: TraceHandle::disabled(),
            pool: ckpt_par::global().clone(),
            client_up: true,
            site_prefix: "replica".to_string(),
            manifests: BTreeMap::new(),
            stats: StatCells::default(),
        }
    }

    /// Convenience: a fresh N-node set plus its first client handle.
    pub fn fresh(n: usize, w: usize) -> Self {
        ReplicatedStore::new(ReplicaSet::new(n), ReplicaConfig::new(n, w))
    }

    pub fn with_faults(mut self, faults: FaultHandle) -> Self {
        self.faults = faults;
        self
    }

    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    pub fn with_pool(mut self, pool: Arc<Pool>) -> Self {
        self.pool = pool;
        self
    }

    pub fn with_backoff(mut self, backoff: BackoffPolicy) -> Self {
        self.cfg.backoff = backoff;
        self
    }

    /// Rename the faultpoint site namespace (default `replica`). A striped
    /// pool gives each stripe `stripe<k>` so the crash matrix can target a
    /// single stripe's replicas.
    pub fn with_site_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.site_prefix = prefix.into();
        self
    }

    pub fn config(&self) -> ReplicaConfig {
        self.cfg
    }

    pub fn replica_set(&self) -> Arc<ReplicaSet> {
        self.set.clone()
    }

    /// Counters accumulated by this client handle.
    pub fn stats(&self) -> ReplStats {
        ReplStats {
            commits: self.stats.commits.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            repairs: self.stats.repairs.load(Ordering::Relaxed),
            quorum_losses: self.stats.quorum_losses.load(Ordering::Relaxed),
            ack_cycles: self.stats.ack_cycles.load(Ordering::Relaxed),
        }
    }

    fn xfer_ns(&self, len: usize, cost: &CostModel) -> u64 {
        (len as f64 * cost.net_ns_per_byte).round() as u64
    }

    /// Resolve one replica's admission + fault checks into a decision,
    /// retrying transients on the jittered schedule. Returns the decision,
    /// retries consumed, and backoff virtual-ns accumulated.
    fn resolve_replica(&self, i: usize, op: &str, key: &str, bytes: u64) -> (WriteCmd, u64, u64) {
        let node = self.set.node(i);
        let site = format!("{}/r{i}/{op}", self.site_prefix);
        let salt = fnv1a64(key.as_bytes()) ^ (i as u64);
        let mut backoff = Backoff::new(self.cfg.backoff, salt);
        let mut retries = 0u64;
        let mut delay_ns = 0u64;
        loop {
            match node.admit() {
                Admission::Down => return (WriteCmd::Skip, retries, delay_ns),
                Admission::Transient => match backoff.next_delay_ns() {
                    Ok(d) => {
                        retries += 1;
                        delay_ns += d;
                        continue;
                    }
                    Err(_) => return (WriteCmd::Skip, retries, delay_ns),
                },
                Admission::Ok => {}
            }
            if !self.faults.is_off() {
                match self.faults.check(&site, bytes) {
                    Some(Fault::Transient) => match backoff.next_delay_ns() {
                        Ok(d) => {
                            retries += 1;
                            delay_ns += d;
                            continue;
                        }
                        Err(_) => return (WriteCmd::Skip, retries, delay_ns),
                    },
                    Some(Fault::TornWrite { keep_bytes }) if op != "load" => {
                        // The replica dies mid-write; the payload prefix is
                        // already on its medium.
                        node.fail();
                        return (
                            WriteCmd::Torn {
                                keep: keep_bytes as usize,
                            },
                            retries,
                            delay_ns,
                        );
                    }
                    Some(_) => {
                        // Fail-stop (and torn-on-read, which has no byte
                        // stream to tear): the replica node dies.
                        node.fail();
                        return (WriteCmd::Skip, retries, delay_ns);
                    }
                    None => {}
                }
            }
            return (WriteCmd::Full, retries, delay_ns);
        }
    }

    /// Highest frame version any reachable replica holds for `key` (torn
    /// frames and tombstones included — versions must keep climbing past
    /// them).
    fn probe_max_version(&self, key: &str) -> u64 {
        self.set
            .nodes()
            .iter()
            .filter(|n| !n.is_down())
            .map(|n| match n.probe(key) {
                Probe::Missing => 0,
                Probe::Torn { version } => version,
                Probe::Valid(f) => f.version,
            })
            .max()
            .unwrap_or(0)
    }

    /// Undo the last committed write of `key`: drop that exact version from
    /// every replica and forget the manifest. Used by the striped pool to
    /// make a multi-stripe batch all-or-nothing when a *later* stripe
    /// refuses quorum — `drop_if_version` means an unrelated newer commit
    /// can never be clobbered.
    pub(crate) fn retract_commit(&mut self, key: &str) {
        if let Some(m) = self.manifests.remove(key) {
            for i in 0..self.cfg.n {
                self.set.node(i).drop_if_version(key, m.version);
            }
        }
    }

    fn bump_stats(&self, commits: u64, retries: u64, repairs: u64, losses: u64) {
        self.stats.commits.fetch_add(commits, Ordering::Relaxed);
        self.stats.retries.fetch_add(retries, Ordering::Relaxed);
        self.stats.repairs.fetch_add(repairs, Ordering::Relaxed);
        self.stats.quorum_losses.fetch_add(losses, Ordering::Relaxed);
        self.trace.replication(commits, retries, repairs, losses);
    }
}

impl StableStorage for ReplicatedStore {
    fn class(&self) -> StorageClass {
        StorageClass::Remote
    }

    fn label(&self) -> String {
        format!("replicated({},{})", self.cfg.n, self.cfg.w)
    }

    fn store(
        &mut self,
        key: &str,
        data: &[u8],
        cost: &CostModel,
    ) -> Result<StoreReceipt, StorageError> {
        if !self.client_up {
            return Err(StorageError::Unavailable);
        }
        let version = self.probe_max_version(key) + 1;

        // Phase 1 (sequential, replica order): admission, fault checks,
        // retry/backoff — everything that must be deterministic.
        let mut total_retries = 0u64;
        let mut backoff_ns = 0u64;
        let cmds: Vec<(usize, WriteCmd)> = (0..self.cfg.n)
            .map(|i| {
                let (cmd, r, d) = self.resolve_replica(i, "store", key, data.len() as u64);
                total_retries += r;
                backoff_ns += d;
                (i, cmd)
            })
            .collect();

        // Pre-write snapshots: `put` replaces a replica's frame in place,
        // so a failed quorum needs the prior frames to roll back to the
        // committed state instead of leaving its acked replicas empty.
        let priors: Vec<Option<Frame>> = cmds
            .iter()
            .map(|(i, cmd)| {
                if *cmd == WriteCmd::Skip {
                    None
                } else {
                    self.set.node(*i).snapshot_frame(key)
                }
            })
            .collect();

        // Phase 2 (pool fan-out): pure payload copies into per-replica
        // frame maps. Each replica has its own lock; merge order is the
        // submission order, so this is width-invariant by construction.
        let set = self.set.clone();
        self.pool.par_map_ordered(
            cmds.clone(),
            || (),
            |_, _, (i, cmd)| match cmd {
                WriteCmd::Full => set.node(i).put(key, version, data),
                WriteCmd::Torn { keep } => set.node(i).put_torn(key, version, data, keep),
                WriteCmd::Skip => {}
            },
        );

        let acked: Vec<u32> = cmds
            .iter()
            .filter(|(_, c)| matches!(c, WriteCmd::Full))
            .map(|(i, _)| *i as u32)
            .collect();
        let xfer: u64 = cmds
            .iter()
            .map(|(_, c)| match c {
                WriteCmd::Full => self.xfer_ns(data.len(), cost),
                WriteCmd::Torn { keep } => self.xfer_ns((*keep).min(data.len()), cost),
                WriteCmd::Skip => 0,
            })
            .sum();
        let time_ns = cost.net_latency_ns + xfer + backoff_ns;
        self.stats.ack_cycles.fetch_add(1, Ordering::Relaxed);

        if acked.len() < self.cfg.w {
            // Roll the failed commit back from the replicas that did take
            // it — reinstating each one's pre-write frame — so an
            // unacknowledged version never wins a later read and a
            // refused overwrite never destroys the committed copy.
            for &i in &acked {
                self.set
                    .node(i as usize)
                    .rollback_to(key, version, priors[i as usize].clone());
            }
            self.bump_stats(0, total_retries, 0, 1);
            return Err(StorageError::QuorumLost {
                acked: acked.len() as u32,
                needed: self.cfg.w as u32,
            });
        }

        self.manifests.insert(
            key.to_string(),
            ReplicaManifest {
                key: key.to_string(),
                version,
                digest: fnv1a64(data),
                bytes: data.len() as u64,
                acked,
                n: self.cfg.n as u32,
                w: self.cfg.w as u32,
                coding: None,
            },
        );
        self.bump_stats(1, total_retries, 0, 0);
        Ok(StoreReceipt {
            key: key.to_string(),
            bytes: data.len() as u64,
            time_ns,
        })
    }

    fn load(&self, key: &str, cost: &CostModel) -> Result<(Vec<u8>, u64), StorageError> {
        if !self.client_up {
            return Err(StorageError::Unavailable);
        }

        // Sequential probe of every replica (admission + fault checks in
        // replica order), classifying what each one holds.
        let mut total_retries = 0u64;
        let mut backoff_ns = 0u64;
        let mut down = 0usize;
        let mut missing = 0usize;
        let mut torn: Vec<usize> = Vec::new();
        let mut valid: Vec<(usize, Frame)> = Vec::new();
        for i in 0..self.cfg.n {
            let (cmd, r, d) = self.resolve_replica(i, "load", key, 0);
            total_retries += r;
            backoff_ns += d;
            if cmd != WriteCmd::Full {
                down += 1;
                continue;
            }
            match self.set.node(i).probe(key) {
                Probe::Missing => missing += 1,
                Probe::Torn { .. } => torn.push(i),
                Probe::Valid(f) => valid.push((i, f)),
            }
        }

        let n = self.cfg.n;
        let w = self.cfg.w;
        let tolerated = n - w;
        if valid.is_empty() && torn.is_empty() {
            // No replica has ever seen this key — unless so many are down
            // that a committed copy could be hiding on them.
            self.bump_stats(0, total_retries, 0, u64::from(down > tolerated));
            return if down > tolerated {
                Err(StorageError::QuorumLost {
                    acked: 0,
                    needed: w as u32,
                })
            } else {
                Err(StorageError::NotFound(key.to_string()))
            };
        }

        // The key exists. Every unreachable, torn, or inexplicably missing
        // replica might hold a newer commit than the best intact frame we
        // can see; past `N - w` of them, "newest visible" is not "newest".
        let suspect = down + torn.len() + missing;
        if suspect > tolerated {
            self.bump_stats(0, total_retries, 0, 1);
            return Err(StorageError::QuorumLost {
                acked: valid.len() as u32,
                needed: w as u32,
            });
        }

        let (_, winner) = valid
            .iter()
            .max_by_key(|(_, f)| f.version)
            .cloned()
            .expect("suspect <= N - w implies at least w intact frames");

        // Read-repair: rewrite the winning frame onto every reachable
        // replica holding a stale, torn, or missing copy. Pure copies —
        // fan them out on the pool like the write path.
        let lagging: Vec<usize> = (0..n)
            .filter(|&i| !self.set.node(i).is_down())
            .filter(|&i| match self.set.node(i).probe(key) {
                Probe::Valid(f) => f.version < winner.version,
                Probe::Torn { .. } | Probe::Missing => true,
            })
            .collect();
        let repairs = lagging.len() as u64;
        if !lagging.is_empty() {
            let set = self.set.clone();
            let fr = winner.clone();
            self.pool.par_map_ordered(
                lagging,
                || (),
                |_, _, i| {
                    if fr.tombstone {
                        set.node(i).put_tombstone(key, fr.version);
                    } else {
                        set.node(i).put(key, fr.version, &fr.data);
                    }
                },
            );
        }

        if winner.tombstone {
            // The newest committed frame is a delete marker; repairing the
            // stale copies above is what prevents resurrection.
            self.bump_stats(0, total_retries, repairs, 0);
            return Err(StorageError::NotFound(key.to_string()));
        }

        let time_ns = cost.net_latency_ns
            + self.xfer_ns(winner.data.len(), cost) * (1 + repairs)
            + backoff_ns;
        self.bump_stats(0, total_retries, repairs, 0);
        Ok((winner.data, time_ns))
    }

    fn delete(&mut self, key: &str) -> Result<(), StorageError> {
        if !self.client_up {
            return Err(StorageError::Unavailable);
        }
        let version = self.probe_max_version(key) + 1;
        let mut acked = 0usize;
        let mut total_retries = 0u64;
        for i in 0..self.cfg.n {
            // Deletes take the same admission/retry path but have no
            // payload to tear, so no faultpoint site is consulted (the
            // site list stays exactly the write/read surface).
            let node = self.set.node(i);
            let salt = fnv1a64(key.as_bytes()) ^ (i as u64) ^ 0xde1e;
            let mut backoff = Backoff::new(self.cfg.backoff, salt);
            loop {
                match node.admit() {
                    Admission::Down => break,
                    Admission::Transient => {
                        if backoff.next_delay_ns().is_err() {
                            break;
                        }
                        total_retries += 1;
                        continue;
                    }
                    Admission::Ok => {
                        node.put_tombstone(key, version);
                        acked += 1;
                        break;
                    }
                }
            }
        }
        self.stats.ack_cycles.fetch_add(1, Ordering::Relaxed);
        if acked < self.cfg.w {
            self.bump_stats(0, total_retries, 0, 1);
            return Err(StorageError::QuorumLost {
                acked: acked as u32,
                needed: self.cfg.w as u32,
            });
        }
        self.manifests.remove(key);
        self.bump_stats(0, total_retries, 0, 0);
        Ok(())
    }

    fn list(&self) -> Vec<String> {
        if !self.client_up {
            return Vec::new();
        }
        // Optimistic union over reachable replicas: listing is advisory
        // (each key's actual readability is decided by the quorum read),
        // and must not silently hide keys whose copies are partially lost.
        let mut keys: Vec<String> = self
            .set
            .nodes()
            .iter()
            .filter(|n| !n.is_down())
            .flat_map(|n| n.keys())
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }

    fn available(&self) -> bool {
        self.client_up && self.set.reachable() >= self.cfg.w
    }

    fn used_bytes(&self) -> u64 {
        // One logical copy's worth: the fullest reachable replica.
        self.set
            .nodes()
            .iter()
            .filter(|n| !n.is_down())
            .map(|n| n.used_bytes())
            .max()
            .unwrap_or(0)
    }

    fn on_node_failure(&mut self) {
        // The *client's* node fail-stopped. The replicas are elsewhere —
        // surviving this event is the entire point of the layer.
        self.client_up = false;
    }

    fn on_node_repair(&mut self) {
        self.client_up = true;
    }

    fn on_power_down(&mut self) {
        // Remote media are unaffected by the client node's power state.
    }

    fn replica_manifest(&self, key: &str) -> Option<ReplicaManifest> {
        self.manifests.get(key).cloned()
    }

    /// Framed batched quorum commit: the whole batch is one wire frame
    /// (header, then per-object records of `keylen | key | version |
    /// payloadlen | payload`), written to each replica in one admission /
    /// retry / acknowledgement cycle — `ack_cycles: 1` regardless of how
    /// many objects ride in it. A torn write persists a frame *prefix*:
    /// objects wholly below the tear land intact, the object straddling it
    /// lands torn (detectable by digest), objects above never reach the
    /// medium. Quorum is all-or-nothing for the batch: fewer than `w` full
    /// frames rolls every object back from the replicas that took it.
    fn store_batch(
        &mut self,
        objects: &[(&str, &[u8])],
        cost: &CostModel,
    ) -> Result<BatchReceipt, StorageError> {
        if !self.client_up {
            return Err(StorageError::Unavailable);
        }
        if objects.is_empty() {
            return Ok(BatchReceipt {
                objects: 0,
                bytes: 0,
                time_ns: 0,
                ack_cycles: 0,
            });
        }

        // Per-object commit versions, probed before any bytes move so the
        // whole batch either advances each key once or not at all.
        let versions: Vec<u64> = objects
            .iter()
            .map(|(k, _)| self.probe_max_version(k) + 1)
            .collect();

        // Frame layout offsets: 16-byte frame header, then per-object
        // records of 20-byte record header + key + payload. Only the
        // offsets matter here (they decide what a torn write leaves
        // behind); the payloads themselves are stored per key.
        const FRAME_HEADER: u64 = 16;
        const RECORD_HEADER: u64 = 20;
        let mut payload_at: Vec<(u64, u64)> = Vec::with_capacity(objects.len());
        let mut off = FRAME_HEADER;
        for (k, d) in objects {
            off += RECORD_HEADER + k.len() as u64;
            payload_at.push((off, off + d.len() as u64));
            off += d.len() as u64;
        }
        let frame_bytes = off;

        // Phase 1 (sequential, replica order): ONE admission + fault-check
        // + retry/backoff cycle per replica for the entire batch — this is
        // the amortization over per-object stores.
        let batch_id = format!("batch/{}+{}", objects[0].0, objects.len());
        let mut total_retries = 0u64;
        let mut backoff_ns = 0u64;
        let cmds: Vec<(usize, WriteCmd)> = (0..self.cfg.n)
            .map(|i| {
                let (cmd, r, d) = self.resolve_replica(i, "batch", &batch_id, frame_bytes);
                total_retries += r;
                backoff_ns += d;
                (i, cmd)
            })
            .collect();

        // Pre-write snapshots for rollback: one per (replica, object),
        // taken before any frame is replaced.
        let priors: Vec<Vec<Option<Frame>>> = cmds
            .iter()
            .map(|(i, cmd)| {
                if *cmd == WriteCmd::Skip {
                    Vec::new()
                } else {
                    objects
                        .iter()
                        .map(|(k, _)| self.set.node(*i).snapshot_frame(k))
                        .collect()
                }
            })
            .collect();

        // Phase 2 (pool fan-out): pure copies, one replica per work item.
        let set = self.set.clone();
        self.pool.par_map_ordered(
            cmds.clone(),
            || (),
            |_, _, (i, cmd)| match cmd {
                WriteCmd::Full => {
                    for (j, (k, d)) in objects.iter().enumerate() {
                        set.node(i).put(k, versions[j], d);
                    }
                }
                WriteCmd::Torn { keep } => {
                    let keep = keep as u64;
                    for (j, (k, d)) in objects.iter().enumerate() {
                        let (ps, pe) = payload_at[j];
                        let record_start = ps - RECORD_HEADER - k.len() as u64;
                        if keep >= pe {
                            set.node(i).put(k, versions[j], d);
                        } else if keep > record_start {
                            let kept = keep.saturating_sub(ps) as usize;
                            set.node(i).put_torn(k, versions[j], d, kept);
                        }
                        // Tear below the record start: nothing of this
                        // object reached the medium.
                    }
                }
                WriteCmd::Skip => {}
            },
        );

        let acked: Vec<u32> = cmds
            .iter()
            .filter(|(_, c)| matches!(c, WriteCmd::Full))
            .map(|(i, _)| *i as u32)
            .collect();
        let xfer: u64 = cmds
            .iter()
            .map(|(_, c)| match c {
                WriteCmd::Full => self.xfer_ns(frame_bytes as usize, cost),
                WriteCmd::Torn { keep } => {
                    self.xfer_ns((*keep as u64).min(frame_bytes) as usize, cost)
                }
                WriteCmd::Skip => 0,
            })
            .sum();
        // One network round-trip for the whole frame.
        let time_ns = cost.net_latency_ns + xfer + backoff_ns;
        self.stats.ack_cycles.fetch_add(1, Ordering::Relaxed);

        if acked.len() < self.cfg.w {
            // All-or-nothing: peel every object of the failed batch back
            // off the replicas that took it, reinstating each replica's
            // pre-write frames so the previously committed values survive.
            for &i in &acked {
                for (j, (k, _)) in objects.iter().enumerate() {
                    self.set
                        .node(i as usize)
                        .rollback_to(k, versions[j], priors[i as usize][j].clone());
                }
            }
            self.bump_stats(0, total_retries, 0, 1);
            return Err(StorageError::QuorumLost {
                acked: acked.len() as u32,
                needed: self.cfg.w as u32,
            });
        }

        let mut payload_bytes = 0u64;
        for (j, (k, d)) in objects.iter().enumerate() {
            payload_bytes += d.len() as u64;
            self.manifests.insert(
                k.to_string(),
                ReplicaManifest {
                    key: k.to_string(),
                    version: versions[j],
                    digest: fnv1a64(d),
                    bytes: d.len() as u64,
                    acked: acked.clone(),
                    n: self.cfg.n as u32,
                    w: self.cfg.w as u32,
                    coding: None,
                },
            );
        }
        self.bump_stats(objects.len() as u64, total_retries, 0, 0);
        Ok(BatchReceipt {
            objects: objects.len() as u64,
            bytes: payload_bytes,
            time_ns,
            ack_cycles: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        CostModel::circa_2005()
    }

    #[test]
    fn commit_reaches_all_replicas_and_records_a_manifest() {
        let mut s = ReplicatedStore::fresh(3, 2);
        let r = s.store("j/pid1/seq1", b"payload", &cost()).unwrap();
        assert_eq!(r.bytes, 7);
        let m = s.replica_manifest("j/pid1/seq1").unwrap();
        assert_eq!(m.acked, vec![0, 1, 2]);
        assert_eq!((m.n, m.w, m.version), (3, 2, 1));
        assert_eq!(m.digest, fnv1a64(b"payload"));
        let (bytes, _) = s.load("j/pid1/seq1", &cost()).unwrap();
        assert_eq!(bytes, b"payload");
        assert_eq!(s.stats().commits, 1);
    }

    #[test]
    fn one_replica_down_still_commits_at_w2() {
        let mut s = ReplicatedStore::fresh(3, 2);
        s.replica_set().node(2).fail();
        s.store("k", b"x", &cost()).unwrap();
        let m = s.replica_manifest("k").unwrap();
        assert_eq!(m.acked, vec![0, 1]);
        // The downed replica heals and gets read-repaired on first read.
        s.replica_set().node(2).repair();
        let before = s.stats().repairs;
        s.load("k", &cost()).unwrap();
        assert_eq!(s.stats().repairs, before + 1);
        assert!(matches!(
            s.replica_set().node(2).probe("k"),
            Probe::Valid(_)
        ));
    }

    #[test]
    fn losing_write_quorum_is_typed_and_rolled_back() {
        let mut s = ReplicatedStore::fresh(3, 2);
        s.replica_set().node(1).fail();
        s.replica_set().node(2).fail();
        let err = s.store("k", b"x", &cost()).unwrap_err();
        assert_eq!(err, StorageError::QuorumLost { acked: 1, needed: 2 });
        // The single landed copy was rolled back: after full repair the
        // key reads as never-written, not as a 1-copy "commit".
        s.replica_set().node(1).repair();
        s.replica_set().node(2).repair();
        assert!(matches!(
            s.load("k", &cost()),
            Err(StorageError::NotFound(_))
        ));
        assert_eq!(s.stats().quorum_losses, 1);
    }

    #[test]
    fn losing_more_than_n_minus_w_replicas_refuses_reads() {
        let mut s = ReplicatedStore::fresh(3, 2);
        s.store("k", b"committed", &cost()).unwrap();
        s.replica_set().node(0).fail();
        assert!(s.load("k", &cost()).is_ok(), "one loss is tolerated");
        s.replica_set().node(1).fail();
        let err = s.load("k", &cost()).unwrap_err();
        assert!(
            matches!(err, StorageError::QuorumLost { .. }),
            "two losses at (3,2) must refuse, got {err:?}"
        );
    }

    #[test]
    fn torn_replica_is_detected_and_repaired() {
        let mut s = ReplicatedStore::fresh(3, 2);
        s.store("k", b"0123456789", &cost()).unwrap();
        s.replica_set().node(1).corrupt_key("k");
        assert_eq!(s.replica_set().node(1).probe("k"), Probe::Torn { version: 1 });
        let (bytes, _) = s.load("k", &cost()).unwrap();
        assert_eq!(bytes, b"0123456789");
        // Repaired in place.
        assert!(matches!(
            s.replica_set().node(1).probe("k"),
            Probe::Valid(_)
        ));
        assert_eq!(s.stats().repairs, 1);
    }

    #[test]
    fn transient_faults_are_absorbed_by_backoff() {
        let mut s = ReplicatedStore::fresh(3, 2);
        s.replica_set().node(0).inject_transients(2);
        let r = s.store("k", b"x", &cost()).unwrap();
        assert_eq!(s.replica_manifest("k").unwrap().acked, vec![0, 1, 2]);
        assert_eq!(s.stats().retries, 2);
        // The backoff delay is charged to the modelled time.
        let clean = ReplicatedStore::fresh(3, 2)
            .store("k", b"x", &cost())
            .map(|r| r.time_ns)
            .unwrap();
        assert!(r.time_ns > clean, "retries must cost virtual time");
    }

    #[test]
    fn exhausted_retries_drop_the_replica_not_the_commit() {
        let mut s = ReplicatedStore::fresh(3, 2);
        let budget = s.config().backoff.max_retries;
        s.replica_set().node(0).inject_transients(budget + 4);
        s.store("k", b"x", &cost()).unwrap();
        assert_eq!(s.replica_manifest("k").unwrap().acked, vec![1, 2]);
    }

    #[test]
    fn delete_is_tombstoned_and_does_not_resurrect() {
        let mut s = ReplicatedStore::fresh(3, 2);
        s.store("k", b"old", &cost()).unwrap();
        // Replica 2 misses the delete entirely, keeping a stale copy.
        s.replica_set().node(2).fail();
        s.delete("k").unwrap();
        s.replica_set().node(2).repair();
        // The tombstone outranks the stale v1 frame; the read repairs the
        // straggler instead of resurrecting the deleted value.
        assert!(matches!(
            s.load("k", &cost()),
            Err(StorageError::NotFound(_))
        ));
        assert!(matches!(
            s.load("k", &cost()),
            Err(StorageError::NotFound(_))
        ));
    }

    #[test]
    fn versions_keep_climbing_across_client_restarts() {
        let set = ReplicaSet::new(3);
        let cfg = ReplicaConfig::new(3, 2);
        let mut a = ReplicatedStore::new(set.clone(), cfg);
        a.store("k", b"v1", &cost()).unwrap();
        a.store("k", b"v2", &cost()).unwrap();
        assert_eq!(a.replica_manifest("k").unwrap().version, 2);
        // A brand-new client (post-restart) probes the live version and
        // continues the order rather than restarting at 1.
        let mut b = ReplicatedStore::new(set, cfg);
        b.store("k", b"v3", &cost()).unwrap();
        assert_eq!(b.replica_manifest("k").unwrap().version, 3);
        let (bytes, _) = b.load("k", &cost()).unwrap();
        assert_eq!(bytes, b"v3");
    }

    #[test]
    fn client_node_failure_refuses_io_until_repair() {
        let mut s = ReplicatedStore::fresh(3, 2);
        s.store("k", b"x", &cost()).unwrap();
        s.on_node_failure();
        assert_eq!(s.load("k", &cost()), Err(StorageError::Unavailable));
        assert!(s.list().is_empty());
        assert!(!s.available());
        s.on_node_repair();
        assert!(s.available());
        assert_eq!(s.load("k", &cost()).unwrap().0, b"x");
    }

    #[test]
    fn batched_commit_amortizes_ack_cycles() {
        let mut batched = ReplicatedStore::fresh(3, 2);
        let objects: Vec<(String, Vec<u8>)> = (0..8)
            .map(|i| (format!("j/pid{i}/seq00000001"), vec![i as u8; 64]))
            .collect();
        let refs: Vec<(&str, &[u8])> = objects
            .iter()
            .map(|(k, d)| (k.as_str(), d.as_slice()))
            .collect();
        let r = batched.store_batch(&refs, &cost()).unwrap();
        assert_eq!((r.objects, r.ack_cycles), (8, 1));
        assert_eq!(batched.stats().commits, 8);
        assert_eq!(batched.stats().ack_cycles, 1);
        for (k, d) in &objects {
            assert_eq!(batched.load(k, &cost()).unwrap().0, *d);
            assert_eq!(batched.replica_manifest(k).unwrap().acked, vec![0, 1, 2]);
        }
        // The same commits one-by-one pay one ack cycle per object.
        let mut looped = ReplicatedStore::fresh(3, 2);
        for (k, d) in &objects {
            looped.store(k, d, &cost()).unwrap();
        }
        assert_eq!(looped.stats().ack_cycles, 8);
    }

    #[test]
    fn batch_quorum_loss_rolls_back_every_object() {
        let mut s = ReplicatedStore::fresh(3, 2);
        s.replica_set().node(1).fail();
        s.replica_set().node(2).fail();
        let err = s
            .store_batch(&[("a", b"aa".as_slice()), ("b", b"bb".as_slice())], &cost())
            .unwrap_err();
        assert_eq!(err, StorageError::QuorumLost { acked: 1, needed: 2 });
        s.replica_set().node(1).repair();
        s.replica_set().node(2).repair();
        for k in ["a", "b"] {
            assert!(
                matches!(s.load(k, &cost()), Err(StorageError::NotFound(_))),
                "object {k} of the failed batch must not survive"
            );
        }
        assert_eq!(s.stats().quorum_losses, 1);
    }

    #[test]
    fn torn_batch_frame_persists_a_detectable_prefix() {
        // Frame layout: 16B header, then "a"'s record (payload at 37..41)
        // and "b"'s (payload at 62..66). Tearing at byte 64 leaves "a"
        // intact on r0 and "b" torn mid-payload.
        let h = FaultHandle::armed("replica/r0/batch@1", Fault::TornWrite { keep_bytes: 64 });
        let mut s = ReplicatedStore::fresh(3, 2).with_faults(h);
        let r = s
            .store_batch(
                &[("a", b"aaaa".as_slice()), ("b", b"bbbb".as_slice())],
                &cost(),
            )
            .unwrap();
        assert_eq!(r.objects, 2);
        // r0 died mid-write; the quorum committed on r1+r2.
        assert_eq!(s.replica_manifest("a").unwrap().acked, vec![1, 2]);
        assert!(matches!(s.replica_set().node(0).probe("a"), Probe::Valid(_)));
        assert_eq!(
            s.replica_set().node(0).probe("b"),
            Probe::Torn { version: 1 },
            "the object straddling the tear must be self-identifying, not silent"
        );
        // Reads still see the committed values (and repair r0 once it heals).
        s.replica_set().node(0).repair();
        assert_eq!(s.load("a", &cost()).unwrap().0, b"aaaa");
        assert_eq!(s.load("b", &cost()).unwrap().0, b"bbbb");
        assert!(matches!(s.replica_set().node(0).probe("b"), Probe::Valid(_)));
    }

    #[test]
    fn batch_respects_site_prefix() {
        let h = FaultHandle::recording();
        let mut s = ReplicatedStore::fresh(3, 2)
            .with_faults(h.clone())
            .with_site_prefix("stripe4");
        s.store_batch(&[("k", b"x".as_slice())], &cost()).unwrap();
        let sites = h.sites();
        assert!(
            sites.iter().any(|s| s.name.starts_with("stripe4/r0/batch")),
            "expected stripe-prefixed batch sites, got {sites:?}"
        );
        assert!(sites.iter().all(|s| !s.name.starts_with("replica/")));
    }

    #[test]
    fn invalid_quorums_are_rejected() {
        assert!(std::panic::catch_unwind(|| ReplicaConfig::new(3, 1)).is_err());
        assert!(std::panic::catch_unwind(|| ReplicaConfig::new(4, 2)).is_err());
        assert!(std::panic::catch_unwind(|| ReplicaConfig::new(3, 4)).is_err());
        let c = ReplicaConfig::new(5, 3);
        assert_eq!(c.tolerated_losses(), 2);
    }
}
