//! Jittered exponential backoff over **virtual** time.
//!
//! Replica RPCs that hit a transient fault are retried on a schedule that
//! doubles from a base delay up to a ceiling, with deterministic jitter
//! drawn from a SplitMix64 stream seeded per (operation, replica). No wall
//! clock is involved anywhere: a [`Backoff`] only *computes* delays in
//! virtual nanoseconds and the caller charges them to the cost model, so
//! tests drive the schedule with a mock clock and never sleep.

use std::fmt;

/// The retry schedule: `min(ceiling, base * 2^attempt)` with equal jitter
/// (half fixed, half uniformly random), for at most `max_retries` retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First-retry delay before jitter, in virtual ns.
    pub base_ns: u64,
    /// Hard cap on the un-jittered delay, in virtual ns.
    pub ceiling_ns: u64,
    /// How many retries are attempted before giving up.
    pub max_retries: u32,
    /// Seed for the jitter stream. The same seed always yields the same
    /// schedule — replication stays deterministic under fault injection.
    pub jitter_seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ns: 50_000,        // 50 µs: one interconnect round-trip-ish
            ceiling_ns: 1_600_000,  // 1.6 ms cap
            max_retries: 6,
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// The retry budget ran out: the replica kept failing transiently for
/// `attempts` consecutive tries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetriesExhausted {
    pub attempts: u32,
}

impl fmt::Display for RetriesExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "retry budget exhausted after {} attempts", self.attempts)
    }
}

impl std::error::Error for RetriesExhausted {}

/// One operation's backoff state. Create a fresh one per (op, replica) so
/// the jitter stream is a pure function of the policy seed and the salt.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: BackoffPolicy,
    attempt: u32,
    rng: u64,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Backoff {
    /// `salt` distinguishes streams that share a policy (e.g. replica index
    /// hashed with the object key), keeping concurrent retries decorrelated
    /// but still fully deterministic.
    pub fn new(policy: BackoffPolicy, salt: u64) -> Self {
        Backoff {
            policy,
            attempt: 0,
            rng: policy.jitter_seed ^ salt,
        }
    }

    /// The next delay to wait before retrying, or the typed exhaustion
    /// error once the budget is spent. Never sleeps — the caller charges
    /// the returned virtual nanoseconds.
    pub fn next_delay_ns(&mut self) -> Result<u64, RetriesExhausted> {
        if self.attempt >= self.policy.max_retries {
            return Err(RetriesExhausted {
                attempts: self.attempt,
            });
        }
        let exp = self
            .policy
            .base_ns
            .saturating_mul(1u64.checked_shl(self.attempt).unwrap_or(u64::MAX))
            .min(self.policy.ceiling_ns);
        self.attempt += 1;
        // Equal jitter: half the delay is fixed, half uniform in [0, exp/2].
        let half = exp / 2;
        let jitter = if half == 0 {
            0
        } else {
            splitmix64(&mut self.rng) % (half + 1)
        };
        Ok(half + jitter)
    }

    /// Retries consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The mock clock: accumulates virtual delays the way the replicated
    /// store charges them to the cost model. No thread ever sleeps.
    #[derive(Default)]
    struct MockClock {
        now_ns: u64,
    }

    impl MockClock {
        fn advance(&mut self, ns: u64) {
            self.now_ns += ns;
        }
    }

    fn drain(policy: BackoffPolicy, salt: u64) -> (Vec<u64>, RetriesExhausted) {
        let mut b = Backoff::new(policy, salt);
        let mut clock = MockClock::default();
        let mut delays = Vec::new();
        loop {
            match b.next_delay_ns() {
                Ok(d) => {
                    clock.advance(d);
                    delays.push(clock.now_ns);
                }
                Err(e) => return (delays, e),
            }
        }
    }

    #[test]
    fn schedule_is_deterministic_under_a_seed() {
        let p = BackoffPolicy::default();
        let (a, _) = drain(p, 7);
        let (b, _) = drain(p, 7);
        assert_eq!(a, b, "same seed+salt must replay the same schedule");
        let (c, _) = drain(p, 8);
        assert_ne!(a, c, "different salts must decorrelate the jitter");
    }

    #[test]
    fn delays_grow_exponentially_and_cap_at_the_ceiling() {
        let p = BackoffPolicy {
            base_ns: 100,
            ceiling_ns: 1000,
            max_retries: 8,
            jitter_seed: 42,
        };
        let mut b = Backoff::new(p, 0);
        let mut prev_cap = 0u64;
        for attempt in 0..p.max_retries {
            let d = b.next_delay_ns().unwrap();
            let exp = (p.base_ns << attempt).min(p.ceiling_ns);
            assert!(
                d >= exp / 2 && d <= exp,
                "attempt {attempt}: delay {d} outside [{}, {exp}]",
                exp / 2
            );
            // The un-jittered envelope is monotone until it hits the cap.
            assert!(exp >= prev_cap);
            prev_cap = exp;
        }
        assert_eq!(prev_cap, p.ceiling_ns, "schedule must reach the ceiling");
    }

    #[test]
    fn gives_up_after_the_retry_budget_with_a_typed_error() {
        let p = BackoffPolicy {
            max_retries: 3,
            ..BackoffPolicy::default()
        };
        let (delays, err) = drain(p, 1);
        assert_eq!(delays.len(), 3);
        assert_eq!(err, RetriesExhausted { attempts: 3 });
        assert_eq!(err.to_string(), "retry budget exhausted after 3 attempts");
    }

    #[test]
    fn zero_retry_budget_fails_immediately() {
        let p = BackoffPolicy {
            max_retries: 0,
            ..BackoffPolicy::default()
        };
        let mut b = Backoff::new(p, 0);
        assert_eq!(b.next_delay_ns(), Err(RetriesExhausted { attempts: 0 }));
    }

    #[test]
    fn mock_clock_total_matches_summed_delays() {
        // The whole point of virtual-time backoff: total elapsed time is
        // exactly the sum of the computed delays, reproducibly.
        let p = BackoffPolicy::default();
        let (a, _) = drain(p, 3);
        let total = *a.last().unwrap();
        let mut b = Backoff::new(p, 3);
        let mut sum = 0u64;
        while let Ok(d) = b.next_delay_ns() {
            sum += d;
        }
        assert_eq!(sum, total);
    }
}
