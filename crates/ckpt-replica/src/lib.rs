//! # ckpt-replica — N-way quorum-replicated stable storage
//!
//! The paper's survivability argument (Section 4.1, DESIGN.md §C6) is
//! binary: a checkpoint either lives where the failed node's death cannot
//! reach it, or it is gone. This crate makes the "remote" column concrete
//! the way production checkpoint stacks do: one logical stable store
//! backed by **N** independent replica nodes, writes committed at a
//! majority write quorum **w > N/2**, reads assembled from the newest
//! intact copy with read-repair, and a typed
//! [`QuorumLost`](ckpt_storage::StorageError::QuorumLost) refusal — never
//! a guess — once more than `N − w` replicas are lost.
//!
//! * [`backoff`] — jittered exponential retry schedules over virtual time;
//! * [`node`] — the simulated replica nodes and their versioned,
//!   digest-protected frames;
//! * [`store`] — [`ReplicatedStore`], the
//!   [`StableStorage`](ckpt_storage::StableStorage) backend tying it
//!   together over the `ckpt-par` worker pool;
//! * [`stripe`] — [`StripedStore`], K independent quorum sets behind one
//!   facade so commits to different key lineages overlap in virtual time.

pub mod backoff;
pub mod node;
pub mod store;
pub mod stripe;

pub use backoff::{Backoff, BackoffPolicy, RetriesExhausted};
pub use node::{fnv1a64, Admission, Frame, Probe, ReplicaNode, ReplicaSet};
pub use store::{ReplStats, ReplicaConfig, ReplicatedStore};
pub use stripe::{stripe_route, StripedReplicaSet, StripedStore};
