//! Kernel timers: one-shot and periodic, with data-only actions (no
//! closures, so kernel state stays cloneable and deterministic).

use crate::signal::Sig;
use crate::types::{KtId, Pid};

/// What a timer does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimerAction {
    /// Post a signal to a process (this is how `alarm`/`setitimer` deliver
    /// `SIGALRM`, and how automatic-initiation policies trigger checkpoint
    /// signals).
    SendSignal { pid: Pid, sig: Sig },
    /// Wake a kernel thread.
    WakeKThread(KtId),
    /// Dispatch to the owning module's `timer_event` hook with a tag.
    ModuleEvent { module: String, tag: u64 },
}

/// Handle for cancelling a timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u64);

/// A registered timer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timer {
    pub id: TimerId,
    /// Absolute virtual time of the next firing.
    pub at: u64,
    /// Re-arm period; `None` for one-shot.
    pub period: Option<u64>,
    pub action: TimerAction,
    /// Owning process, if any — timers owned by a process are cancelled
    /// when it exits and are part of its checkpointable state.
    pub owner: Option<Pid>,
}

/// The timer list. Deterministic: ties fire in registration order.
#[derive(Debug, Clone, Default)]
pub struct TimerWheel {
    timers: Vec<Timer>,
    next_id: u64,
}

impl TimerWheel {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn arm(
        &mut self,
        at: u64,
        period: Option<u64>,
        action: TimerAction,
        owner: Option<Pid>,
    ) -> TimerId {
        self.next_id += 1;
        let id = TimerId(self.next_id);
        self.timers.push(Timer {
            id,
            at,
            period,
            action,
            owner,
        });
        id
    }

    pub fn cancel(&mut self, id: TimerId) -> bool {
        let before = self.timers.len();
        self.timers.retain(|t| t.id != id);
        self.timers.len() != before
    }

    /// Cancel all timers owned by a process (on exit).
    pub fn cancel_owned(&mut self, pid: Pid) -> usize {
        let before = self.timers.len();
        self.timers.retain(|t| t.owner != Some(pid));
        before - self.timers.len()
    }

    /// Earliest pending fire time.
    pub fn next_at(&self) -> Option<u64> {
        self.timers.iter().map(|t| t.at).min()
    }

    /// Pop every timer due at or before `now`, re-arming periodic ones.
    /// Returned in (fire-time, registration) order.
    pub fn take_due(&mut self, now: u64) -> Vec<Timer> {
        let mut due: Vec<Timer> = Vec::new();
        for t in self.timers.iter_mut() {
            if t.at <= now {
                due.push(t.clone());
                if let Some(p) = t.period {
                    // Skip forward past `now` to avoid a firing storm after
                    // long idle gaps.
                    let mut next = t.at + p;
                    while next <= now {
                        next += p;
                    }
                    t.at = next;
                }
            }
        }
        self.timers.retain(|t| t.period.is_some() || t.at > now);
        due.sort_by_key(|t| (t.at, t.id.0));
        due
    }

    /// All timers owned by `pid` (for checkpointing itimer state).
    pub fn owned_by(&self, pid: Pid) -> Vec<Timer> {
        self.timers
            .iter()
            .filter(|t| t.owner == Some(pid))
            .cloned()
            .collect()
    }

    pub fn len(&self) -> usize {
        self.timers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.timers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig_action(pid: u32) -> TimerAction {
        TimerAction::SendSignal {
            pid: Pid(pid),
            sig: Sig::SIGALRM,
        }
    }

    #[test]
    fn one_shot_fires_once() {
        let mut w = TimerWheel::new();
        w.arm(100, None, sig_action(1), Some(Pid(1)));
        assert!(w.take_due(50).is_empty());
        let due = w.take_due(100);
        assert_eq!(due.len(), 1);
        assert!(w.is_empty());
    }

    #[test]
    fn periodic_rearms_past_now() {
        let mut w = TimerWheel::new();
        w.arm(100, Some(100), sig_action(1), None);
        assert_eq!(w.take_due(100).len(), 1);
        // After a long idle gap, only one firing is reported and the timer
        // re-arms beyond `now`.
        let due = w.take_due(1050);
        assert_eq!(due.len(), 1);
        assert_eq!(w.next_at(), Some(1100));
    }

    #[test]
    fn cancel_and_cancel_owned() {
        let mut w = TimerWheel::new();
        let a = w.arm(10, None, sig_action(1), Some(Pid(1)));
        w.arm(20, None, sig_action(2), Some(Pid(2)));
        w.arm(30, None, sig_action(2), Some(Pid(2)));
        assert!(w.cancel(a));
        assert!(!w.cancel(a));
        assert_eq!(w.cancel_owned(Pid(2)), 2);
        assert!(w.is_empty());
    }

    #[test]
    fn due_order_is_time_then_registration() {
        let mut w = TimerWheel::new();
        w.arm(20, None, sig_action(1), None);
        w.arm(10, None, sig_action(2), None);
        w.arm(10, None, sig_action(3), None);
        let due = w.take_due(25);
        let pids: Vec<u32> = due
            .iter()
            .map(|t| match &t.action {
                TimerAction::SendSignal { pid, .. } => pid.0,
                _ => 0,
            })
            .collect();
        assert_eq!(pids, vec![2, 3, 1]);
    }

    #[test]
    fn owned_by_lists_process_timers() {
        let mut w = TimerWheel::new();
        w.arm(10, Some(5), sig_action(7), Some(Pid(7)));
        w.arm(10, None, sig_action(8), Some(Pid(8)));
        let mine = w.owned_by(Pid(7));
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].period, Some(5));
    }
}
