//! Signals: numbers, actions, pending sets, masks, and the reentrancy
//! hazard model.
//!
//! Two aspects matter for the paper's arguments:
//!
//! 1. **Delivery is deferred** to the next kernel→user transition in the
//!    context of the target process — so both the user-level signal scheme
//!    (Section 3) and the kernel-mode signal handler scheme (Section 4.1,
//!    CHPOX/Software Suspend) inherit unbounded delivery latency under load.
//! 2. **User handlers are not reentrancy-safe**: if a signal interrupts the
//!    process inside a non-reentrant C-library region (`malloc`/`free`) and
//!    the handler itself calls such functions, the real system may deadlock.
//!    We record these hazards ([`SignalState::hazards`]) instead of
//!    deadlocking, so experiments can count them.

use std::collections::VecDeque;

/// Signal numbers (the subset the simulator models).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sig(pub u32);

impl Sig {
    pub const SIGKILL: Sig = Sig(9);
    pub const SIGSEGV: Sig = Sig(11);
    pub const SIGALRM: Sig = Sig(14);
    pub const SIGTERM: Sig = Sig(15);
    pub const SIGCHLD: Sig = Sig(17);
    pub const SIGSTOP: Sig = Sig(19);
    pub const SIGCONT: Sig = Sig(18);
    pub const SIGUSR1: Sig = Sig(10);
    pub const SIGUSR2: Sig = Sig(12);
    pub const SIGSYS: Sig = Sig(31);
    /// The "new default kernel signal" several surveyed systems add
    /// (EPCKPT, CHPOX, Software Suspend). Its default action is a
    /// kernel-level checkpoint/freeze, installed by a kernel module.
    pub const SIGCKPT: Sig = Sig(33);
    /// Highest signal number we track in masks.
    pub const MAX: u32 = 64;

    pub fn bit(self) -> u64 {
        1u64 << (self.0 % 64)
    }
}

impl std::fmt::Display for Sig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match *self {
            Sig::SIGKILL => "SIGKILL",
            Sig::SIGSEGV => "SIGSEGV",
            Sig::SIGALRM => "SIGALRM",
            Sig::SIGTERM => "SIGTERM",
            Sig::SIGCHLD => "SIGCHLD",
            Sig::SIGSTOP => "SIGSTOP",
            Sig::SIGCONT => "SIGCONT",
            Sig::SIGUSR1 => "SIGUSR1",
            Sig::SIGUSR2 => "SIGUSR2",
            Sig::SIGSYS => "SIGSYS",
            Sig::SIGCKPT => "SIGCKPT",
            _ => return write!(f, "SIG{}", self.0),
        };
        f.write_str(name)
    }
}

/// What a user-level handler does when invoked. Guest VM programs install
/// `VmFunction` handlers (a code address); native guests install *runtime*
/// handlers — behaviours executed by the modelled user-level checkpoint
/// library (see `userrt`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UserHandlerKind {
    /// Jump to guest code at this address (VM programs).
    VmFunction(u64),
    /// The user-level checkpoint library's periodic-checkpoint handler
    /// (libckpt/Esky/Condor style).
    CkptLibCheckpoint,
    /// The user-level incremental-tracking SIGSEGV handler: record dirty
    /// page in a user-space bitmap, `mprotect` the page writable, return.
    DirtyTrackSegv,
    /// Handler that just counts invocations (test instrumentation).
    CountOnly,
}

/// Disposition of a signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigAction {
    /// The kernel's default action for this signal.
    Default,
    /// Ignore.
    Ignore,
    /// A user-level handler. `uses_non_reentrant` marks handlers that call
    /// async-signal-unsafe functions (e.g. `malloc`) — the hazard the paper
    /// warns about.
    Handler {
        kind: UserHandlerKind,
        uses_non_reentrant: bool,
    },
}

/// Default actions the kernel applies for `SigAction::Default`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefaultAction {
    Terminate,
    Ignore,
    Stop,
    Continue,
    /// Kernel-level checkpoint of the receiving process (installed for
    /// [`Sig::SIGCKPT`] by checkpoint kernel modules — the CHPOX scheme).
    KernelCheckpoint,
}

/// The kernel's built-in default action table; modules may override
/// per-kernel (not per-process) defaults for new signals.
pub fn builtin_default_action(sig: Sig) -> DefaultAction {
    match sig {
        Sig::SIGCHLD | Sig::SIGCONT => DefaultAction::Ignore,
        Sig::SIGSTOP => DefaultAction::Stop,
        _ => DefaultAction::Terminate,
    }
}

/// A recorded reentrancy hazard: a handler that uses non-reentrant library
/// functions ran while the main program was itself inside a non-reentrant
/// region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReentrancyHazard {
    pub sig: Sig,
    pub at_ns: u64,
    pub detail: &'static str,
}

/// Per-process signal state.
#[derive(Debug, Clone)]
pub struct SignalState {
    actions: Vec<SigAction>, // indexed by signal number
    /// Signals queued for delivery, in arrival order.
    pub pending: VecDeque<Sig>,
    /// Blocked-signal mask (bit per signal).
    pub mask: u64,
    /// Depth of nested user-handler execution.
    pub in_handler: u32,
    /// Non-zero while the guest is (modelled as) inside a non-reentrant
    /// C-library region such as `malloc`.
    pub non_reentrant_depth: u32,
    /// Recorded hazards (see module docs).
    pub hazards: Vec<ReentrancyHazard>,
}

impl Default for SignalState {
    fn default() -> Self {
        Self::new()
    }
}

impl SignalState {
    pub fn new() -> Self {
        SignalState {
            actions: vec![SigAction::Default; Sig::MAX as usize + 1],
            pending: VecDeque::new(),
            mask: 0,
            in_handler: 0,
            non_reentrant_depth: 0,
            hazards: Vec::new(),
        }
    }

    /// Install a disposition (mirrors `sigaction`). SIGKILL/SIGSTOP cannot
    /// be caught or ignored.
    #[allow(clippy::result_unit_err)] // maps to a single errno at the syscall layer
    pub fn set_action(&mut self, sig: Sig, act: SigAction) -> Result<(), ()> {
        if sig == Sig::SIGKILL || sig == Sig::SIGSTOP {
            return Err(());
        }
        if sig.0 as usize >= self.actions.len() {
            return Err(());
        }
        self.actions[sig.0 as usize] = act;
        Ok(())
    }

    pub fn action(&self, sig: Sig) -> &SigAction {
        self.actions
            .get(sig.0 as usize)
            .unwrap_or(&SigAction::Default)
    }

    /// Queue a signal (mirrors the kernel marking a signal pending in the
    /// target's task structure). Duplicate standard signals coalesce.
    pub fn post(&mut self, sig: Sig) {
        if !self.pending.contains(&sig) {
            self.pending.push_back(sig);
        }
    }

    /// True if `sig` is blocked by the current mask.
    pub fn blocked(&self, sig: Sig) -> bool {
        if sig == Sig::SIGKILL || sig == Sig::SIGSTOP {
            return false; // unblockable
        }
        self.mask & sig.bit() != 0
    }

    /// Take the next deliverable (pending, unblocked) signal.
    pub fn take_deliverable(&mut self) -> Option<Sig> {
        let idx = self
            .pending
            .iter()
            .position(|s| !self.blocked(*s))?;
        self.pending.remove(idx)
    }

    /// The pending set as a bitmask (mirrors `sigpending`).
    pub fn pending_mask(&self) -> u64 {
        self.pending.iter().fold(0, |m, s| m | s.bit())
    }

    /// Record a hazard.
    pub fn note_hazard(&mut self, sig: Sig, at_ns: u64, detail: &'static str) {
        self.hazards.push(ReentrancyHazard { sig, at_ns, detail });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_and_stop_cannot_be_caught() {
        let mut s = SignalState::new();
        assert!(s.set_action(Sig::SIGKILL, SigAction::Ignore).is_err());
        assert!(s
            .set_action(
                Sig::SIGSTOP,
                SigAction::Handler {
                    kind: UserHandlerKind::CountOnly,
                    uses_non_reentrant: false
                }
            )
            .is_err());
        assert!(s.set_action(Sig::SIGUSR1, SigAction::Ignore).is_ok());
    }

    #[test]
    fn pending_signals_coalesce() {
        let mut s = SignalState::new();
        s.post(Sig::SIGUSR1);
        s.post(Sig::SIGUSR1);
        s.post(Sig::SIGUSR2);
        assert_eq!(s.pending.len(), 2);
    }

    #[test]
    fn mask_blocks_delivery_but_not_sigkill() {
        let mut s = SignalState::new();
        s.mask = Sig::SIGUSR1.bit() | Sig::SIGKILL.bit();
        s.post(Sig::SIGUSR1);
        assert_eq!(s.take_deliverable(), None);
        s.post(Sig::SIGKILL);
        assert_eq!(s.take_deliverable(), Some(Sig::SIGKILL));
        // SIGUSR1 still pending.
        assert_eq!(s.pending_mask() & Sig::SIGUSR1.bit(), Sig::SIGUSR1.bit());
        s.mask = 0;
        assert_eq!(s.take_deliverable(), Some(Sig::SIGUSR1));
    }

    #[test]
    fn delivery_is_fifo_among_unblocked() {
        let mut s = SignalState::new();
        s.post(Sig::SIGUSR2);
        s.post(Sig::SIGUSR1);
        assert_eq!(s.take_deliverable(), Some(Sig::SIGUSR2));
        assert_eq!(s.take_deliverable(), Some(Sig::SIGUSR1));
        assert_eq!(s.take_deliverable(), None);
    }

    #[test]
    fn default_actions() {
        assert_eq!(
            builtin_default_action(Sig::SIGTERM),
            DefaultAction::Terminate
        );
        assert_eq!(builtin_default_action(Sig::SIGCHLD), DefaultAction::Ignore);
        assert_eq!(builtin_default_action(Sig::SIGSTOP), DefaultAction::Stop);
    }

    #[test]
    fn pending_mask_reflects_queue() {
        let mut s = SignalState::new();
        s.post(Sig::SIGALRM);
        s.post(Sig::SIGCKPT);
        let m = s.pending_mask();
        assert_ne!(m & Sig::SIGALRM.bit(), 0);
        assert_ne!(m & Sig::SIGCKPT.bit(), 0);
        assert_eq!(m & Sig::SIGUSR1.bit(), 0);
    }

    #[test]
    fn hazards_are_recorded() {
        let mut s = SignalState::new();
        s.note_hazard(Sig::SIGALRM, 42, "malloc reentered");
        assert_eq!(s.hazards.len(), 1);
        assert_eq!(s.hazards[0].at_ns, 42);
    }

    #[test]
    fn sig_display() {
        assert_eq!(Sig::SIGCKPT.to_string(), "SIGCKPT");
        assert_eq!(Sig(40).to_string(), "SIG40");
    }
}
