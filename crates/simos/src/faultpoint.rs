//! # faultpoint — deterministic crash/fault injection sites
//!
//! The paper's stable-storage argument (Section 4.3) is a claim about what
//! survives a fail-stop *mid-checkpoint*, yet nothing in a typical C/R
//! stack ever exercises that window. This module provides named, enumerable
//! injection sites threaded through the kernel, every mechanism family, the
//! storage backends, and the image chain loader, so a driver can run the
//! full cross product of (site × fault kind) and check that every cell ends
//! in either a bit-exact restart or a typed detection error.
//!
//! ## Zero cost when disabled
//!
//! Like [`crate::trace::TraceHandle`], the default handle on every kernel
//! is the no-op sink: each site costs one relaxed atomic load and charges
//! no virtual time, so compiling the sites in cannot perturb an experiment
//! (`report all` stays byte-identical).
//!
//! ## Site identity
//!
//! A site name is `<group>/<point>@<n>` where `<n>` is the 1-based visit
//! ordinal of `<group>/<point>` within one run — e.g. the *store* phase of
//! the second checkpoint of the `crak` mechanism is `mech/crak/store@2`.
//! Because the simulator is deterministic, a [`FaultHandle::recording`]
//! run enumerates exactly the sites an identically-configured
//! [`FaultHandle::armed`] run will visit, in the same order.
//!
//! ## Fault kinds
//!
//! * [`Fault::FailStop`] — the node dies at the site: the kernel's
//!   scheduler loop refuses to run ([`crate::types::SimError::InjectedFault`])
//!   until the handle's crash flag is cleared (modelling repair/replacement).
//! * [`Fault::TornWrite`] — only a prefix of the payload reaches the
//!   medium, then the node dies (storage sites only).
//! * [`Fault::Transient`] — the operation fails once with a typed error;
//!   the node stays up.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// What an armed site injects when reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail-stop: the node dies at the site.
    FailStop,
    /// A torn write: only the first `keep_bytes` of the payload persist,
    /// then the node dies. Meaningful only at storage `store` sites.
    TornWrite { keep_bytes: u64 },
    /// A one-shot transient error; the node survives.
    Transient,
}

impl Fault {
    pub fn label(self) -> &'static str {
        match self {
            Fault::FailStop => "fail-stop",
            Fault::TornWrite { .. } => "torn-write",
            Fault::Transient => "transient",
        }
    }
}

/// One site visited during a recording run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteRecord {
    /// Full site name, including the visit ordinal (`mech/crak/store@2`).
    pub name: String,
    /// Payload size at the site (store sites record the encoded image
    /// length, so a driver can choose torn-write offsets); 0 elsewhere.
    pub bytes: u64,
}

const MODE_OFF: u8 = 0;
const MODE_RECORDING: u8 = 1;
const MODE_ARMED: u8 = 2;

#[derive(Default)]
struct Data {
    /// Visit counts per base site name (group/point), for ordinals.
    counts: BTreeMap<String, u64>,
    /// Sites visited, in order (recording mode).
    sites: Vec<SiteRecord>,
    /// The armed site's full name (armed mode).
    armed_site: String,
    armed_fault: Option<Fault>,
    /// The site at which the armed fault fired (one-shot).
    fired: Option<String>,
}

struct Inner {
    mode: AtomicU8,
    crashed: AtomicBool,
    data: Mutex<Data>,
}

/// A cloneable handle to a fault-injection plan. The default handle is the
/// no-op sink: every site bails on one relaxed atomic load. One handle is
/// shared between a kernel, its storage backends, and the restart path so
/// a single plan covers the whole lifecycle.
#[derive(Clone)]
pub struct FaultHandle(Arc<Inner>);

impl std::fmt::Debug for FaultHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultHandle")
            .field("off", &self.is_off())
            .field("crashed", &self.node_crashed())
            .finish()
    }
}

impl Default for FaultHandle {
    fn default() -> Self {
        FaultHandle::disabled()
    }
}

impl FaultHandle {
    fn with_mode(mode: u8) -> Self {
        FaultHandle(Arc::new(Inner {
            mode: AtomicU8::new(mode),
            crashed: AtomicBool::new(false),
            data: Mutex::new(Data::default()),
        }))
    }

    /// The no-op sink (the default on every kernel): sites cost one relaxed
    /// atomic load and never fire.
    pub fn disabled() -> Self {
        FaultHandle::with_mode(MODE_OFF)
    }

    /// A recording handle: every site visited is appended to [`sites`]
    /// (with its payload size) and nothing ever fires.
    ///
    /// [`sites`]: FaultHandle::sites
    pub fn recording() -> Self {
        FaultHandle::with_mode(MODE_RECORDING)
    }

    /// A handle armed to inject `fault` the first time `site` (a full name
    /// from a recording run, ordinal included) is reached.
    pub fn armed(site: &str, fault: Fault) -> Self {
        let h = FaultHandle::with_mode(MODE_ARMED);
        {
            let mut d = h.0.data.lock().unwrap();
            d.armed_site = site.to_string();
            d.armed_fault = Some(fault);
        }
        h
    }

    /// Whether this is the no-op sink (one relaxed load — the entire cost
    /// of a site when injection is disabled).
    #[inline]
    pub fn is_off(&self) -> bool {
        self.0.mode.load(Ordering::Relaxed) == MODE_OFF
    }

    /// Whether an injected fail-stop has killed the owning node. Cleared by
    /// [`clear_crash`] when the driver models repair/replacement.
    ///
    /// [`clear_crash`]: FaultHandle::clear_crash
    #[inline]
    pub fn node_crashed(&self) -> bool {
        self.0.crashed.load(Ordering::Relaxed)
    }

    /// Mark the node dead (used by storage shims after persisting a torn
    /// prefix, where the fault semantics are "write cut short by the
    /// crash").
    pub fn set_crashed(&self) {
        self.0.crashed.store(true, Ordering::Relaxed);
    }

    /// Model repair: a replacement node may run again. The armed fault
    /// stays consumed ([`fired`] still reports where it hit).
    ///
    /// [`fired`]: FaultHandle::fired
    pub fn clear_crash(&self) {
        self.0.crashed.store(false, Ordering::Relaxed);
    }

    /// Visit a site. `base` is `<group>/<point>` (the ordinal is appended
    /// internally); `bytes` is the payload size for store sites. Returns
    /// the fault to inject, if this visit matches the armed site and the
    /// plan has not fired yet. For [`Fault::FailStop`] the crash flag is
    /// set as a side effect.
    pub fn check(&self, base: &str, bytes: u64) -> Option<Fault> {
        if self.is_off() {
            return None;
        }
        let mode = self.0.mode.load(Ordering::Relaxed);
        let mut d = self.0.data.lock().unwrap();
        let n = d.counts.entry(base.to_string()).or_insert(0);
        *n += 1;
        let full = format!("{base}@{n}");
        match mode {
            MODE_RECORDING => {
                d.sites.push(SiteRecord { name: full, bytes });
                None
            }
            MODE_ARMED => {
                if d.fired.is_none() && d.armed_site == full {
                    let fault = d.armed_fault.expect("armed handle has a fault");
                    d.fired = Some(full);
                    drop(d);
                    if fault == Fault::FailStop {
                        self.set_crashed();
                    }
                    Some(fault)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// The sites visited so far (recording mode), in order.
    pub fn sites(&self) -> Vec<SiteRecord> {
        if self.is_off() {
            return Vec::new();
        }
        self.0.data.lock().unwrap().sites.clone()
    }

    /// Where the armed fault fired, if it has.
    pub fn fired(&self) -> Option<String> {
        if self.is_off() {
            return None;
        }
        self.0.data.lock().unwrap().fired.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_and_fires_nothing() {
        let h = FaultHandle::disabled();
        assert!(h.is_off());
        assert_eq!(h.check("mech/x/freeze", 0), None);
        assert!(h.sites().is_empty());
        assert_eq!(h.fired(), None);
        assert!(!h.node_crashed());
    }

    #[test]
    fn recording_enumerates_sites_with_ordinals() {
        let h = FaultHandle::recording();
        h.check("mech/x/freeze", 0);
        h.check("mech/x/store", 100);
        h.check("mech/x/freeze", 0);
        let names: Vec<String> = h.sites().into_iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["mech/x/freeze@1", "mech/x/store@1", "mech/x/freeze@2"]
        );
        assert_eq!(h.sites()[1].bytes, 100);
    }

    #[test]
    fn armed_handle_fires_once_at_the_named_visit() {
        let h = FaultHandle::armed("mech/x/freeze@2", Fault::Transient);
        assert_eq!(h.check("mech/x/freeze", 0), None, "first visit passes");
        assert_eq!(h.check("mech/x/freeze", 0), Some(Fault::Transient));
        assert_eq!(h.fired().as_deref(), Some("mech/x/freeze@2"));
        assert_eq!(h.check("mech/x/freeze", 0), None, "one-shot");
        assert!(!h.node_crashed(), "transient faults keep the node up");
    }

    #[test]
    fn fail_stop_sets_and_clears_the_crash_flag() {
        let h = FaultHandle::armed("mech/x/store@1", Fault::FailStop);
        assert_eq!(h.check("mech/x/store", 64), Some(Fault::FailStop));
        assert!(h.node_crashed());
        h.clear_crash();
        assert!(!h.node_crashed());
        assert_eq!(h.fired().as_deref(), Some("mech/x/store@1"), "stays consumed");
    }
}
