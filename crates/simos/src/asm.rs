//! A two-pass assembler for the guest mini-ISA, plus a few canned programs
//! used by tests, examples, and experiments.

use crate::vm::{encode, sysno, Instr};
use std::collections::BTreeMap;

/// Register aliases.
pub const SP: u8 = 14;
pub const LR: u8 = 15;

#[derive(Debug, Clone)]
enum Item {
    Instr(Instr),
    /// Branch to a label: patched in pass two (op selects BEQ/BNE/BLTU).
    Branch { op: u8, a: u8, b: u8, label: String },
    /// Jump (JMP/JAL) to a label.
    Jump { link: bool, label: String },
}

/// Errors the assembler can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    DuplicateLabel(String),
    UnknownLabel(String),
    BranchOutOfRange { label: String, distance: i64 },
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label {l}"),
            AsmError::UnknownLabel(l) => write!(f, "unknown label {l}"),
            AsmError::BranchOutOfRange { label, distance } => {
                write!(f, "branch to {label} out of range ({distance} instrs)")
            }
        }
    }
}

impl std::error::Error for AsmError {}

/// The assembler. Emit instructions through the builder methods, then call
/// [`Assembler::assemble`].
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    items: Vec<Item>,
    labels: BTreeMap<String, usize>,
}

impl Assembler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Define a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        // Duplicate detection deferred to assemble() so the builder chain
        // stays infallible; last definition wins is NOT allowed.
        self.labels
            .entry(name.to_string())
            .and_modify(|v| *v = usize::MAX) // poison duplicates
            .or_insert(self.items.len());
        self
    }

    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instr::Halt)
    }

    /// Load an arbitrary 32-bit immediate (expands to LI or LI+LUI).
    pub fn li(&mut self, a: u8, val: u32) -> &mut Self {
        self.push(Instr::Li {
            a,
            imm: (val & 0xFFFF) as u16,
        });
        if val > 0xFFFF {
            self.push(Instr::Lui {
                a,
                imm: (val >> 16) as u16,
            });
        }
        self
    }

    pub fn mov(&mut self, a: u8, b: u8) -> &mut Self {
        self.push(Instr::Mov { a, b })
    }
    pub fn add(&mut self, a: u8, b: u8, c: u8) -> &mut Self {
        self.push(Instr::Add { a, b, c })
    }
    pub fn sub(&mut self, a: u8, b: u8, c: u8) -> &mut Self {
        self.push(Instr::Sub { a, b, c })
    }
    pub fn mul(&mut self, a: u8, b: u8, c: u8) -> &mut Self {
        self.push(Instr::Mul { a, b, c })
    }
    pub fn divu(&mut self, a: u8, b: u8, c: u8) -> &mut Self {
        self.push(Instr::Divu { a, b, c })
    }
    pub fn addi(&mut self, a: u8, b: u8, simm: i8) -> &mut Self {
        self.push(Instr::Addi { a, b, simm })
    }
    pub fn and(&mut self, a: u8, b: u8, c: u8) -> &mut Self {
        self.push(Instr::And { a, b, c })
    }
    pub fn or(&mut self, a: u8, b: u8, c: u8) -> &mut Self {
        self.push(Instr::Or { a, b, c })
    }
    pub fn xor(&mut self, a: u8, b: u8, c: u8) -> &mut Self {
        self.push(Instr::Xor { a, b, c })
    }
    pub fn shl(&mut self, a: u8, b: u8, c: u8) -> &mut Self {
        self.push(Instr::Shl { a, b, c })
    }
    pub fn shr(&mut self, a: u8, b: u8, c: u8) -> &mut Self {
        self.push(Instr::Shr { a, b, c })
    }
    pub fn lw(&mut self, a: u8, b: u8, simm: i8) -> &mut Self {
        self.push(Instr::Lw { a, b, simm })
    }
    pub fn sw(&mut self, a: u8, b: u8, simm: i8) -> &mut Self {
        self.push(Instr::Sw { a, b, simm })
    }
    pub fn lb(&mut self, a: u8, b: u8, simm: i8) -> &mut Self {
        self.push(Instr::Lb { a, b, simm })
    }
    pub fn sb(&mut self, a: u8, b: u8, simm: i8) -> &mut Self {
        self.push(Instr::Sb { a, b, simm })
    }
    pub fn beq(&mut self, a: u8, b: u8, label: &str) -> &mut Self {
        self.items.push(Item::Branch {
            op: 0,
            a,
            b,
            label: label.into(),
        });
        self
    }
    pub fn bne(&mut self, a: u8, b: u8, label: &str) -> &mut Self {
        self.items.push(Item::Branch {
            op: 1,
            a,
            b,
            label: label.into(),
        });
        self
    }
    pub fn bltu(&mut self, a: u8, b: u8, label: &str) -> &mut Self {
        self.items.push(Item::Branch {
            op: 2,
            a,
            b,
            label: label.into(),
        });
        self
    }
    pub fn jmp(&mut self, label: &str) -> &mut Self {
        self.items.push(Item::Jump {
            link: false,
            label: label.into(),
        });
        self
    }
    pub fn jal(&mut self, label: &str) -> &mut Self {
        self.items.push(Item::Jump {
            link: true,
            label: label.into(),
        });
        self
    }
    pub fn jr(&mut self, a: u8) -> &mut Self {
        self.push(Instr::Jr { a })
    }
    pub fn sys(&mut self) -> &mut Self {
        self.push(Instr::Sys)
    }
    pub fn malloc_enter(&mut self) -> &mut Self {
        self.push(Instr::MallocEnter)
    }
    pub fn malloc_exit(&mut self) -> &mut Self {
        self.push(Instr::MallocExit)
    }
    pub fn sret(&mut self) -> &mut Self {
        self.push(Instr::Sret)
    }

    fn push(&mut self, i: Instr) -> &mut Self {
        self.items.push(Item::Instr(i));
        self
    }

    /// Number of instruction words emitted so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Resolve labels and produce the text image.
    pub fn assemble(&self) -> Result<Vec<u32>, AsmError> {
        for (name, pos) in &self.labels {
            if *pos == usize::MAX {
                return Err(AsmError::DuplicateLabel(name.clone()));
            }
        }
        let resolve = |label: &str| -> Result<usize, AsmError> {
            self.labels
                .get(label)
                .copied()
                .ok_or_else(|| AsmError::UnknownLabel(label.to_string()))
        };
        let mut out = Vec::with_capacity(self.items.len());
        for (idx, item) in self.items.iter().enumerate() {
            let word = match item {
                Item::Instr(i) => encode(*i),
                Item::Branch { op, a, b, label } => {
                    let target = resolve(label)? as i64;
                    let dist = target - (idx as i64 + 1);
                    if !(-128..=127).contains(&dist) {
                        return Err(AsmError::BranchOutOfRange {
                            label: label.clone(),
                            distance: dist,
                        });
                    }
                    let simm = dist as i8;
                    encode(match op {
                        0 => Instr::Beq { a: *a, b: *b, simm },
                        1 => Instr::Bne { a: *a, b: *b, simm },
                        _ => Instr::Bltu { a: *a, b: *b, simm },
                    })
                }
                Item::Jump { link, label } => {
                    let target = resolve(label)? as u32;
                    encode(if *link {
                        Instr::Jal { imm: target }
                    } else {
                        Instr::Jmp { imm: target }
                    })
                }
            };
            out.push(word);
        }
        Ok(out)
    }
}

/// Canned programs.
pub mod programs {
    use super::*;
    use crate::mem::DATA_BASE;

    /// Count from 0 to `n`, storing the counter at `DATA_BASE` each
    /// iteration, then exit with code 0. The stored counter makes progress
    /// observable in memory (and therefore in checkpoints).
    pub fn counter(n: u32) -> Vec<u32> {
        let mut a = Assembler::new();
        a.li(1, 0); // r1 = i
        a.li(2, n); // r2 = n
        a.li(3, DATA_BASE as u32); // r3 = &counter
        a.label("loop");
        a.sw(1, 3, 0); // store i
        a.addi(1, 1, 1);
        a.bltu(1, 2, "loop");
        a.sw(1, 3, 0); // final value
        a.li(0, sysno::EXIT as u32);
        a.li(1, 0);
        a.sys();
        a.halt();
        a.assemble().expect("counter program assembles")
    }

    /// Sum the integers `1..=n` into `DATA_BASE`, exit with the low 8 bits
    /// of the sum as the exit code. Exercises arithmetic + memory.
    pub fn summer(n: u32) -> Vec<u32> {
        let mut a = Assembler::new();
        a.li(1, 0); // acc
        a.li(2, 1); // i
        a.li(3, n); // n
        a.li(4, DATA_BASE as u32);
        a.li(5, 1);
        a.label("loop");
        a.add(1, 1, 2); // acc += i
        a.sw(1, 4, 0);
        a.add(2, 2, 5); // i += 1
        a.li(6, 0);
        a.bltu(3, 2, "done"); // if n < i: done
        a.jmp("loop");
        a.label("done");
        a.li(0, sysno::EXIT as u32);
        a.li(6, 0xFF);
        a.and(1, 1, 6);
        a.mov(1, 1);
        a.sys();
        a.halt();
        a.assemble().expect("summer assembles")
    }

    /// Install a counting signal handler for the given signal, then loop
    /// forever incrementing `DATA_BASE` and a handler-invocation counter at
    /// `DATA_BASE+8` (incremented from the handler via guest code).
    pub fn signal_loop(sig: u32) -> Vec<u32> {
        let mut a = Assembler::new();
        // sigaction(sig, handler). Handler address is an instruction index
        // converted by the kernel; we pass the label index via JAL-style
        // resolution: place handler at a known label and compute its pc.
        // The kernel's sigaction for VM programs takes an instruction index.
        a.li(1, sig);
        // r2 = handler instruction index — patched below: we know the
        // handler label index only after layout, so emit placeholder and
        // fix: instead, emit the main loop first at fixed indices.
        // Layout: [0..6) prologue, handler at "handler".
        a.li(2, 20); // handler instruction index (see padding below)
        a.li(0, sysno::SIGACTION as u32);
        a.sys();
        a.li(3, DATA_BASE as u32);
        a.li(4, 1);
        a.label("loop");
        a.lw(5, 3, 0);
        a.add(5, 5, 4);
        a.sw(5, 3, 0);
        a.jmp("loop");
        // Pad to instruction index 20.
        while a.len() < 20 {
            a.nop();
        }
        a.label("handler");
        a.li(6, DATA_BASE as u32);
        a.lw(7, 6, 8);
        a.li(8, 1);
        a.add(7, 7, 8);
        a.sw(7, 6, 8);
        a.sret();
        a.assemble().expect("signal_loop assembles")
    }


    /// Open `/tmp/v`, write the 8-byte counter at `DATA_BASE` to it twice
    /// (two write syscalls sharing the fd offset), then exit with the
    /// total number of bytes written. Exercises fd state (offsets) under
    /// checkpointing.
    pub fn file_writer() -> Vec<u32> {
        let mut a = Assembler::new();
        // Store the path "/tmp/v" at DATA_BASE+64.
        let path = b"/tmp/v";
        a.li(3, DATA_BASE as u32 + 64);
        for (i, ch) in path.iter().enumerate() {
            a.li(4, *ch as u32);
            a.sb(4, 3, i as i8);
        }
        // counter value to write lives at DATA_BASE.
        a.li(5, DATA_BASE as u32);
        a.li(6, 12345);
        a.sw(6, 5, 0);
        // open(path, len, flags=write|create)
        a.li(0, sysno::OPEN as u32);
        a.mov(1, 3);
        a.li(2, path.len() as u32);
        a.li(3, 2 | 4);
        a.sys();
        a.mov(7, 0); // fd
        // write(fd, DATA_BASE, 8) twice
        a.li(9, 0); // byte accumulator
        for _ in 0..2 {
            a.li(0, sysno::WRITE as u32);
            a.mov(1, 7);
            a.li(2, DATA_BASE as u32);
            a.li(3, 8);
            a.sys();
            a.add(9, 9, 0);
        }
        // close(fd)
        a.li(0, sysno::CLOSE as u32);
        a.mov(1, 7);
        a.sys();
        // exit(total bytes)
        a.li(0, sysno::EXIT as u32);
        a.mov(1, 9);
        a.sys();
        a.halt();
        a.assemble().expect("file_writer assembles")
    }

    /// Grow the heap with `sbrk`, fill a page with a pattern, sum it back,
    /// store the sum at `DATA_BASE`, and exit 0. Exercises brk state under
    /// checkpointing.
    pub fn heap_user() -> Vec<u32> {
        let mut a = Assembler::new();
        // r1 = old brk = sbrk(4096)
        a.li(0, sysno::SBRK as u32);
        a.li(1, 4096);
        a.sys();
        a.mov(1, 0);
        // write pattern: heap[i] = i for i in 0..64 words
        a.li(2, 0); // i
        a.li(3, 64);
        a.li(6, 8);
        a.mov(7, 1); // cursor
        a.label("fill");
        a.sw(2, 7, 0);
        a.add(7, 7, 6);
        a.addi(2, 2, 1);
        a.bltu(2, 3, "fill");
        // sum back
        a.li(2, 0);
        a.li(4, 0); // acc
        a.mov(7, 1);
        a.label("sum");
        a.lw(5, 7, 0);
        a.add(4, 4, 5);
        a.add(7, 7, 6);
        a.addi(2, 2, 1);
        a.bltu(2, 3, "sum");
        // store sum at DATA_BASE, exit 0
        a.li(8, DATA_BASE as u32);
        a.sw(4, 8, 0);
        a.li(0, sysno::EXIT as u32);
        a.li(1, 0);
        a.sys();
        a.halt();
        a.assemble().expect("heap_user assembles")
    }

    /// A program that mostly sits inside `malloc` (non-reentrant region),
    /// incrementing a counter — used to provoke reentrancy hazards when a
    /// user-level checkpoint handler fires.
    pub fn malloc_heavy() -> Vec<u32> {
        let mut a = Assembler::new();
        a.li(3, DATA_BASE as u32);
        a.li(4, 1);
        a.label("loop");
        a.malloc_enter();
        a.lw(5, 3, 0);
        a.add(5, 5, 4);
        a.sw(5, 3, 0);
        a.malloc_exit();
        a.jmp("loop");
        a.assemble().expect("malloc_heavy assembles")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::decode;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Assembler::new();
        a.label("top");
        a.nop();
        a.beq(0, 0, "end"); // forward
        a.bne(0, 1, "top"); // backward
        a.label("end");
        a.halt();
        let text = a.assemble().unwrap();
        assert_eq!(text.len(), 4);
        match decode(text[1]).unwrap() {
            Instr::Beq { simm, .. } => assert_eq!(simm, 1),
            o => panic!("{o:?}"),
        }
        match decode(text[2]).unwrap() {
            Instr::Bne { simm, .. } => assert_eq!(simm, -3),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn unknown_label_errors() {
        let mut a = Assembler::new();
        a.jmp("nowhere");
        assert_eq!(
            a.assemble(),
            Err(AsmError::UnknownLabel("nowhere".into()))
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let mut a = Assembler::new();
        a.label("x");
        a.nop();
        a.label("x");
        a.halt();
        assert!(matches!(a.assemble(), Err(AsmError::DuplicateLabel(_))));
    }

    #[test]
    fn branch_out_of_range_errors() {
        let mut a = Assembler::new();
        a.beq(0, 0, "far");
        for _ in 0..200 {
            a.nop();
        }
        a.label("far");
        a.halt();
        assert!(matches!(
            a.assemble(),
            Err(AsmError::BranchOutOfRange { .. })
        ));
    }

    #[test]
    fn li_expands_for_large_immediates() {
        let mut a = Assembler::new();
        a.li(1, 0x1234_5678);
        let text = a.assemble().unwrap();
        assert_eq!(text.len(), 2);
        assert!(matches!(decode(text[0]).unwrap(), Instr::Li { .. }));
        assert!(matches!(decode(text[1]).unwrap(), Instr::Lui { .. }));
    }

    #[test]
    fn jmp_targets_are_absolute_instruction_indices() {
        let mut a = Assembler::new();
        a.nop();
        a.nop();
        a.label("t");
        a.halt();
        let mut b = Assembler::new();
        b.jmp("t2");
        b.nop();
        b.label("t2");
        b.halt();
        let text = b.assemble().unwrap();
        match decode(text[0]).unwrap() {
            Instr::Jmp { imm } => assert_eq!(imm, 2),
            o => panic!("{o:?}"),
        }
        drop(a);
    }

    #[test]
    fn canned_programs_assemble() {
        assert!(!programs::counter(10).is_empty());
        assert!(!programs::summer(10).is_empty());
        assert!(!programs::signal_loop(10).is_empty());
        assert!(!programs::malloc_heavy().is_empty());
        assert!(!programs::file_writer().is_empty());
        assert!(!programs::heap_user().is_empty());
    }
}
