//! The calibrated hardware/OS cost model.
//!
//! Every nanosecond of virtual time in the simulator is charged from this
//! table. The defaults ([`CostModel::circa_2005`]) are calibrated to the
//! hardware the paper's era used: user/kernel crossing costs in the range
//! measured by Lai & Baker [20], ~50 MB/s commodity disks, ~200–300 MB/s
//! cluster interconnects (Quadrics-class), and ~1.5 GB/s memory copies.
//!
//! The absolute values matter less than the *ratios*: the paper's arguments
//! are comparative (a syscall round-trip costs more than a direct kernel
//! structure access; an address-space switch invalidates the TLB; remote
//! storage pays network latency but survives node loss). All experiments can
//! be re-run under a different model — `CostModel::modern()` is provided as
//! a sensitivity check.

/// Page size used throughout the simulator (bytes).
pub const PAGE_SIZE: u64 = 4096;

/// Cache-line size used by the hardware-assisted tracking model (bytes).
pub const CACHE_LINE: u64 = 64;

/// All virtual-time charges, in nanoseconds (rates in ns/byte as `f64`).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Crossing from user to kernel mode (trap, register save).
    pub syscall_entry_ns: u64,
    /// Crossing from kernel back to user mode (register restore).
    pub syscall_exit_ns: u64,
    /// Fixed in-kernel dispatch cost of any syscall beyond the crossings.
    pub syscall_dispatch_ns: u64,
    /// Full context switch between two tasks (scheduler bookkeeping).
    pub context_switch_ns: u64,
    /// Switching the active address space (page-table base reload).
    pub addr_space_switch_ns: u64,
    /// Immediate cost of flushing the TLB on an address-space switch.
    pub tlb_flush_ns: u64,
    /// Amortized cost of refilling the TLB after a flush (charged once per
    /// flush; models the burst of misses that follows).
    pub tlb_refill_ns: u64,
    /// Taking a page-fault exception into the kernel.
    pub page_fault_trap_ns: u64,
    /// Delivering a signal to a user handler (frame setup + sigreturn).
    pub signal_deliver_ns: u64,
    /// Per-page cost of changing protections (`mprotect`), beyond crossings.
    pub mprotect_per_page_ns: u64,
    /// Timer-interrupt (tick) handling overhead.
    pub tick_overhead_ns: u64,
    /// Interval between timer ticks.
    pub tick_interval_ns: u64,
    /// Default scheduler timeslice for `SCHED_OTHER` tasks.
    pub timeslice_ns: u64,
    /// One guest VM instruction.
    pub instr_ns: u64,
    /// One iteration-step "unit of work" of a native guest app, excluding
    /// its memory traffic (which is charged via `memcpy_ns_per_byte`).
    pub native_step_ns: u64,
    /// Memory copy rate (ns per byte). 1.5 GB/s ≈ 0.67 ns/B.
    pub memcpy_ns_per_byte: f64,
    /// Hashing rate for block-hash (probabilistic) checkpointing (ns/B).
    pub hash_ns_per_byte: f64,
    /// `fork()` fixed cost (task struct, fd table duplication).
    pub fork_base_ns: u64,
    /// `fork()` per-present-page cost (page-table entry copy + COW marking).
    pub fork_per_page_ns: u64,
    /// Copy-on-write fault servicing one page (trap + copy).
    pub cow_fault_ns: u64,
    /// Run-time overhead added to each interposed syscall by an
    /// `LD_PRELOAD` wrapper (the ZAP/preload virtualization tax).
    pub interpose_ns: u64,
    /// Local disk: seek + rotational latency per operation.
    pub disk_latency_ns: u64,
    /// Local disk: sustained bandwidth (ns per byte). 50 MB/s ≈ 20 ns/B.
    pub disk_ns_per_byte: f64,
    /// Network: one-way message latency.
    pub net_latency_ns: u64,
    /// Network: sustained bandwidth (ns per byte). 250 MB/s ≈ 4 ns/B.
    pub net_ns_per_byte: f64,
    /// RAM-backed store bandwidth (ns per byte).
    pub ram_store_ns_per_byte: f64,
    /// Swap partition write bandwidth (ns per byte) — contiguous, slightly
    /// better than filesystem traffic.
    pub swap_ns_per_byte: f64,
    /// Hardware checkpoint support: per-line logging cost absorbed by the
    /// memory system (ReVive/SafetyNet); effectively free to software.
    pub hw_log_line_ns: u64,
}

impl CostModel {
    /// Parameters representative of the paper's era (2004–2005 commodity
    /// cluster node: ~2 GHz CPU, IDE/early-SATA disk, Quadrics/Myrinet-class
    /// interconnect).
    pub fn circa_2005() -> Self {
        CostModel {
            syscall_entry_ns: 150,
            syscall_exit_ns: 150,
            syscall_dispatch_ns: 100,
            context_switch_ns: 1_500,
            addr_space_switch_ns: 800,
            tlb_flush_ns: 500,
            tlb_refill_ns: 2_500,
            page_fault_trap_ns: 1_200,
            signal_deliver_ns: 2_500,
            mprotect_per_page_ns: 60,
            tick_overhead_ns: 800,
            tick_interval_ns: 10_000_000, // 100 Hz
            timeslice_ns: 50_000_000,     // 50 ms
            instr_ns: 1,
            native_step_ns: 40,
            memcpy_ns_per_byte: 0.67, // ~1.5 GB/s
            hash_ns_per_byte: 1.0,    // ~1 GB/s
            fork_base_ns: 60_000,
            fork_per_page_ns: 120,
            cow_fault_ns: 4_000,
            interpose_ns: 250,
            disk_latency_ns: 8_000_000, // 8 ms
            disk_ns_per_byte: 20.0,     // 50 MB/s
            net_latency_ns: 20_000,     // 20 us
            net_ns_per_byte: 4.0,       // 250 MB/s
            ram_store_ns_per_byte: 0.67,
            swap_ns_per_byte: 18.0,
            hw_log_line_ns: 0,
        }
    }

    /// A modern-hardware variant used as a sensitivity check: the paper's
    /// relative orderings should survive two decades of hardware scaling.
    pub fn modern() -> Self {
        CostModel {
            syscall_entry_ns: 60,
            syscall_exit_ns: 60,
            syscall_dispatch_ns: 40,
            context_switch_ns: 1_000,
            addr_space_switch_ns: 300,
            tlb_flush_ns: 200,
            tlb_refill_ns: 1_000,
            page_fault_trap_ns: 500,
            signal_deliver_ns: 1_000,
            mprotect_per_page_ns: 30,
            tick_overhead_ns: 300,
            tick_interval_ns: 4_000_000, // 250 Hz
            timeslice_ns: 20_000_000,
            instr_ns: 1,
            native_step_ns: 10,
            memcpy_ns_per_byte: 0.05, // ~20 GB/s
            hash_ns_per_byte: 0.1,
            fork_base_ns: 20_000,
            fork_per_page_ns: 40,
            cow_fault_ns: 1_500,
            interpose_ns: 80,
            disk_latency_ns: 100_000, // NVMe
            disk_ns_per_byte: 0.5,    // 2 GB/s
            net_latency_ns: 2_000,
            net_ns_per_byte: 0.08, // ~12 GB/s
            ram_store_ns_per_byte: 0.05,
            swap_ns_per_byte: 0.5,
            hw_log_line_ns: 0,
        }
    }

    /// Cost of copying `bytes` bytes of memory.
    pub fn memcpy(&self, bytes: u64) -> u64 {
        (bytes as f64 * self.memcpy_ns_per_byte).round() as u64
    }

    /// Cost of hashing `bytes` bytes.
    pub fn hash(&self, bytes: u64) -> u64 {
        (bytes as f64 * self.hash_ns_per_byte).round() as u64
    }

    /// Full syscall round-trip cost excluding per-call work.
    pub fn syscall_round_trip(&self) -> u64 {
        self.syscall_entry_ns + self.syscall_dispatch_ns + self.syscall_exit_ns
    }

    /// Cost of an address-space switch including TLB effects.
    pub fn mm_switch(&self) -> u64 {
        self.addr_space_switch_ns + self.tlb_flush_ns + self.tlb_refill_ns
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::circa_2005()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn era_model_ratios_match_paper_arguments() {
        let c = CostModel::circa_2005();
        // A syscall round-trip must cost strictly more than zero and less
        // than a context switch (Lai & Baker ordering).
        assert!(c.syscall_round_trip() > 0);
        assert!(c.syscall_round_trip() < c.context_switch_ns + c.mm_switch());
        // Address-space switch with TLB effects dwarfs a bare context switch
        // increment — the paper's kernel-thread penalty.
        assert!(c.mm_switch() > c.addr_space_switch_ns);
        // Disk is slower than network per byte in this era (the remote
        // checkpointing feasibility point of [31]).
        assert!(c.disk_ns_per_byte > c.net_ns_per_byte);
    }

    #[test]
    fn rates_round_sanely() {
        let c = CostModel::circa_2005();
        assert_eq!(c.memcpy(0), 0);
        assert!(c.memcpy(PAGE_SIZE) > 2_000); // ~2.7 us
        assert!(c.hash(PAGE_SIZE) >= c.memcpy(PAGE_SIZE)); // hashing >= copy cost here
    }

    #[test]
    fn modern_model_is_uniformly_faster() {
        let old = CostModel::circa_2005();
        let new = CostModel::modern();
        assert!(new.syscall_round_trip() < old.syscall_round_trip());
        assert!(new.disk_ns_per_byte < old.disk_ns_per_byte);
        assert!(new.memcpy(1 << 20) < old.memcpy(1 << 20));
    }
}
