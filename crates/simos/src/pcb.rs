//! The process control block: everything the kernel knows about a process.
//!
//! This is the data structure the paper's Section 4.1 refers to when it says
//! that "in kernel space every data structure relevant to a process's state
//! is readily accessible: registers, memory regions, file descriptors,
//! signal state, and more" — system-level checkpointers walk a [`Pcb`]
//! directly, while user-level ones must reconstruct the same information
//! through syscalls.

use crate::apps::{AppParams, NativeKind};
use crate::mem::AddressSpace;
use crate::sched::SchedPolicy;
use crate::signal::SignalState;
use crate::types::{Fd, OfdId, Pid};
use crate::userrt::UserRuntime;
use std::collections::BTreeMap;

/// Guest CPU registers: a program counter and 16 general-purpose registers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Regs {
    pub pc: u64,
    pub gpr: [u64; 16],
}

/// Life-cycle state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Runnable (queued or currently on CPU).
    Ready,
    /// Sleeping until the given virtual time (e.g. `nanosleep`).
    Sleeping { until: u64 },
    /// Stopped by `SIGSTOP` or frozen by a checkpointer.
    Stopped,
    /// Exited; exit code retained until reaped.
    Zombie { code: i32 },
}

/// What program the process runs — and, crucially for restart, how to
/// re-instantiate it. A checkpoint image records this spec; restoring the
/// image recreates the process with the same spec and the saved memory,
/// registers, fds, and signal state.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgramSpec {
    /// A guest VM program: machine code for the mini-ISA.
    Vm { text: Vec<u32>, name: String },
    /// A native "scientific kernel" app. Its entire mutable state lives in
    /// guest memory (see `apps`), so saving memory saves the app.
    Native { kind: NativeKind, params: AppParams },
}

impl ProgramSpec {
    pub fn name(&self) -> String {
        match self {
            ProgramSpec::Vm { name, .. } => name.clone(),
            ProgramSpec::Native { kind, .. } => format!("native:{kind:?}"),
        }
    }
}

/// One slot in a process's file-descriptor table, pointing at a shared
/// open-file description (so `dup` shares offsets, as in POSIX).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdEntry {
    pub ofd: OfdId,
    pub close_on_exec: bool,
}

/// The per-process descriptor table.
#[derive(Debug, Clone, Default)]
pub struct FdTable {
    slots: BTreeMap<u32, FdEntry>,
}

impl FdTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the lowest free descriptor ≥ 0.
    pub fn alloc(&mut self, ofd: OfdId) -> Fd {
        let mut n = 0u32;
        while self.slots.contains_key(&n) {
            n += 1;
        }
        self.slots.insert(
            n,
            FdEntry {
                ofd,
                close_on_exec: false,
            },
        );
        Fd(n)
    }

    pub fn get(&self, fd: Fd) -> Option<FdEntry> {
        self.slots.get(&fd.0).copied()
    }

    /// Insert an entry at an explicit descriptor number — used when
    /// restoring a checkpointed descriptor table, where numbers must match
    /// what the application saw. Replaces any existing entry.
    pub fn insert_at(&mut self, fd: Fd, entry: FdEntry) {
        self.slots.insert(fd.0, entry);
    }

    pub fn remove(&mut self, fd: Fd) -> Option<FdEntry> {
        self.slots.remove(&fd.0)
    }

    pub fn iter(&self) -> impl Iterator<Item = (Fd, FdEntry)> + '_ {
        self.slots.iter().map(|(n, e)| (Fd(*n), *e))
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// The process control block.
#[derive(Debug, Clone)]
pub struct Pcb {
    pub pid: Pid,
    pub ppid: Pid,
    pub state: ProcState,
    pub policy: SchedPolicy,
    pub regs: Regs,
    pub mem: AddressSpace,
    pub fds: FdTable,
    pub sig: SignalState,
    pub program: ProgramSpec,
    /// The modelled user-space runtime attached to this process by
    /// user-level checkpointing schemes (mirrored tables, dirty bitmaps,
    /// pending-checkpoint flags). Empty unless such a scheme is active.
    pub user_rt: UserRuntime,
    /// Accumulated CPU time (ns).
    pub cpu_ns: u64,
    /// Virtual time the process was created.
    pub start_ns: u64,
    /// Completed application-level work units (VM: executed instructions;
    /// native apps: completed steps). Mirrors what the app itself stores in
    /// guest memory; used for progress accounting by experiments.
    pub work_done: u64,
    /// Set while a checkpointer has frozen this process (removed from the
    /// runqueue); distinguishes checkpoint freezes from SIGSTOP.
    pub frozen_for_ckpt: bool,
    /// Pages still copy-on-write-shared with a forked child (the
    /// fork-concurrent checkpoint scheme); the first write to each charges
    /// a COW fault.
    pub cow_pending: std::collections::BTreeSet<u64>,
}

impl Pcb {
    pub fn has_exited(&self) -> bool {
        matches!(self.state, ProcState::Zombie { .. })
    }

    pub fn exit_code(&self) -> Option<i32> {
        match self.state {
            ProcState::Zombie { code } => Some(code),
            _ => None,
        }
    }

    pub fn is_runnable(&self) -> bool {
        matches!(self.state, ProcState::Ready)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_table_allocates_lowest_free() {
        let mut t = FdTable::new();
        let a = t.alloc(OfdId(0));
        let b = t.alloc(OfdId(1));
        assert_eq!((a, b), (Fd(0), Fd(1)));
        t.remove(a);
        let c = t.alloc(OfdId(2));
        assert_eq!(c, Fd(0)); // reuses the hole
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fd_entries_share_ofd_on_dup_semantics() {
        let mut t = FdTable::new();
        let a = t.alloc(OfdId(7));
        // "dup" is modelled by allocating another slot pointing at the same
        // open-file description.
        let entry = t.get(a).unwrap();
        let b = t.alloc(entry.ofd);
        assert_eq!(t.get(a).unwrap().ofd, t.get(b).unwrap().ofd);
    }

    #[test]
    fn iter_is_ordered() {
        let mut t = FdTable::new();
        t.alloc(OfdId(0));
        t.alloc(OfdId(1));
        t.alloc(OfdId(2));
        let fds: Vec<u32> = t.iter().map(|(fd, _)| fd.0).collect();
        assert_eq!(fds, vec![0, 1, 2]);
    }

    #[test]
    fn program_spec_names() {
        let vm = ProgramSpec::Vm {
            text: vec![],
            name: "counter".into(),
        };
        assert_eq!(vm.name(), "counter");
        let nat = ProgramSpec::Native {
            kind: NativeKind::DenseSweep,
            params: AppParams::small(),
        };
        assert!(nat.name().contains("DenseSweep"));
    }
}
